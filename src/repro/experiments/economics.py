"""Section 5.2: economic feasibility, fed by measured cache behaviour.

The paper's argument chains a performance measurement (a single machine
serves the whole dialup population), a cache measurement (>=50 % hit
rate), and a cost model.  This driver runs the cache study to get a
*measured* byte hit rate and plugs it into the
:class:`~repro.analysis.economics.EconomicModel`.
"""

from __future__ import annotations

from repro.analysis.economics import EconomicModel
from repro.experiments.cache_hitrate import run_cache_size_sweep


def run_economics(n_users: int = 400, n_requests: int = 30_000,
                  seed: int = 1997) -> str:
    study = run_cache_size_sweep(
        capacities_bytes=(256_000_000,),
        n_users=n_users, n_requests=n_requests, seed=seed)
    measured_byte_hit_rate = next(iter(study.byte_hit_rates.values()))
    model = EconomicModel(cache_byte_hit_rate=measured_byte_hit_rate)
    report = model.report()
    lines = [
        "Economic feasibility (Section 5.2)",
        f"  measured cache byte hit rate:  "
        f"{measured_byte_hit_rate:.0%} (paper assumes >=50%)",
        f"  subscribers per $5000 server:  {report['subscribers']:.0f}",
        f"  cost/subscriber/month:         "
        f"${report['cost_per_subscriber_per_month_usd']:.3f} "
        "(paper headline: $0.25 — see model docstring on the "
        "paper's arithmetic)",
        f"  cost/modem/month:              "
        f"${report['cost_per_modem_per_month_usd']:.2f}",
        f"  bandwidth savings/month:       "
        f"${report['monthly_bandwidth_savings_usd']:.0f} "
        "(paper: ~$3000)",
        f"  payback period:                "
        f"{report['payback_months']:.1f} months "
        "(paper: 'only two months')",
    ]
    return "\n".join(lines)
