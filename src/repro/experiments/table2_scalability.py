"""Table 2: the scalability experiment (Section 4.6).

The paper's protocol, automated: start with a minimal instance (one
front end, one distiller, the manager); raise offered load step by step;
when a component class saturates, add more of it — the manager spawns
distillers automatically, and the experiment controller adds a front end
when the front end saturates (the paper's operators did this by hand) —
and record, for each load level, the resource counts and which element
saturated.  The paper's findings to match in shape:

* ~23 requests/second per distiller;
* ~70-87 requests/second per front end before its Ethernet/TCP path
  saturates;
* nearly perfectly linear growth: resources added scale linearly with
  offered load, and the interior SAN never saturates at 100 Mb/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import render_table
from repro.core.config import SNSConfig
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord

from repro.experiments._harness import build_bench_fabric

PAPER_PER_DISTILLER_RPS = 23.0
PAPER_PER_FRONTEND_RPS = 70.0


@dataclass
class Table2Row:
    rate_rps: float
    completed_rps: float
    n_frontends: int
    n_distillers: int
    saturated: str


@dataclass
class Table2Result:
    rows: List[Table2Row]
    per_distiller_rps: float
    per_frontend_rps: float
    san_utilization_peak: float

    def render(self) -> str:
        table = render_table(
            ["offered req/s", "served req/s", "# front ends",
             "# distillers", "element that saturated"],
            [[f"{row.rate_rps:.0f}", f"{row.completed_rps:.1f}",
              row.n_frontends, row.n_distillers, row.saturated]
             for row in self.rows],
            title="Table 2 — scalability experiment",
        )
        notes = (
            f"\nper-distiller throughput: {self.per_distiller_rps:.1f} "
            f"req/s (paper: ~{PAPER_PER_DISTILLER_RPS:.0f})\n"
            f"per-front-end ceiling: {self.per_frontend_rps:.1f} req/s "
            f"(paper: ~{PAPER_PER_FRONTEND_RPS:.0f}-87)\n"
            f"peak interior SAN utilization: "
            f"{self.san_utilization_peak:.1%} (paper: never saturated)"
        )
        return table + notes


def run_table2(
    rates: Sequence[float] = tuple(range(10, 161, 15)),
    step_duration_s: float = 25.0,
    seed: int = 1997,
    config: Optional[SNSConfig] = None,
) -> Table2Result:
    config = config or SNSConfig(spawn_threshold=10.0,
                                 spawn_damping_s=10.0,
                                 dispatch_timeout_s=8.0)
    fabric = build_bench_fabric(n_nodes=30, seed=seed, config=config)
    fabric.boot(n_frontends=1, initial_workers={"jpeg-distiller": 1})
    env = fabric.cluster.env
    fabric.cluster.run(until=2.0)

    pool = [
        TraceRecord(0.0, f"client{index}",
                    f"http://bench/img{index}.jpg", "image/jpeg", 10240)
        for index in range(50)
    ]
    rows: List[Table2Row] = []
    san_peak = 0.0
    rng = RandomStreams(seed).stream("table2-playback")

    for rate in rates:
        engine = PlaybackEngine(env, fabric.submit, rng=rng,
                                timeout_s=60.0)
        n_distillers_at_start = len(
            fabric.alive_workers("jpeg-distiller"))
        env.process(engine.constant_rate(rate, step_duration_s, pool))
        # run the step plus drain time
        fabric.cluster.run(until=env.now + step_duration_s)
        completed_rps = len(engine.completed()) / step_duration_s
        n_frontends_before = len(fabric.alive_frontends())
        n_distillers = len(fabric.alive_workers("jpeg-distiller"))
        saturated = []
        fe_saturated = any(frontend.is_saturated()
                           for frontend in fabric.alive_frontends())
        # the distillers saturated during this step iff the manager had
        # to spawn more of them (or their queues are still over H now)
        if (n_distillers > n_distillers_at_start
                or _average_queue(fabric)
                >= config.spawn_threshold * 0.8):
            saturated.append("distillers")
        if fe_saturated:
            saturated.append("FE Ethernet")
        san_util = fabric.cluster.network.san.utilization()
        san_peak = max(san_peak, san_util)
        if san_util > 0.9:
            saturated.append("SAN")
        rows.append(Table2Row(
            rate_rps=rate,
            completed_rps=completed_rps,
            n_frontends=n_frontends_before,
            n_distillers=n_distillers,
            saturated=" & ".join(saturated) if saturated else "-",
        ))
        # the operator's move: a saturated front end means "spawn a new
        # front end" before the next load level
        if fe_saturated:
            fabric.start_frontend()
            fabric.cluster.run(until=env.now + 2.0)

    final = rows[-1]
    per_distiller = (final.completed_rps / final.n_distillers
                     if final.n_distillers else 0.0)
    # per-FE ceiling: the highest served rate any single-FE row reached
    single_fe_rates = [row.completed_rps for row in rows
                       if row.n_frontends == 1]
    per_frontend = max(single_fe_rates) if single_fe_rates else 0.0
    return Table2Result(
        rows=rows,
        per_distiller_rps=per_distiller,
        per_frontend_rps=per_frontend,
        san_utilization_peak=san_peak,
    )


def _average_queue(fabric) -> float:
    workers = fabric.alive_workers("jpeg-distiller")
    if not workers:
        return 0.0
    return sum(stub.load for stub in workers) / len(workers)
