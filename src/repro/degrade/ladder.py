"""The degradation ladder: ordered service modes, full to brownout.

Each level *adds* one degraded behaviour on top of everything below
it; de-escalation retraces the same rungs in reverse.  The order is
chosen so the cheapest harvest is spent first:

===  ===================  ==============================================
lvl  name                 what degrades
===  ===================  ==============================================
0    full                 nothing — normal service
1    reduced-fidelity     distillation quality forced to the lowest
                          tier cluster-wide (cheaper per request)
2    serve-stale          cached results past their fresh TTL are
                          served instead of recomputed
3    relaxed-reads        profile reads at R=1 instead of quorum
                          (degraded harvest; writes stay quorum)
4    priority-admission   batch/crawler-class requests are refused
5    deadline-shed        probabilistic shedding of work unlikely to
                          meet its deadline anyway
===  ===================  ==============================================
"""

from __future__ import annotations

from typing import Tuple

#: ladder level names, indexed by level number.
LEVELS: Tuple[str, ...] = (
    "full",
    "reduced-fidelity",
    "serve-stale",
    "relaxed-reads",
    "priority-admission",
    "deadline-shed",
)

#: the highest ladder level.
MAX_LEVEL = len(LEVELS) - 1


def level_name(level: int) -> str:
    """Human-readable name for a ladder level (clamped to the range)."""
    return LEVELS[max(0, min(level, MAX_LEVEL))]
