"""Overload-amplification guards: retry budget and circuit breaker.

Overload rarely stays the size it started.  Two classic feedback loops
amplify it: *retry storms* (every timeout begets a retry, so offered
load grows exactly when capacity shrinks) and *origin hammering*
(every cache miss queues behind a slow or dead origin, holding a
front-end thread hostage for seconds).  The two guards here cut those
loops:

* :class:`RetryBudget` — a token bucket earned by fresh requests and
  spent by retries, capping retries to a configured *fraction* of
  first attempts so retry traffic can never exceed a fixed share of
  offered load;
* :class:`CircuitBreaker` — a closed/open/half-open state machine on
  origin fetches: after enough consecutive failures (errors *or*
  slow responses) the breaker opens and fetches fail fast, until a
  cooldown elapses and a single half-open probe tests the water.

Both are deterministic — no randomness, no wall clock — so runs stay
byte-identical under ``repro.fanout``.
"""

from __future__ import annotations


class RetryBudget:
    """Token bucket capping retries to a fraction of fresh requests.

    Every first attempt earns ``ratio`` tokens (up to ``cap``); every
    retry spends one.  With ratio 0.1, at most ~10% of offered load
    can be retry traffic, no matter how many timeouts pile up.  The
    bucket starts full so a cold stub can still retry its first
    isolated failure.
    """

    def __init__(self, ratio: float, cap: float) -> None:
        if ratio < 0:
            raise ValueError("retry budget ratio must be non-negative")
        if cap < 1:
            raise ValueError("retry budget cap must be >= 1")
        self.ratio = ratio
        self.cap = cap
        self.tokens = cap
        self.earned = 0
        self.spent = 0
        self.denials = 0

    def earn(self) -> None:
        """A fresh (first-attempt) request arrived: accrue budget."""
        self.earned += 1
        self.tokens = min(self.cap, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        """Spend one token for a retry; False = budget exhausted."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denials += 1
        return False


class OriginUnavailable(Exception):
    """Raised when the origin circuit breaker is open."""


class CircuitBreaker:
    """Closed/open/half-open breaker on a slow or failing dependency.

    State machine::

        CLOSED --(failure_threshold consecutive failures)--> OPEN
        OPEN   --(cooldown elapses)--> HALF_OPEN (one probe admitted)
        HALF_OPEN --(probe succeeds)--> CLOSED
        HALF_OPEN --(probe fails)-----> OPEN (cooldown restarts)

    A "failure" is an error *or* a success slower than ``slow_s`` —
    a dependency that answers in 6 s under a 3 s budget is down in
    every way that matters to the thread waiting on it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, clock, failure_threshold: int, cooldown_s: float,
                 slow_s: float) -> None:
        if failure_threshold < 1:
            raise ValueError("breaker failure threshold must be >= 1")
        if cooldown_s <= 0 or slow_s <= 0:
            raise ValueError("breaker cooldown and slow budget "
                             "must be positive")
        #: zero-argument callable returning the current sim time.
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.slow_s = slow_s
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self._probe_in_flight = False
        # counters
        self.opens = 0
        self.short_circuits = 0
        self.probes = 0

    def allow(self) -> bool:
        """May a fetch proceed right now?

        In OPEN, admits nothing until the cooldown elapses, then
        transitions to HALF_OPEN and admits exactly one probe.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.clock() - self.opened_at >= self.cooldown_s:
                self.state = self.HALF_OPEN
                self._probe_in_flight = False
            else:
                self.short_circuits += 1
                return False
        # HALF_OPEN: exactly one probe at a time
        if self._probe_in_flight:
            self.short_circuits += 1
            return False
        self._probe_in_flight = True
        self.probes += 1
        return True

    def record(self, elapsed_s: float, ok: bool) -> None:
        """Report the outcome of an admitted fetch."""
        failed = (not ok) or elapsed_s >= self.slow_s
        if self.state == self.HALF_OPEN:
            self._probe_in_flight = False
            if failed:
                self._trip()
            else:
                self.state = self.CLOSED
                self.consecutive_failures = 0
            return
        if failed:
            self.consecutive_failures += 1
            if self.state == self.CLOSED \
                    and self.consecutive_failures >= self.failure_threshold:
                self._trip()
        else:
            self.consecutive_failures = 0

    def _trip(self) -> None:
        self.state = self.OPEN
        self.opened_at = self.clock()
        self.opens += 1
        self.consecutive_failures = 0

    def summary(self) -> dict:
        return {
            "state": self.state,
            "opens": self.opens,
            "short_circuits": self.short_circuits,
            "probes": self.probes,
        }
