"""Graceful degradation under overload (brownout control).

The paper's BASE argument (Section 2.3.1) is that a saturated service
should *degrade* — trade harvest (completeness/fidelity of each
answer) for yield (fraction of requests answered) — rather than fail.
This package turns that argument into a closed control loop:

* :mod:`repro.degrade.ladder` — the ordered degradation levels;
* :mod:`repro.degrade.controller` — the
  :class:`~repro.degrade.controller.DegradationController` sampling
  queue delay, utilization, and shed rate each tick and walking the
  ladder deterministically;
* :mod:`repro.degrade.guards` — the overload-amplification guards:
  a per-frontend retry budget and an origin-fetch circuit breaker;
* :mod:`repro.degrade.staleness` — a freshness-aware cache used for
  the serve-stale ladder level;
* :mod:`repro.degrade.service` — a degradation-aware bench service
  (and a brownout distiller whose cost actually drops with quality).

DESIGN.md §5j documents the ladder, the controller's pressure signal,
and the guard state machines.
"""

from repro.degrade.controller import DegradationController
from repro.degrade.guards import (
    CircuitBreaker,
    OriginUnavailable,
    RetryBudget,
)
from repro.degrade.ladder import LEVELS, level_name
from repro.degrade.staleness import FreshnessCache

__all__ = [
    "CircuitBreaker",
    "DegradationController",
    "FreshnessCache",
    "LEVELS",
    "OriginUnavailable",
    "RetryBudget",
    "level_name",
]
