"""Degradation-aware bench service + brownout distiller.

:class:`DegradableBenchService` is the experiment-harness service with
every ladder level wired into its request path:

* a :class:`~repro.degrade.staleness.FreshnessCache` of distilled
  results — fresh hits are served always, stale hits only while the
  ladder is at serve-stale or above;
* an origin model with finite capacity (a :class:`~repro.sim.network.
  Link` serializing fetches), guarded by the origin
  :class:`~repro.degrade.guards.CircuitBreaker` — a cold-miss storm
  queues behind the origin, fetches cross the slow budget, and the
  breaker converts further cold misses into fast fallbacks instead of
  held threads;
* forced low-fidelity distillation at reduced-fidelity level or
  above, using :class:`BrownoutJpegDistiller` so the cheaper encode
  actually costs less.

:class:`BrownoutJpegDistiller` exists because the stock latency model
prices distillation purely by input size: quality 5 and quality 25
would cost the same, and the reduced-fidelity rung would shed no load
at all.  Quantizing at very low quality with aggressive scaling skips
most of the encode work, so requests at or below the brownout quality
get a flat cost factor.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.frontend import Response
from repro.core.manager_stub import DispatchError
from repro.degrade.guards import CircuitBreaker
from repro.degrade.staleness import FRESH, FreshnessCache
from repro.distillers.jpeg import DEFAULT_QUALITY, JpegDistiller
from repro.experiments._harness import CACHE_HIT_S, ProfileBenchService
from repro.sim.cluster import Cluster
from repro.sim.network import Link
from repro.tacc.content import Content, zero_payload
from repro.tacc.worker import TACCRequest, WorkerError

#: origin model: per-fetch floor plus a serial pipe bounding the
#: cluster-wide fetch rate.  One reserve unit = one fetch.
ORIGIN_BASE_S = 0.25
ORIGIN_CAPACITY_RPS = 15.0


class BrownoutJpegDistiller(JpegDistiller):
    """JPEG distiller whose cost drops at brownout quality settings.

    At or below :attr:`BROWNOUT_QUALITY` the encoder quantizes almost
    everything away (and the forced tier also scales 4x), so both the
    capacity estimate and the sampled service time shrink by
    :attr:`BROWNOUT_COST_FACTOR`.  Same ``worker_type`` as the stock
    distiller — managers, stubs, and spawn plumbing see no difference.
    """

    BROWNOUT_QUALITY = 10
    BROWNOUT_COST_FACTOR = 0.55

    def _cost_factor(self, request: TACCRequest) -> float:
        quality = int(request.param("quality", DEFAULT_QUALITY))
        if quality <= self.BROWNOUT_QUALITY:
            return self.BROWNOUT_COST_FACTOR
        return 1.0

    def work_estimate(self, request: TACCRequest) -> float:
        return super().work_estimate(request) * self._cost_factor(request)

    def work_sample(self, rng, request: TACCRequest) -> float:
        return super().work_sample(rng, request) * \
            self._cost_factor(request)


class DegradableBenchService(ProfileBenchService):
    """Bench service with the degradation ladder on its request path.

    Works with or without a profile store (``store=None`` skips the
    profile read, like the classic harness).  The controller reference
    (:attr:`degradation`) is wired by
    :meth:`~repro.core.fabric.SNSFabric.start_degradation`; with no
    controller every ladder branch stays cold and the service is a
    plain cache-in-front bench service.
    """

    def __init__(self, cluster: Cluster, store: Any,
                 config: Any) -> None:
        super().__init__(cluster, store)
        self.config = config
        self._estimator = BrownoutJpegDistiller()
        self.degradation: Optional[Any] = None
        self.results = FreshnessCache(config.degrade_fresh_ttl_s,
                                      config.degrade_stale_ttl_s)
        self.originals: dict = {}
        self.origin_link = Link(cluster.env, "origin",
                                bandwidth_bps=ORIGIN_CAPACITY_RPS,
                                latency_s=ORIGIN_BASE_S)
        if config.origin_breaker_failures is not None:
            self.origin_breaker: Optional[CircuitBreaker] = \
                CircuitBreaker(
                    lambda: cluster.env.now,
                    config.origin_breaker_failures,
                    config.origin_breaker_cooldown_s,
                    config.origin_breaker_slow_s)
        else:
            self.origin_breaker = None
        # counters
        self.stale_served = 0
        self.low_fidelity_served = 0
        self.breaker_fallbacks = 0
        self.origin_fetches = 0

    def handle(self, frontend, record):
        if self.store is None:
            trace = frontend.current_trace
            return (yield from self._distill(frontend, record, trace, {}))
        return (yield from super().handle(frontend, record))

    def _distill(self, frontend, record, trace, profile):
        env = self.cluster.env
        controller = self.degradation
        mark = env.now
        hit = self.results.get(record.url, env.now)
        if hit is not None:
            kind, result = hit
            if kind == FRESH:
                yield env.timeout(CACHE_HIT_S)
                if trace is not None:
                    trace.record("cache-hit", "cache", mark, hit=True)
                return Response(status="ok", path="cache-hit",
                                content=result, size_bytes=result.size)
            if controller is not None and controller.serve_stale_active:
                self.stale_served += 1
                yield env.timeout(CACHE_HIT_S)
                if trace is not None:
                    trace.record("stale-hit", "cache", mark,
                                 hit=True, stale=True)
                return Response(
                    status="degraded", path="serve-stale",
                    content=result, size_bytes=result.size,
                    annotations={"degrade_level": 2,
                                 "degrade_mode": "serve-stale"})
        original = self.originals.get(record.url)
        mark = env.now
        if original is None:
            breaker = self.origin_breaker
            if breaker is not None and not breaker.allow():
                self.breaker_fallbacks += 1
                if trace is not None:
                    trace.record("origin-breaker", "service", mark,
                                 short_circuit=True)
                return Response(
                    status="fallback", path="origin-breaker",
                    detail="origin circuit breaker open",
                    annotations={"degrade_mode": "origin-breaker"})
            self.origin_fetches += 1
            yield env.timeout(self.origin_link.reserve(1.0))
            if trace is not None:
                trace.record("origin-fetch", "network", mark)
            if breaker is not None:
                breaker.record(env.now - mark, ok=True)
            original = Content(record.url, record.mime,
                               zero_payload(record.size_bytes))
            self.originals[record.url] = original
        else:
            yield env.timeout(CACHE_HIT_S)
            if trace is not None:
                trace.record("cache-hit", "cache", mark, hit=True)
        reduced = controller is not None and controller.fidelity_reduced
        params: dict = {}
        if reduced:
            tier = controller.forced_tier
            params = {"quality": tier.quality, "scale": tier.scale}
        request = TACCRequest(inputs=[original], params=params,
                              profile=profile,
                              user_id=record.client_id)
        expected = self._estimator.work_estimate(request)
        try:
            result = yield from frontend.stub.dispatch(
                request, self.worker_type, original.size,
                expected_cost_s=expected, trace=trace,
                priority=getattr(record, "priority", "interactive"))
        except (DispatchError, WorkerError):
            return Response(status="fallback", path="original",
                            content=original,
                            size_bytes=original.size)
        self.results.put(record.url, result, env.now)
        if reduced:
            self.low_fidelity_served += 1
            return Response(
                status="degraded", path="distilled-low-fidelity",
                content=result, size_bytes=result.size,
                annotations={"degrade_level": 1,
                             "degrade_mode": "reduced-fidelity"})
        return Response(status="ok", path="distilled", content=result,
                        size_bytes=result.size)
