"""The closed-loop brownout controller.

Each tick the controller samples three saturation signals:

* **queue delay** — the worst per-worker backlog estimate, queued
  items times the worker's observed service-time EWMA (the paper's
  own load metric, in seconds);
* **utilization** — the busiest front end's thread-pool occupancy;
* **shed ratio** — the fraction of this tick's arrivals the front
  ends refused.

Each signal is normalized by its target; **pressure** is the max.
While pressure sits at or above the enter threshold the controller
climbs the :mod:`~repro.degrade.ladder` one level per tick (with a
hold-down between escalations, like the manager's spawn damping, so a
single congested tick cannot slam the service to deadline-shedding);
once pressure stays at or below the exit threshold for a dwell of
consecutive calm ticks it steps back down one level.  Separate
enter/exit thresholds plus the dwell give the loop hysteresis — the
same cure :meth:`FrontEnd._should_shed` gets for its on/off flapping.

Components never get pushed state: they hold a reference to the
controller and *read* the boolean level properties
(:attr:`fidelity_reduced`, :attr:`serve_stale_active`, ...) on their
own request paths.  The controller is deterministic — signals are
pure functions of simulation state, and the tick process uses only
sim time — so degraded runs stay byte-identical under
``repro.fanout``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.degrade.ladder import LEVELS, level_name
from repro.transend.adaptation import DEFAULT_TIERS


class DegradationController:
    """Walks the degradation ladder under a pressure signal."""

    def __init__(self, cluster: Any, config: Any, fabric: Any,
                 signals: Optional[Callable[[], Tuple[float, float, float]]]
                 = None) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.config = config
        self.fabric = fabric
        #: injectable (queue_delay_s, utilization, shed_ratio) source
        #: for tests; None = read the fabric.
        self._signals = signals
        self.level = 0
        #: the fidelity tier forced cluster-wide at level >= 1: the
        #: lowest-bandwidth tier of the adaptation ladder.
        self.forced_tier = DEFAULT_TIERS[0]
        self._calm_ticks = 0
        self._last_escalation_at: Optional[float] = None
        self._last_shed = 0
        self._last_received = 0
        self._level_entered_at = 0.0
        #: seconds spent at each ladder level (finalized by summary()).
        self.level_time: Dict[int, float] = {n: 0.0
                                             for n in range(len(LEVELS))}
        #: ladder transitions: {"at", "from", "to", "pressure"}.
        self.transitions: List[Dict[str, Any]] = []
        self.ticks = 0
        self.peak_pressure = 0.0
        self.peak_level = 0

    # -- level predicates (read by components on their request paths) ----

    @property
    def fidelity_reduced(self) -> bool:
        return self.level >= 1

    @property
    def serve_stale_active(self) -> bool:
        return self.level >= 2

    @property
    def relaxed_reads_active(self) -> bool:
        return self.level >= 3

    @property
    def priority_admission_active(self) -> bool:
        return self.level >= 4

    @property
    def deadline_shed_active(self) -> bool:
        return self.level >= 5

    # -- control loop ----------------------------------------------------

    def start(self) -> "DegradationController":
        self._level_entered_at = self.env.now
        self.env.process(self._run())
        return self

    def _run(self):
        while True:
            yield self.env.timeout(self.config.degrade_tick_s)
            self._tick()

    def signals(self) -> Tuple[float, float, float]:
        """(queue_delay_s, frontend_utilization, shed_ratio this tick)."""
        if self._signals is not None:
            return self._signals()
        queue_delay = 0.0
        for stub in self.fabric.alive_workers():
            queue_delay = max(queue_delay,
                              stub.load * stub.service_ewma_s)
        utilization = 0.0
        shed = received = 0
        for frontend in self.fabric.frontends.values():
            if not frontend.alive:
                continue
            utilization = max(
                utilization,
                frontend.active_requests / self.config.frontend_threads)
            shed += frontend.shed
            received += frontend.requests_received
        tick_shed = shed - self._last_shed
        tick_received = received - self._last_received
        self._last_shed = shed
        self._last_received = received
        shed_ratio = (tick_shed / tick_received) if tick_received else 0.0
        return queue_delay, utilization, shed_ratio

    def pressure_of(self, queue_delay_s: float, utilization: float,
                    shed_ratio: float) -> float:
        """Normalize each signal by its target; pressure is the max."""
        return max(
            queue_delay_s / self.config.degrade_queue_target_s,
            utilization / self.config.degrade_util_target,
            shed_ratio / self.config.degrade_shed_target,
        )

    def _tick(self) -> None:
        self.ticks += 1
        pressure = self.pressure_of(*self.signals())
        self.peak_pressure = max(self.peak_pressure, pressure)
        if pressure >= self.config.degrade_enter_pressure:
            self._calm_ticks = 0
            if self.level < self.config.degrade_max_level \
                    and self._escalation_hold_clear():
                self._move(self.level + 1, pressure)
                self._last_escalation_at = self.env.now
        elif pressure <= self.config.degrade_exit_pressure:
            self._calm_ticks += 1
            if self.level > 0 \
                    and self._calm_ticks >= self.config.degrade_dwell_ticks:
                self._move(self.level - 1, pressure)
                self._calm_ticks = 0
        else:
            # between exit and enter: hold the current level
            self._calm_ticks = 0

    def _escalation_hold_clear(self) -> bool:
        """Spawn-damping analogue: space successive escalations out by
        ``degrade_hold_ticks`` ticks, so one congested sample cannot
        slam the ladder to its top rung."""
        if self._last_escalation_at is None:
            return True
        hold_s = (self.config.degrade_hold_ticks
                  * self.config.degrade_tick_s)
        return self.env.now - self._last_escalation_at >= hold_s

    def _move(self, new_level: int, pressure: float) -> None:
        now = self.env.now
        self.level_time[self.level] += now - self._level_entered_at
        self.transitions.append({
            "at": round(now, 6),
            "from": level_name(self.level),
            "to": level_name(new_level),
            "pressure": round(pressure, 4),
        })
        self.level = new_level
        self._level_entered_at = now
        self.peak_level = max(self.peak_level, new_level)

    # -- reporting -------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        level_time = dict(self.level_time)
        level_time[self.level] += self.env.now - self._level_entered_at
        return {
            "level": self.level,
            "peak_level": self.peak_level,
            "peak_pressure": round(self.peak_pressure, 4),
            "ticks": self.ticks,
            "transitions": list(self.transitions),
            "level_time": {level_name(n): round(t, 3)
                           for n, t in level_time.items() if t > 0
                           or n == 0},
        }
