"""Freshness-aware result cache for the serve-stale ladder level.

An ordinary cache answers "do I have it?"; the serve-stale level also
needs "how old is it?".  :class:`FreshnessCache` stamps every entry
with its store time and classifies lookups into *fresh* (younger than
the fresh TTL — always servable), *stale* (between the fresh and
stale TTLs — servable only while the ladder is at the serve-stale
level or above, as a harvest-degraded answer), and *expired* (older
than the stale TTL — a miss).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

FRESH = "fresh"
STALE = "stale"


class FreshnessCache:
    """Key → (value, stored_at) with fresh/stale classification."""

    def __init__(self, fresh_ttl_s: float, stale_ttl_s: float) -> None:
        if fresh_ttl_s <= 0 or stale_ttl_s < fresh_ttl_s:
            raise ValueError(
                "need 0 < fresh TTL <= stale TTL")
        self.fresh_ttl_s = fresh_ttl_s
        self.stale_ttl_s = stale_ttl_s
        self._entries: Dict[Any, Tuple[Any, float]] = {}
        self.fresh_hits = 0
        self.stale_hits = 0
        self.misses = 0

    def put(self, key: Any, value: Any, now: float) -> None:
        self._entries[key] = (value, now)

    def get(self, key: Any, now: float) -> Optional[Tuple[str, Any]]:
        """Return ("fresh"|"stale", value), or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        value, stored_at = entry
        age = now - stored_at
        if age <= self.fresh_ttl_s:
            self.fresh_hits += 1
            return (FRESH, value)
        if age <= self.stale_ttl_s:
            self.stale_hits += 1
            return (STALE, value)
        # expired: drop it so the dict cannot grow without bound
        del self._entries[key]
        self.misses += 1
        return None

    def __len__(self) -> int:
        return len(self._entries)
