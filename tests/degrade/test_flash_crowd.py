"""The flash-crowd comparison: the controller holds its yield SLO
through a 10x burst that collapses the binary-shed baseline."""

import pytest

from repro.experiments.flash_crowd import (
    BASELINE_YIELD_CEILING,
    CONTROLLER_YIELD_SLO,
    run_flash_crowd,
)


@pytest.fixture(scope="module")
def result():
    return run_flash_crowd(seed=3)


def test_controller_holds_the_yield_slo(result):
    assert result.controller.overall_yield >= CONTROLLER_YIELD_SLO
    assert result.controller.ok  # every invariant held, yield SLO too
    assert result.controller_held_slo


def test_baseline_collapses_under_the_same_burst(result):
    assert result.baseline.overall_yield < BASELINE_YIELD_CEILING
    assert result.baseline_collapsed
    assert result.ok
    # the amplification the guards exist to cut: a retry storm
    assert result.baseline.counters["dispatch_retries"] > 100


def test_controller_actually_walked_the_ladder(result):
    degradation = result.controller.degradation
    assert degradation["peak_level"] >= 2  # at least serve-stale
    assert degradation["transitions"]
    assert degradation["level_time"]["full"] > 0.0
    counters = result.controller.counters
    assert counters["stale_served"] > 0
    assert counters["low_fidelity_served"] > 0


def test_harvest_ledger_separates_degraded_from_shed(result):
    controller = result.controller
    assert controller.degraded_replies > 0       # harvest spent...
    assert controller.overall_harvest < 1.0
    assert controller.overall_yield >= CONTROLLER_YIELD_SLO  # ...not yield


def test_render_carries_the_verdict(result):
    rendered = result.render()
    assert "verdict: controller held" in rendered
    assert "baseline collapsed" in rendered
    assert "--- controller arm ---" in rendered
    assert "--- baseline arm ---" in rendered
