"""Overload-amplification guards: the retry-budget token bucket and
the origin circuit breaker's full state machine."""

import pytest

from repro.degrade.guards import CircuitBreaker, RetryBudget


# -- retry budget -------------------------------------------------------------

def test_budget_validates_parameters():
    with pytest.raises(ValueError):
        RetryBudget(ratio=-0.1, cap=10.0)
    with pytest.raises(ValueError):
        RetryBudget(ratio=0.1, cap=0.5)


def test_budget_starts_full_so_cold_stub_can_retry():
    budget = RetryBudget(ratio=0.0, cap=2.0)
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()
    assert budget.spent == 2
    assert budget.denials == 1


def test_retries_capped_to_a_fraction_of_fresh_traffic():
    """With ratio 0.25, a drained bucket allows one retry per four
    first attempts, no matter how many failures pile up."""
    budget = RetryBudget(ratio=0.25, cap=1.0)
    assert budget.try_spend()  # the initial allowance
    granted = 0
    for _ in range(100):
        budget.earn()
        if budget.try_spend():
            granted += 1
    assert granted == 25
    assert budget.earned == 100
    assert budget.denials == 75


def test_earning_never_exceeds_the_cap():
    budget = RetryBudget(ratio=5.0, cap=3.0)
    for _ in range(10):
        budget.earn()
    assert budget.tokens == 3.0
    assert budget.try_spend() and budget.try_spend() \
        and budget.try_spend()
    assert not budget.try_spend()


# -- circuit breaker ----------------------------------------------------------

def make_breaker(threshold=3, cooldown=10.0, slow=2.0):
    clock = {"now": 0.0}
    breaker = CircuitBreaker(lambda: clock["now"], threshold,
                             cooldown, slow)
    return clock, breaker


def test_breaker_validates_parameters():
    with pytest.raises(ValueError):
        CircuitBreaker(lambda: 0.0, 0, 10.0, 2.0)
    with pytest.raises(ValueError):
        CircuitBreaker(lambda: 0.0, 3, 0.0, 2.0)
    with pytest.raises(ValueError):
        CircuitBreaker(lambda: 0.0, 3, 10.0, -1.0)


def test_closed_breaker_admits_and_success_resets_the_count():
    _, breaker = make_breaker(threshold=3)
    for _ in range(2):
        assert breaker.allow()
        breaker.record(0.1, ok=False)
    breaker.record(0.1, ok=True)  # interleaved success: not consecutive
    for _ in range(2):
        breaker.record(0.1, ok=False)
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.opens == 0


def test_consecutive_failures_trip_the_breaker():
    _, breaker = make_breaker(threshold=3)
    for _ in range(3):
        breaker.record(0.1, ok=False)
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.opens == 1
    assert not breaker.allow()
    assert breaker.short_circuits == 1


def test_slow_success_counts_as_failure():
    """A dependency answering in 6 s under a 2 s budget is down in
    every way that matters to the thread waiting on it."""
    _, breaker = make_breaker(threshold=2, slow=2.0)
    breaker.record(6.0, ok=True)
    breaker.record(2.0, ok=True)  # exactly the budget: still too slow
    assert breaker.state == CircuitBreaker.OPEN
    breaker2_clock, breaker2 = make_breaker(threshold=2, slow=2.0)
    breaker2.record(1.9, ok=True)
    breaker2.record(1.9, ok=True)
    assert breaker2.state == CircuitBreaker.CLOSED


def test_cooldown_admits_exactly_one_half_open_probe():
    clock, breaker = make_breaker(threshold=1, cooldown=10.0)
    breaker.record(0.1, ok=False)
    assert breaker.state == CircuitBreaker.OPEN
    clock["now"] = 9.9
    assert not breaker.allow()
    clock["now"] = 10.0
    assert breaker.allow()  # the probe
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.probes == 1
    assert not breaker.allow()  # probe in flight: everyone else waits
    assert breaker.short_circuits == 2


def test_probe_success_closes_the_breaker():
    clock, breaker = make_breaker(threshold=1, cooldown=5.0)
    breaker.record(0.1, ok=False)
    clock["now"] = 5.0
    assert breaker.allow()
    breaker.record(0.1, ok=True)
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_probe_failure_reopens_and_restarts_the_cooldown():
    clock, breaker = make_breaker(threshold=1, cooldown=5.0)
    breaker.record(0.1, ok=False)
    clock["now"] = 5.0
    assert breaker.allow()
    breaker.record(0.1, ok=False)
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.opens == 2
    clock["now"] = 9.9  # cooldown restarted at t=5
    assert not breaker.allow()
    clock["now"] = 10.0
    assert breaker.allow()


def test_summary_reports_state_and_counters():
    clock, breaker = make_breaker(threshold=1, cooldown=5.0)
    breaker.record(0.1, ok=False)
    breaker.allow()
    summary = breaker.summary()
    assert summary == {"state": "open", "opens": 1,
                       "short_circuits": 1, "probes": 0}
