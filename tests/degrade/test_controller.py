"""The closed-loop controller: ladder order, hold damping, dwell-based
de-escalation, and the hysteresis band between the thresholds.

Signals are injected so the tests drive pressure directly; the fabric
is never consulted.
"""

from repro.core.config import SNSConfig
from repro.degrade.controller import DegradationController
from repro.degrade.ladder import LEVELS, MAX_LEVEL, level_name
from repro.sim.cluster import Cluster


def make_controller(state=None, **overrides):
    """Controller ticking at 0.5 s with injectable signals."""
    defaults = dict(
        degrade_tick_s=0.5,
        degrade_enter_pressure=1.0,
        degrade_exit_pressure=0.5,
        degrade_dwell_ticks=2,
        degrade_hold_ticks=0,
    )
    defaults.update(overrides)
    config = SNSConfig(**defaults).validate()
    cluster = Cluster(seed=1)
    state = state if state is not None else {"pressure": 0.0}
    # queue target is 1.0 s, so queue_delay doubles as raw pressure
    controller = DegradationController(
        cluster, config, fabric=None,
        signals=lambda: (state["pressure"], 0.0, 0.0))
    controller.start()
    return cluster, controller, state


def run_to(cluster, t):
    cluster.run(until=t)


def test_ladder_names_cover_every_level():
    assert LEVELS[0] == "full"
    assert MAX_LEVEL == 5
    assert level_name(-3) == "full"
    assert level_name(99) == "deadline-shed"


def test_pressure_is_the_max_of_normalized_signals():
    cluster, controller, _ = make_controller()
    # targets: queue 1.0 s, util 0.9, shed 0.05
    assert controller.pressure_of(0.5, 0.0, 0.0) == 0.5
    assert controller.pressure_of(0.0, 0.9, 0.0) == 1.0
    assert controller.pressure_of(0.0, 0.0, 0.1) == 2.0
    assert controller.pressure_of(0.5, 0.45, 0.01) == 0.5


def test_escalation_walks_the_ladder_one_level_per_tick():
    cluster, controller, state = make_controller()
    state["pressure"] = 5.0
    expected = [
        (0.6, 1, "fidelity_reduced"),
        (1.1, 2, "serve_stale_active"),
        (1.6, 3, "relaxed_reads_active"),
        (2.1, 4, "priority_admission_active"),
        (2.6, 5, "deadline_shed_active"),
    ]
    reached = []
    for t, level, prop in expected:
        run_to(cluster, t)
        assert controller.level == level
        assert getattr(controller, prop)
        reached.append(prop)
        # everything below stays on, everything above stays off
        for _, other_level, other in expected:
            assert getattr(controller, other) == (other in reached), \
                f"at level {level}, {other} wrong"
    run_to(cluster, 4.0)
    assert controller.level == MAX_LEVEL  # clamped at the top rung
    assert controller.peak_level == MAX_LEVEL


def test_hold_ticks_space_out_successive_escalations():
    """One congested sample must not slam the ladder to its top rung:
    with a 2-tick hold, escalations land 1 s apart, not 0.5 s."""
    cluster, controller, state = make_controller(degrade_hold_ticks=2)
    state["pressure"] = 5.0
    run_to(cluster, 0.6)
    assert controller.level == 1
    run_to(cluster, 1.1)
    assert controller.level == 1  # held
    run_to(cluster, 1.6)
    assert controller.level == 2


def test_deescalation_requires_a_dwell_of_calm_ticks():
    cluster, controller, state = make_controller()
    state["pressure"] = 5.0
    run_to(cluster, 1.1)
    assert controller.level == 2
    state["pressure"] = 0.0
    run_to(cluster, 1.6)
    assert controller.level == 2  # one calm tick: not yet
    run_to(cluster, 2.1)
    assert controller.level == 1  # dwell (2 ticks) satisfied
    run_to(cluster, 3.1)
    assert controller.level == 0  # two more calm ticks
    run_to(cluster, 5.0)
    assert controller.level == 0  # never goes below full


def test_pressure_between_thresholds_holds_the_level():
    """The hysteresis band: neither escalate nor count toward the
    calm dwell — mid pressure resets the calm counter."""
    cluster, controller, state = make_controller()
    state["pressure"] = 5.0
    run_to(cluster, 0.6)
    assert controller.level == 1
    state["pressure"] = 0.75  # exit (0.5) < pressure < enter (1.0)
    run_to(cluster, 5.0)
    assert controller.level == 1
    # one calm tick, then mid pressure again: dwell must restart
    state["pressure"] = 0.0
    run_to(cluster, 5.6)
    state["pressure"] = 0.75
    run_to(cluster, 6.1)
    state["pressure"] = 0.0
    run_to(cluster, 6.6)
    assert controller.level == 1  # still only one consecutive calm tick
    run_to(cluster, 7.1)
    assert controller.level == 0


def test_max_level_caps_the_climb():
    cluster, controller, state = make_controller(degrade_max_level=2)
    state["pressure"] = 5.0
    run_to(cluster, 5.0)
    assert controller.level == 2
    assert not controller.relaxed_reads_active


def test_summary_reports_transitions_and_level_time():
    cluster, controller, state = make_controller()
    state["pressure"] = 5.0
    run_to(cluster, 1.1)
    state["pressure"] = 0.0
    run_to(cluster, 3.1)
    summary = controller.summary()
    assert summary["level"] == 0
    assert summary["peak_level"] == 2
    assert summary["peak_pressure"] == 5.0
    assert summary["ticks"] == 6
    moves = [(move["from"], move["to"])
             for move in summary["transitions"]]
    assert moves == [
        ("full", "reduced-fidelity"),
        ("reduced-fidelity", "serve-stale"),
        ("serve-stale", "reduced-fidelity"),
        ("reduced-fidelity", "full"),
    ]
    assert all(move["pressure"] >= 0.0
               for move in summary["transitions"])
    level_time = summary["level_time"]
    assert "full" in level_time  # always reported, even at zero
    assert level_time["reduced-fidelity"] > 0.0
    assert level_time["serve-stale"] > 0.0


def test_quiet_cluster_never_degrades():
    cluster, controller, state = make_controller()
    run_to(cluster, 10.0)
    assert controller.level == 0
    assert controller.peak_level == 0
    assert controller.summary()["transitions"] == []
