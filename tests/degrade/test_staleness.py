"""FreshnessCache: fresh/stale/expired classification and counters."""

import pytest

from repro.degrade.staleness import FRESH, STALE, FreshnessCache


def test_ttl_validation():
    with pytest.raises(ValueError):
        FreshnessCache(fresh_ttl_s=0.0, stale_ttl_s=10.0)
    with pytest.raises(ValueError):
        FreshnessCache(fresh_ttl_s=5.0, stale_ttl_s=4.0)


def test_fresh_then_stale_then_expired():
    cache = FreshnessCache(fresh_ttl_s=2.0, stale_ttl_s=10.0)
    cache.put("a", "value", now=0.0)
    assert cache.get("a", now=2.0) == (FRESH, "value")   # boundary
    assert cache.get("a", now=2.1) == (STALE, "value")
    assert cache.get("a", now=10.0) == (STALE, "value")  # boundary
    assert cache.get("a", now=10.1) is None
    assert cache.fresh_hits == 1
    assert cache.stale_hits == 2
    assert cache.misses == 1


def test_expired_entries_are_deleted():
    cache = FreshnessCache(fresh_ttl_s=1.0, stale_ttl_s=2.0)
    cache.put("a", 1, now=0.0)
    cache.put("b", 2, now=0.0)
    assert len(cache) == 2
    assert cache.get("a", now=5.0) is None
    assert len(cache) == 1  # the bound on unbounded growth


def test_missing_key_is_a_miss():
    cache = FreshnessCache(fresh_ttl_s=1.0, stale_ttl_s=2.0)
    assert cache.get("never-stored", now=0.0) is None
    assert cache.misses == 1


def test_rewriting_refreshes_the_timestamp():
    cache = FreshnessCache(fresh_ttl_s=1.0, stale_ttl_s=10.0)
    cache.put("a", "old", now=0.0)
    cache.put("a", "new", now=5.0)
    assert cache.get("a", now=5.5) == (FRESH, "new")
