"""DegradableBenchService request paths and the brownout distiller's
cost model, level by level."""

from types import SimpleNamespace

from repro.core.config import SNSConfig
from repro.degrade.guards import CircuitBreaker
from repro.degrade.service import (
    BrownoutJpegDistiller,
    DegradableBenchService,
)
from repro.distillers.jpeg import JpegDistiller
from repro.experiments._harness import build_bench_fabric
from repro.sim.rng import RandomStreams
from repro.tacc.content import Content, zero_payload
from repro.tacc.worker import TACCRequest
from repro.transend.adaptation import DEFAULT_TIERS
from repro.workload.trace import TraceRecord


def ladder_stub(level):
    """A stand-in controller pinned at one ladder level."""
    return SimpleNamespace(
        level=level,
        fidelity_reduced=level >= 1,
        serve_stale_active=level >= 2,
        relaxed_reads_active=level >= 3,
        priority_admission_active=level >= 4,
        deadline_shed_active=level >= 5,
        forced_tier=DEFAULT_TIERS[0],
    )


def make_fabric(**config_overrides):
    defaults = dict(frontend_connection_overhead_s=0.001)
    defaults.update(config_overrides)
    fabric = build_bench_fabric(
        n_nodes=6, seed=5, config=SNSConfig(**defaults),
        service_backend="degradable")
    fabric.boot(n_frontends=1,
                initial_workers={JpegDistiller.worker_type: 2})
    fabric.cluster.run(until=2.0)
    return fabric


def submit(fabric, record):
    reply = fabric.submit(record)
    return fabric.cluster.env.run(until=reply)


def record(url="http://pics/a.jpg", size=10240, index=0,
           priority="interactive"):
    return TraceRecord(0.0, f"client{index}", url, "image/jpeg", size,
                       priority=priority)


def test_distill_then_fresh_cache_hit():
    fabric = make_fabric()
    first = submit(fabric, record())
    assert first.status == "ok" and first.path == "distilled"
    assert fabric.service.origin_fetches == 1
    second = submit(fabric, record())
    assert second.status == "ok" and second.path == "cache-hit"
    assert fabric.service.origin_fetches == 1  # original fetched once


def test_stale_entry_is_recomputed_without_a_controller():
    fabric = make_fabric()
    submit(fabric, record())
    env = fabric.cluster.env
    fabric.cluster.run(until=env.now + 3.0)  # past the 2 s fresh TTL
    response = submit(fabric, record())
    assert response.status == "ok" and response.path == "distilled"
    assert fabric.service.results.stale_hits == 1
    assert fabric.service.stale_served == 0


def test_serve_stale_level_answers_from_the_stale_entry():
    fabric = make_fabric()
    submit(fabric, record())
    fabric.service.degradation = ladder_stub(2)
    env = fabric.cluster.env
    fabric.cluster.run(until=env.now + 3.0)
    response = submit(fabric, record())
    assert response.status == "degraded"
    assert response.path == "serve-stale"
    assert response.annotations["degrade_mode"] == "serve-stale"
    assert fabric.service.stale_served == 1


def test_fresh_hits_stay_full_quality_under_degradation():
    """Serve-stale must not turn fresh answers stale: a fresh hit is
    an ``ok`` even at the top of the ladder."""
    fabric = make_fabric()
    submit(fabric, record())
    fabric.service.degradation = ladder_stub(5)
    response = submit(fabric, record())
    assert response.status == "ok" and response.path == "cache-hit"


def test_reduced_fidelity_forces_the_brownout_tier():
    fabric = make_fabric()
    fabric.service.degradation = ladder_stub(1)
    response = submit(fabric, record())
    assert response.status == "degraded"
    assert response.path == "distilled-low-fidelity"
    assert response.annotations["degrade_level"] == 1
    assert fabric.service.low_fidelity_served == 1


def test_open_breaker_converts_cold_misses_into_fast_fallbacks():
    fabric = make_fabric(origin_breaker_failures=3)
    service = fabric.service
    assert isinstance(service.origin_breaker, CircuitBreaker)
    service.origin_breaker._trip()
    env = fabric.cluster.env
    start = env.now
    response = submit(fabric, record())
    assert response.status == "fallback"
    assert response.path == "origin-breaker"
    assert service.breaker_fallbacks == 1
    assert service.origin_fetches == 0
    assert env.now - start < 0.1  # no origin wait: that is the point


def test_breaker_absent_unless_configured():
    fabric = make_fabric()
    assert fabric.service.origin_breaker is None


def test_works_without_a_profile_store():
    fabric = make_fabric()
    assert isinstance(fabric.service, DegradableBenchService)
    assert fabric.service.store is None
    assert submit(fabric, record()).ok


# -- brownout distiller cost model --------------------------------------------

def brownout_request(quality, size=24576):
    content = Content("http://pics/a.jpg", "image/jpeg",
                      zero_payload(size))
    return TACCRequest(inputs=[content], params={"quality": quality},
                       user_id="client0")


def test_brownout_quality_shrinks_estimate_and_sample():
    stock = JpegDistiller()
    brownout = BrownoutJpegDistiller()
    cheap = brownout_request(BrownoutJpegDistiller.BROWNOUT_QUALITY)
    estimate = brownout.work_estimate(cheap)
    assert estimate == stock.work_estimate(cheap) \
        * BrownoutJpegDistiller.BROWNOUT_COST_FACTOR
    rng_a = RandomStreams(2).stream("work")
    rng_b = RandomStreams(2).stream("work")
    assert brownout.work_sample(rng_a, cheap) == \
        stock.work_sample(rng_b, cheap) \
        * BrownoutJpegDistiller.BROWNOUT_COST_FACTOR


def test_normal_quality_costs_exactly_the_stock_model():
    stock = JpegDistiller()
    brownout = BrownoutJpegDistiller()
    normal = brownout_request(25)
    assert brownout.work_estimate(normal) == \
        stock.work_estimate(normal)
    rng_a = RandomStreams(2).stream("work")
    rng_b = RandomStreams(2).stream("work")
    assert brownout.work_sample(rng_a, normal) == \
        stock.work_sample(rng_b, normal)
