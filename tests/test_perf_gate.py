"""The fan-out perf gate keys its speedup floor off the *runner's*
core count, never the count recorded in the committed JSON — a stale
measurement file from a small machine must not waive the floor on a
machine that can demonstrate the speedup."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_perf_gate():
    spec = importlib.util.spec_from_file_location(
        "perf_gate", REPO_ROOT / "benchmarks" / "perf_gate.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


perf_gate = _load_perf_gate()


def payload(speedup=2.1, cpu_count=8, byte_identical=True):
    return {
        "benchmark": "fanout",
        "schema": 1,
        "calibration_ops_per_sec": 26206153,
        "cpu_count": cpu_count,
        "sweep": {
            "campaign": "smoke",
            "runs": 8,
            "jobs": 4,
            "serial_s": 2.0,
            "parallel_s": round(2.0 / speedup, 3),
            "speedup": speedup,
            "byte_identical": byte_identical,
        },
    }


def write(tmp_path, data):
    path = tmp_path / "BENCH_fanout.json"
    path.write_text(json.dumps(data), encoding="utf-8")
    return path


def gate(path, runner_cores, min_speedup=1.8, min_cores=4):
    return perf_gate.gate_fanout(path, min_speedup, min_cores,
                                 runner_cores=runner_cores)


def test_passes_on_capable_runner_with_good_measurement(tmp_path,
                                                        capsys):
    path = write(tmp_path, payload(speedup=2.1, cpu_count=8))
    assert gate(path, runner_cores=8) == 0
    assert "perf gate passed" in capsys.readouterr().out


def test_byte_identity_failure_is_unconditional(tmp_path, capsys):
    path = write(tmp_path, payload(byte_identical=False, cpu_count=1))
    # even a 1-core runner (which skips the speedup floor) must fail
    assert gate(path, runner_cores=1) == 1
    assert "not byte-identical" in capsys.readouterr().out


def test_small_runner_skips_speedup_floor(tmp_path, capsys):
    # an honest sub-1x measurement from a 1-core machine passes there
    path = write(tmp_path, payload(speedup=0.83, cpu_count=1))
    assert gate(path, runner_cores=1) == 0
    out = capsys.readouterr().out
    assert "speedup floor skipped" in out
    assert "perf gate passed" in out


def test_stale_small_machine_file_fails_on_capable_runner(tmp_path,
                                                          capsys):
    """The satellite's core case: the committed JSON says cpu_count=1
    (floor unmeasurable there), but THIS runner has 8 cores — the gate
    must demand a regenerated measurement, not skip."""
    path = write(tmp_path, payload(speedup=0.83, cpu_count=1))
    assert gate(path, runner_cores=8) == 1
    out = capsys.readouterr().out
    assert "regenerate" in out
    assert "recorded on 1 core(s)" in out


def test_speedup_below_floor_fails(tmp_path, capsys):
    path = write(tmp_path, payload(speedup=1.2, cpu_count=8))
    assert gate(path, runner_cores=8) == 1
    assert "below the 1.80x floor" in capsys.readouterr().out


def test_cli_runner_cores_override(tmp_path, capsys):
    path = write(tmp_path, payload(speedup=2.1, cpu_count=8))
    assert perf_gate.main(["--fanout", str(path),
                           "--runner-cores", "8"]) == 0
    assert perf_gate.main(["--fanout", str(path),
                           "--runner-cores", "1"]) == 0
    capsys.readouterr()
    stale = write(tmp_path, payload(speedup=0.9, cpu_count=1))
    assert perf_gate.main(["--fanout", str(stale),
                           "--runner-cores", "4"]) == 1


def test_default_runner_cores_is_this_machine(tmp_path, monkeypatch,
                                              capsys):
    path = write(tmp_path, payload(speedup=2.1, cpu_count=8))
    monkeypatch.setattr(perf_gate.os, "cpu_count", lambda: 2)
    assert gate(path, runner_cores=None, min_cores=4) == 0
    assert "gate runner has 2" in capsys.readouterr().out


def test_single_core_artifact_warning_is_loud(tmp_path, capsys):
    """A committed file recorded on one core passes the gate there but
    must shout that its speedup number is fork overhead, not scaling."""
    path = write(tmp_path, payload(speedup=0.83, cpu_count=1))
    assert gate(path, runner_cores=1) == 0
    out = capsys.readouterr().out
    assert "WARNING" in out
    assert "single-core machine" in out
    assert "Regenerate on a multi-core box" in out


def test_no_warning_for_multicore_measurement(tmp_path, capsys):
    path = write(tmp_path, payload(speedup=2.1, cpu_count=8))
    assert gate(path, runner_cores=8) == 0
    assert "WARNING" not in capsys.readouterr().out


def replay_payload(requests_per_sec=68000.0, speedup=2.4, cpu_count=8,
                   drift_ok=True, calibration=26206153):
    return {
        "benchmark": "replay10m",
        "schema": 1,
        "scale": 1.0,
        "calibration_ops_per_sec": calibration,
        "cpu_count": cpu_count,
        "replay": {
            "duration_s": 5000.0,
            "mean_rate_rps": 2000.0,
            "requests": 10_000_000,
            "serial_s": round(10_000_000 / requests_per_sec, 3),
            "requests_per_sec": requests_per_sec,
            "jobs": 4,
            "n_windows": 4,
            "sharded_s": round(10_000_000 / requests_per_sec / speedup,
                               3),
            "speedup": speedup,
            "drift_ok": drift_ok,
            "latency_rel_diff": 0.0,
        },
    }


def write_replay(tmp_path, data, name="new_replay.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data), encoding="utf-8")
    return path


def gate_replay(new_path, baseline_path, runner_cores,
                max_regression=0.25, min_speedup=2.0, min_cores=4):
    return perf_gate.gate_replay(new_path, baseline_path,
                                 max_regression, min_speedup,
                                 min_cores, runner_cores=runner_cores)


def test_replay_passes_on_capable_runner(tmp_path, capsys):
    base = write_replay(tmp_path, replay_payload(),
                        name="BENCH_replay.json")
    new = write_replay(tmp_path, replay_payload())
    assert gate_replay(new, base, runner_cores=8) == 0
    out = capsys.readouterr().out
    assert "drift contract: ok" in out
    assert "perf gate passed" in out


def test_replay_drift_failure_is_unconditional(tmp_path, capsys):
    base = write_replay(tmp_path, replay_payload(),
                        name="BENCH_replay.json")
    new = write_replay(tmp_path,
                       replay_payload(drift_ok=False, cpu_count=1))
    # even a 1-core runner (which skips the speedup floor) must fail
    assert gate_replay(new, base, runner_cores=1) == 1
    assert "drifted" in capsys.readouterr().out


def test_replay_serial_regression_fails(tmp_path, capsys):
    base = write_replay(tmp_path, replay_payload(requests_per_sec=68000),
                        name="BENCH_replay.json")
    new = write_replay(tmp_path, replay_payload(requests_per_sec=40000))
    assert gate_replay(new, base, runner_cores=1) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_replay_normalization_forgives_slow_runner(tmp_path, capsys):
    """Half the raw rate on a machine whose calibration loop is also
    half as fast is not a regression."""
    base = write_replay(tmp_path, replay_payload(requests_per_sec=68000,
                                                 calibration=26000000),
                        name="BENCH_replay.json")
    new = write_replay(tmp_path, replay_payload(requests_per_sec=34000,
                                                calibration=13000000,
                                                cpu_count=1))
    assert gate_replay(new, base, runner_cores=1) == 0
    assert "ratio 1.00" in capsys.readouterr().out


def test_replay_small_runner_skips_speedup_floor(tmp_path, capsys):
    base = write_replay(tmp_path, replay_payload(),
                        name="BENCH_replay.json")
    new = write_replay(tmp_path,
                       replay_payload(speedup=0.6, cpu_count=1))
    assert gate_replay(new, base, runner_cores=1) == 0
    out = capsys.readouterr().out
    assert "speedup floor skipped" in out
    assert "perf gate passed" in out


def test_replay_stale_small_machine_file_fails_on_capable_runner(
        tmp_path, capsys):
    base = write_replay(tmp_path, replay_payload(),
                        name="BENCH_replay.json")
    new = write_replay(tmp_path,
                       replay_payload(speedup=0.6, cpu_count=1))
    assert gate_replay(new, base, runner_cores=8) == 1
    assert "regenerate" in capsys.readouterr().out


def test_replay_speedup_below_floor_fails(tmp_path, capsys):
    base = write_replay(tmp_path, replay_payload(),
                        name="BENCH_replay.json")
    new = write_replay(tmp_path,
                       replay_payload(speedup=1.3, cpu_count=8))
    assert gate_replay(new, base, runner_cores=8) == 1
    assert "below the 2.00x floor" in capsys.readouterr().out


def test_replay_single_core_baseline_warns(tmp_path, capsys):
    base = write_replay(tmp_path, replay_payload(cpu_count=1),
                        name="BENCH_replay.json")
    new = write_replay(tmp_path,
                       replay_payload(speedup=0.6, cpu_count=1))
    assert gate_replay(new, base, runner_cores=1) == 0
    out = capsys.readouterr().out
    assert "WARNING" in out
    assert "single-core machine" in out


def test_replay_cli_mode(tmp_path, capsys):
    base = write_replay(tmp_path, replay_payload(),
                        name="BENCH_replay.json")
    new = write_replay(tmp_path, replay_payload())
    assert perf_gate.main(["--replay", str(new),
                           "--replay-baseline", str(base),
                           "--runner-cores", "8"]) == 0
    capsys.readouterr()
    bad = write_replay(tmp_path, replay_payload(drift_ok=False),
                       name="bad_replay.json")
    assert perf_gate.main(["--replay", str(bad),
                           "--replay-baseline", str(base),
                           "--runner-cores", "1"]) == 1


def test_committed_measurement_gate_decision_matches_runner(capsys):
    """The repo's own committed BENCH_fanout.json, gated exactly as CI
    runs it: a small runner always passes (floor skipped); a capable
    runner must reject a measurement recorded on a small machine."""
    committed = REPO_ROOT / "BENCH_fanout.json"
    data = json.loads(committed.read_text(encoding="utf-8"))
    runner = perf_gate.os.cpu_count() or 1
    exit_code = perf_gate.main(["--fanout", str(committed)])
    if runner < 4:
        assert exit_code == 0
    elif data["cpu_count"] < 4:
        assert exit_code == 1  # stale file: regenerate here first
