"""The fan-out determinism guarantee: ``--jobs N`` output is
byte-identical to ``--jobs 1`` — sweep renders, chaos batch reports,
and merged span-trace files alike (ISSUE 5 acceptance criteria).
"""

import os

import pytest

from repro.chaos import run_campaign_batch
from repro.experiments import run_population_sweep
from repro.obs import capture_traces, export_chrome_trace

JOBS = 4


def test_population_sweep_byte_identical_across_jobs():
    kwargs = dict(populations=(25, 100, 400), requests_per_user=20,
                  seed=11)
    serial = run_population_sweep(**kwargs)
    pooled = run_population_sweep(**kwargs, jobs=JOBS)
    assert serial.render() == pooled.render()
    assert serial.sweep == pooled.sweep
    assert serial.byte_hit_rates == pooled.byte_hit_rates


def test_chaos_batch_byte_identical_across_jobs():
    serial = run_campaign_batch("smoke", master_seed=5, runs=3, jobs=1)
    pooled = run_campaign_batch("smoke", master_seed=5, runs=3,
                                jobs=JOBS)
    assert serial.render(verbose=True) == pooled.render(verbose=True)
    assert serial.seeds == pooled.seeds
    assert serial.merged_counters() == pooled.merged_counters()
    serial_latency = serial.merged_latency()
    pooled_latency = pooled.merged_latency()
    assert serial_latency.summary() == pooled_latency.summary()


def _batch_trace_bytes(tmp_path, jobs):
    out = tmp_path / f"trace-jobs{jobs}.json"
    with capture_traces(sample_every=5) as tracers:
        batch = run_campaign_batch("smoke", master_seed=5, runs=2,
                                   jobs=jobs)
    assert batch.ok
    count = export_chrome_trace(tracers, str(out))
    assert count > 0
    return out.read_bytes()


def test_span_trace_merge_byte_identical_across_jobs(tmp_path):
    assert _batch_trace_bytes(tmp_path, 1) == \
        _batch_trace_bytes(tmp_path, JOBS)


# -- crash isolation surfaces as harvest + exit code -----------------------


def _crashing_runner(seed, jobs=1):
    os._exit(23)


def _ok_runner(seed, jobs=1):
    return "fine"


def test_run_all_with_crashed_shard_exits_nonzero(monkeypatch, capsys):
    import repro.cli as cli

    # two tiny stand-in experiments; fork shares the patched table
    # with the shard children, so only the parent needs the patch
    monkeypatch.setattr(cli, "EXPERIMENTS", {
        "ok": ("a fine experiment", _ok_runner, _ok_runner),
        "boom": ("a crashing experiment", _crashing_runner,
                 _crashing_runner),
    })
    exit_code = cli.main(["run", "all", "--jobs", "2"])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "fine" in captured.out  # the surviving shard still printed
    assert "run[boom]" in captured.err
    assert "harvest 50%" in captured.err
    assert "1 of 2" in captured.err


def test_run_all_serial_unaffected(monkeypatch, capsys):
    import repro.cli as cli

    monkeypatch.setattr(cli, "EXPERIMENTS", {
        "ok": ("a fine experiment", _ok_runner, _ok_runner),
    })
    assert cli.main(["run", "all"]) == 0
    assert "fine" in capsys.readouterr().out


def test_chaos_cli_batch_progress_and_quiet(capsys):
    import repro.cli as cli

    assert cli.main(["chaos", "smoke", "--seed", "5", "--runs", "2",
                     "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "campaign batch" in captured.out
    assert "smoke#run0:seed=5" in captured.err
    assert "smoke#run1:seed=" in captured.err

    assert cli.main(["chaos", "smoke", "--seed", "5", "--runs", "2",
                     "--quiet"]) == 0
    captured = capsys.readouterr()
    assert "campaign batch" in captured.out
    assert captured.err == ""
