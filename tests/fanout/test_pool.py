"""Pool mechanics: ordering, bounded in-flight, crash isolation,
timeout, retry, and the harvest accounting (ISSUE 5 tentpole).

Shard entry points live at module level so they pickle by reference;
the pool's fork start method also lets them see test-module state.
"""

import os
import time

import pytest

from repro.fanout import (
    FanoutError,
    ShardSpec,
    run_sharded,
    shard_seed,
    specs_for_seeds,
)


def _double(value):
    return value * 2


def _double_after(value, delay_s):
    time.sleep(delay_s)
    return value * 2


def _crash():
    os._exit(13)


def _raise(message):
    raise ValueError(message)


def _sleep_forever():
    time.sleep(60.0)


def _flaky(marker_path, value):
    """Fails on the first attempt, succeeds once the marker exists."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("attempted")
        os._exit(7)
    return value


def _seeded(seed):
    return seed


def _specs(values, fn=_double):
    return [ShardSpec(shard_id=f"s{index}", fn=fn, args=(value,))
            for index, value in enumerate(values)]


def test_results_come_back_in_spec_order():
    # later shards finish first (earlier ones sleep longer)
    specs = [
        ShardSpec(shard_id=f"s{index}", fn=_double_after,
                  args=(index, 0.05 * (3 - index)))
        for index in range(4)
    ]
    sweep = run_sharded(specs, jobs=4)
    assert sweep.complete
    assert sweep.values() == [0, 2, 4, 6]
    assert [result.shard_id for result in sweep.results] == \
        ["s0", "s1", "s2", "s3"]


def test_serial_matches_pool():
    specs = _specs(range(6))
    serial = run_sharded(specs, jobs=1)
    pooled = run_sharded(specs, jobs=3)
    assert serial.values() == pooled.values() == [0, 2, 4, 6, 8, 10]
    assert serial.jobs == 1 and pooled.jobs == 3


def test_inflight_bounded_by_jobs():
    sweep = run_sharded(_specs(range(8)), jobs=2)
    assert 1 <= sweep.max_inflight <= 2


def test_crashed_shard_is_isolated():
    specs = _specs(range(3))
    specs.insert(1, ShardSpec(shard_id="boom", fn=_crash))
    sweep = run_sharded(specs, jobs=2)
    assert not sweep.complete
    assert sweep.completed == 3 and len(sweep.failed) == 1
    assert sweep.harvest == pytest.approx(0.75)
    failed = sweep.results[1]
    assert failed.shard_id == "boom" and not failed.ok
    assert "crashed" in failed.error and "13" in failed.error
    assert sweep.ok_values() == [0, 2, 4]
    with pytest.raises(FanoutError) as excinfo:
        sweep.values()
    assert "boom" in str(excinfo.value)


def test_exception_in_shard_reports_error():
    specs = [ShardSpec(shard_id="bad", fn=_raise, args=("kaput",))]
    sweep = run_sharded(specs, jobs=2)
    assert not sweep.results[0].ok
    assert "kaput" in sweep.results[0].error


def test_exception_in_serial_shard_reports_error():
    specs = [ShardSpec(shard_id="bad", fn=_raise, args=("kaput",))]
    sweep = run_sharded(specs, jobs=1)
    assert not sweep.results[0].ok
    assert "kaput" in sweep.results[0].error
    assert sweep.harvest == 0.0


def test_timeout_kills_the_shard():
    specs = [ShardSpec(shard_id="hang", fn=_sleep_forever,
                       timeout_s=0.5)]
    sweep = run_sharded(specs, jobs=2)
    assert not sweep.results[0].ok
    assert "timed out" in sweep.results[0].error


def test_retry_recovers_a_flaky_shard(tmp_path):
    marker = str(tmp_path / "attempted")
    specs = [ShardSpec(shard_id="flaky", fn=_flaky,
                       args=(marker, 42), retries=1)]
    sweep = run_sharded(specs, jobs=2)
    assert sweep.complete
    assert sweep.values() == [42]
    assert sweep.results[0].attempts == 2


def test_shard_seed_is_deterministic_and_distinct():
    assert shard_seed(1997, "a") == shard_seed(1997, "a")
    assert shard_seed(1997, "a") != shard_seed(1997, "b")
    assert shard_seed(1997, "a") != shard_seed(1998, "a")


def test_specs_for_seeds_builds_labeled_specs():
    specs = specs_for_seeds(_seeded, "bench", 1997, [3, 5])
    assert [spec.shard_id for spec in specs] == \
        ["bench#0:seed=3", "bench#1:seed=5"]
    sweep = run_sharded(specs, jobs=2)
    assert sweep.values() == [3, 5]


def test_progress_callback_sees_every_shard():
    seen = []

    def progress(result, n_done, n_total):
        seen.append((result.shard_id, n_done, n_total))

    run_sharded(_specs(range(3)), jobs=2, progress=progress)
    assert [entry[1] for entry in seen] == [1, 2, 3]
    assert all(entry[2] == 3 for entry in seen)
    assert {entry[0] for entry in seen} == {"s0", "s1", "s2"}


def test_empty_specs():
    sweep = run_sharded([], jobs=4)
    assert sweep.complete and sweep.values() == []
    assert sweep.harvest == 1.0
