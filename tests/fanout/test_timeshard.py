"""Time-sharded replay: window planning, the per-window unit, and the
serial-vs-sharded drift contract."""

import pytest

from repro.fanout.timeshard import (
    DriftReport,
    ReplaySpec,
    WindowResult,
    drift_check,
    replay_serial,
    replay_sharded,
    run_window,
    window_edges,
)

SPEC = ReplaySpec(duration_s=24.0, mean_rate_rps=200.0, seed=42)


# -- window planning ---------------------------------------------------------


def test_window_edges_snap_to_whole_seconds():
    assert window_edges(100.0, 4) == [0.0, 25.0, 50.0, 75.0, 100.0]
    assert window_edges(10.0, 3) == [0.0, 3.0, 7.0, 10.0]


def test_window_edges_cover_exactly_without_overlap():
    for duration, n in ((100.0, 7), (5.0, 2), (3600.0, 16)):
        edges = window_edges(duration, n)
        assert edges[0] == 0.0 and edges[-1] == duration
        assert len(edges) == n + 1
        assert all(b > a for a, b in zip(edges, edges[1:]))


def test_window_edges_short_trace_falls_back_to_fractional():
    # snapping 1.0/3 and 2.0/3 to whole seconds would collapse windows
    edges = window_edges(1.0, 3)
    assert edges == pytest.approx([0.0, 1.0 / 3, 2.0 / 3, 1.0])


def test_window_edges_validation():
    with pytest.raises(ValueError):
        window_edges(0.0, 2)
    with pytest.raises(ValueError):
        window_edges(10.0, 0)


# -- the per-window unit -----------------------------------------------------


def test_run_window_rejects_out_of_range_windows():
    for start, end in ((-1.0, 5.0), (5.0, 5.0), (8.0, 4.0),
                       (0.0, 25.0)):
        with pytest.raises(ValueError, match="window"):
            run_window(SPEC, start, end)


def test_run_window_rejects_unknown_service():
    spec = ReplaySpec(duration_s=5.0, service="no-such-service")
    with pytest.raises(ValueError, match="unknown replay service"):
        run_window(spec, 0.0, 5.0)


def test_run_window_drains_all_in_flight():
    window = run_window(SPEC, 0.0, SPEC.duration_s)
    assert window.submitted > 0
    assert window.completed == window.submitted
    assert window.failed == 0
    # the drain runs past the last arrival until its reply lands
    assert window.sim_end >= SPEC.duration_s - 1.0


def test_run_window_counts_only_its_own_window():
    whole = run_window(SPEC, 0.0, SPEC.duration_s)
    left = run_window(SPEC, 0.0, 10.0)
    right = run_window(SPEC, 10.0, SPEC.duration_s)
    assert left.submitted + right.submitted == whole.submitted
    assert left.completed + right.completed == whole.completed


# -- the drift contract ------------------------------------------------------


def test_sharded_replay_matches_serial_in_process():
    serial = replay_serial(SPEC)
    sharded = replay_sharded(SPEC, jobs=1, n_windows=3)
    report = drift_check(serial, sharded.merged)
    assert isinstance(report, DriftReport)
    assert report.ok, "\n".join(report.checks)
    assert sharded.merged.submitted == serial.submitted
    assert sharded.merged.completed == serial.completed
    assert len(sharded.windows) == 3


def test_sharded_replay_across_worker_processes():
    serial = replay_serial(SPEC)
    sharded = replay_sharded(SPEC, jobs=2)
    report = drift_check(serial, sharded.merged)
    assert report.ok, "\n".join(report.checks)
    assert len(sharded.windows) == 2
    assert len(sharded.window_elapsed_s) == 2


def test_more_windows_than_jobs():
    serial = replay_serial(SPEC)
    sharded = replay_sharded(SPEC, jobs=2, n_windows=5)
    assert drift_check(serial, sharded.merged).ok
    assert len(sharded.windows) == 5
    # windows come back in trace order regardless of completion order
    starts = [window.start_s for window in sharded.windows]
    assert starts == sorted(starts)


def test_odd_window_widths_preserve_counts():
    serial = replay_serial(SPEC)
    for n_windows in (2, 3, 7):
        sharded = replay_sharded(SPEC, jobs=1, n_windows=n_windows)
        assert sharded.merged.submitted == serial.submitted, n_windows
        assert sharded.merged.completed == serial.completed, n_windows


def test_zero_warmup_still_merges_counts_exactly():
    spec = ReplaySpec(duration_s=24.0, mean_rate_rps=200.0, seed=42,
                      warmup_s=0.0)
    serial = replay_serial(spec)
    sharded = replay_sharded(spec, jobs=1, n_windows=4)
    # counts are exact by construction even with no warm lead-in;
    # only latency needs the warm-up (and the tolerance)
    assert sharded.merged.submitted == serial.submitted
    assert sharded.merged.completed == serial.completed


# -- drift_check semantics ---------------------------------------------------


def _window(submitted=100, completed=100, failed=0, latency_sum=10.0):
    return WindowResult(start_s=0.0, end_s=10.0, submitted=submitted,
                        completed=completed, failed=failed,
                        latency_sum=latency_sum, latency_min=0.01,
                        latency_max=0.5, max_in_flight=4, n_events=500,
                        sim_end=10.0)


def test_drift_check_flags_count_mismatch():
    report = drift_check(_window(), _window(submitted=99,
                                            completed=99))
    assert not report.ok
    assert any("MISMATCH" in line for line in report.checks)


def test_drift_check_latency_tolerance():
    serial = _window(latency_sum=10.0)
    within = _window(latency_sum=10.4)   # +4% mean
    beyond = _window(latency_sum=11.0)   # +10% mean
    assert drift_check(serial, within, latency_tolerance=0.05).ok
    report = drift_check(serial, beyond, latency_tolerance=0.05)
    assert not report.ok
    assert any("DRIFT" in line for line in report.checks)
    assert report.mean_latency_rel_diff == pytest.approx(0.10)


def test_drift_check_handles_zero_completions():
    empty = _window(submitted=0, completed=0, latency_sum=0.0)
    assert drift_check(empty, empty).ok
