"""Tests for TranSend's cache subsystem."""

import pytest

from repro.sim.cluster import Cluster
from repro.tacc.content import MIME_JPEG, Content
from repro.transend.cachesys import CacheSubsystem


def build(n_nodes=3, capacity=1_000_000):
    cluster = Cluster(seed=4)
    cachesys = CacheSubsystem(cluster)
    for index in range(n_nodes):
        node = cluster.add_node(f"c{index}")
        cachesys.add_node(node, capacity)
    return cluster, cachesys


def content(url="http://x/a.jpg", size=1000):
    return Content(url, MIME_JPEG, b"j" * size)


def run(cluster, generator):
    return cluster.env.run(until=cluster.env.process(generator))


def test_store_then_lookup_hits():
    cluster, cachesys = build()
    item = content()
    cachesys.store("k1", item)

    def scenario():
        yield cluster.env.timeout(0.1)  # let the injection land
        found = yield from cachesys.lookup("k1")
        return found

    assert run(cluster, scenario()) is item
    assert cachesys.hits == 1


def test_lookup_miss_returns_none_and_counts():
    cluster, cachesys = build()

    def scenario():
        found = yield from cachesys.lookup("missing")
        return found

    assert run(cluster, scenario()) is None
    assert cachesys.misses == 1
    assert cachesys.hit_rate == 0.0


def test_lookup_pays_hit_latency():
    cluster, cachesys = build()
    cachesys.store("k1", content())

    def scenario():
        yield cluster.env.timeout(0.1)
        start = cluster.env.now
        yield from cachesys.lookup("k1")
        return cluster.env.now - start

    elapsed = run(cluster, scenario())
    assert elapsed >= 0.015  # at least the TCP overhead


def test_keys_partition_across_nodes():
    cluster, cachesys = build(n_nodes=3)
    owners = set()
    for index in range(60):
        node = cachesys.node_for(f"key{index}")
        owners.add(node.name)
    assert len(owners) == 3


def test_crashed_node_is_dropped_and_its_keys_rehash():
    cluster, cachesys = build(n_nodes=2)
    for index in range(40):
        cachesys.store(f"key{index}", content(url=f"http://x/{index}"))

    def scenario():
        yield cluster.env.timeout(0.5)
        victim = next(iter(cachesys.nodes.values()))
        victim_name = victim.name
        victim.kill()
        # a lookup after the crash triggers the rehash
        yield from cachesys.lookup("key0")
        return victim_name

    victim_name = run(cluster, scenario())
    assert victim_name not in cachesys.nodes
    assert len(cachesys.partitioner.nodes) == 1
    # all keys now route to the survivor
    survivor = next(iter(cachesys.nodes.values()))
    assert cachesys.node_for("anything") is survivor


def test_remove_node_loses_only_its_partition():
    cluster, cachesys = build(n_nodes=2)
    keys = [f"key{index}" for index in range(60)]
    placement = {key: cachesys.node_for(key).name for key in keys}
    for key in keys:
        cachesys.store(key, content(url=key))

    def scenario():
        yield cluster.env.timeout(1.0)
        removed = sorted(cachesys.nodes)[0]
        cachesys.remove_node(removed)
        yield cluster.env.timeout(0.1)
        survivors = []
        for key in keys:
            value = yield from cachesys.lookup(key)
            if value is not None:
                survivors.append(key)
        return removed, survivors

    removed, survivors = run(cluster, scenario())
    # mod-hash over 1 node: every key routes to the survivor; only keys
    # that were already there remain findable
    expected = [key for key in keys if placement[key] != removed]
    assert survivors == expected


def test_variant_index_returns_approximate_answer():
    cluster, cachesys = build()
    distilled_a = content("http://x/a.jpg", 500)
    cachesys.store("distilled:a|q=25", distilled_a,
                   variant_of="http://x/a.jpg")

    def scenario():
        yield cluster.env.timeout(0.1)
        variant = yield from cachesys.any_variant("http://x/a.jpg")
        nothing = yield from cachesys.any_variant("http://x/other.jpg")
        return variant, nothing

    variant, nothing = run(cluster, scenario())
    assert variant is distilled_a
    assert nothing is None


def test_cache_node_serializes_requests():
    """One cache node is a serial server (~37 req/s ceiling)."""
    cluster, cachesys = build(n_nodes=1)
    cachesys.store("k", content())

    def scenario():
        yield cluster.env.timeout(0.1)
        start = cluster.env.now
        events = [next(iter(cachesys.nodes.values())).lookup("k")
                  for _ in range(20)]
        yield cluster.env.all_of(events)
        return cluster.env.now - start

    elapsed = run(cluster, scenario())
    # 20 serial hits at ~27 ms each
    assert elapsed > 0.3
