"""Chaos soak against the full TranSend stack — including cache nodes.

"Caching in TranSend is only an optimization.  All cached data can be
thrown away at the cost of performance" (Section 3.1.5): killing cache
nodes must cost hit rate, never correctness.
"""

import pytest

from repro.core.config import SNSConfig
from repro.sim.rng import RandomStreams
from repro.transend.service import TranSend
from repro.workload.playback import PlaybackEngine
from repro.workload.tracegen import TraceGenerator


def test_transend_survives_mixed_component_chaos():
    transend = TranSend(
        n_nodes=12, n_cache_nodes=4, seed=23,
        config=SNSConfig(dispatch_timeout_s=5.0, spawn_damping_s=4.0,
                         frontend_connection_overhead_s=0.002))
    transend.start(n_frontends=2,
                   initial_workers={"jpeg-distiller": 1,
                                    "gif-distiller": 1,
                                    "html-munger": 1})
    env = transend.cluster.env
    trace = TraceGenerator(seed=31, mean_rate_rps=8.0,
                           n_users=60).generate(120.0)
    engine = PlaybackEngine(env, transend.submit,
                            rng=RandomStreams(5).stream("chaos"),
                            timeout_s=90.0)
    env.process(engine.play(trace))

    def saboteur(env):
        rng = RandomStreams(77).stream("saboteur")
        while env.now < 100.0:
            yield env.timeout(rng.exponential(12.0))
            roll = rng.random()
            if roll < 0.4 and transend.fabric.alive_workers():
                rng.choice(transend.fabric.alive_workers()).kill()
            elif roll < 0.6 and len(transend.cachesys.nodes) > 1:
                name = rng.choice(sorted(transend.cachesys.nodes))
                transend.cachesys.nodes[name].kill()
            elif roll < 0.8 and transend.fabric.manager and \
                    transend.fabric.manager.alive:
                transend.fabric.manager.kill()
            elif len(transend.fabric.alive_frontends()) > 1:
                rng.choice(
                    transend.fabric.alive_frontends()).kill()

    env.process(saboteur(env))
    transend.run(until=300.0)

    total = len(engine.outcomes)
    assert total > 500
    answered = [outcome for outcome in engine.outcomes if outcome.ok]
    # every answered request carried genuine content (correctness)
    for outcome in answered:
        assert outcome.response.size_bytes > 0
        assert outcome.response.status in ("ok", "fallback")
    # availability: the stack absorbed every category of failure
    assert len(answered) > 0.9 * total
    # the system converged back to health
    assert transend.fabric.manager.alive
    assert transend.fabric.alive_frontends()
    assert transend.cachesys.nodes  # at least one cache partition left


def test_killing_every_cache_node_degrades_but_never_breaks():
    transend = TranSend(
        n_nodes=8, n_cache_nodes=3, seed=29,
        config=SNSConfig(dispatch_timeout_s=5.0,
                         frontend_connection_overhead_s=0.002))
    transend.start(initial_workers={"jpeg-distiller": 1})
    # warm the cache with a repeated URL
    from repro.workload.trace import TraceRecord

    def record(t=0.0):
        return TraceRecord(t, "client1", "http://pics/a.jpg",
                           "image/jpeg", 10240)

    first = transend.run_until(transend.submit(record()))
    assert first.path == "distilled"
    warm = transend.run_until(transend.submit(record()))
    assert warm.path == "cache-hit-distilled"
    origin_fetches_before = transend.origin.fetches
    # throw away every cache node: all BASE data gone
    for name in list(transend.cachesys.nodes):
        transend.cachesys.nodes[name].kill()
    after = transend.run_until(transend.submit(record()))
    # correctness: a real answer, re-derived from the origin
    assert after.status == "ok"
    assert after.path == "distilled"
    # performance cost: the origin had to be consulted again
    assert transend.origin.fetches > origin_fetches_before
