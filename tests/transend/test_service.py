"""End-to-end TranSend tests: the Section 3.1 request path and the
Section 3.1.8 BASE behaviours."""

import pytest

from repro.core.config import SNSConfig
from repro.sim.failures import FaultInjector
from repro.sim.rng import RandomStreams
from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG
from repro.tacc.customization import TransactionError
from repro.transend.service import TranSend
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord


def fast_config(**overrides):
    defaults = dict(
        dispatch_timeout_s=3.0,
        spawn_damping_s=4.0,
        frontend_connection_overhead_s=0.001,
    )
    defaults.update(overrides)
    return SNSConfig(**defaults)


def make_transend(**kwargs):
    kwargs.setdefault("config", fast_config())
    kwargs.setdefault("seed", 13)
    return TranSend(**kwargs)


def record(url="http://pics/a.jpg", mime=MIME_JPEG, size=10240,
           client="client1", t=0.0):
    return TraceRecord(timestamp=t, client_id=client, url=url, mime=mime,
                       size_bytes=size)


def test_jpeg_request_is_distilled():
    transend = make_transend().start(
        initial_workers={"jpeg-distiller": 1})
    reply = transend.submit(record())
    response = transend.run_until(reply)
    assert response.status == "ok"
    assert response.path == "distilled"
    assert response.size_bytes < 10240 / 3
    assert response.content.metadata["derived_by"] == "jpeg-distiller"


def test_small_content_passes_through_unmodified():
    """The 1 KB distillation threshold."""
    transend = make_transend().start(
        initial_workers={"gif-distiller": 1})
    reply = transend.submit(record(url="http://icons/dot.gif",
                                   mime=MIME_GIF, size=200))
    response = transend.run_until(reply)
    assert response.path == "passthrough"
    assert response.size_bytes == 200


def test_unknown_mime_passes_through():
    transend = make_transend().start()
    reply = transend.submit(record(url="http://x/blob.bin",
                                   mime="application/octet-stream",
                                   size=50000))
    response = transend.run_until(reply)
    assert response.path == "passthrough"


def test_repeat_request_hits_distilled_cache():
    transend = make_transend().start(
        initial_workers={"jpeg-distiller": 1})
    first = transend.run_until(transend.submit(record()))
    assert first.path == "distilled"
    second = transend.run_until(transend.submit(record()))
    assert second.path == "cache-hit-distilled"
    assert second.size_bytes == first.size_bytes
    # the origin was fetched exactly once
    assert transend.origin.fetches == 1


def test_different_preferences_different_cache_entries():
    """Objects are named by URL *and* preferences (Section 3.1.8)."""
    transend = make_transend().start(
        initial_workers={"jpeg-distiller": 1})
    transend.set_preference("client2", "quality", 75)
    first = transend.run_until(transend.submit(record(client="client1")))
    second = transend.run_until(transend.submit(record(client="client2")))
    assert first.path == "distilled"
    assert second.path == "distilled"  # not a cache hit: different prefs
    assert second.size_bytes > first.size_bytes  # higher quality = bigger


def test_user_can_disable_distillation():
    transend = make_transend().start(
        initial_workers={"jpeg-distiller": 1})
    transend.set_preference("client9", "distill_images", False)
    reply = transend.submit(record(client="client9"))
    response = transend.run_until(reply)
    assert response.path == "passthrough"


def test_preference_validation_enforced():
    transend = make_transend().start()
    with pytest.raises(TransactionError):
        transend.set_preference("client1", "quality", 5000)


def test_html_gets_munged():
    transend = make_transend(real_content=True).start(
        initial_workers={"html-munger": 1})
    reply = transend.submit(record(url="http://site/page.html",
                                   mime=MIME_HTML, size=5000))
    response = transend.run_until(reply)
    assert response.path == "distilled"
    assert b"transend-toolbar" in response.content.data


def test_real_content_mode_runs_actual_distillers():
    transend = make_transend(real_content=True).start(
        initial_workers={"gif-distiller": 1})
    reply = transend.submit(record(url="http://pics/photo.gif",
                                   mime=MIME_GIF, size=10240))
    response = transend.run_until(reply)
    assert response.status == "ok"
    assert response.path == "distilled"
    # real bytes, really smaller (the Figure 3 effect, end to end)
    assert response.content.mime == MIME_JPEG
    assert response.content.reduction_factor() > 3.0


def test_total_distiller_loss_falls_back_to_original():
    """BASE approximate answers: 'if the required distiller has
    temporarily or permanently failed, the system can return the
    original content.'"""
    transend = make_transend(
        config=fast_config(spawn_threshold=1e9)).start(
        initial_workers={"jpeg-distiller": 1})
    # sabotage: remove the type from the registry so respawn cannot work,
    # then kill the distiller
    victim = transend.fabric.alive_workers("jpeg-distiller")[0]

    def sabotage(env):
        yield env.timeout(1.0)
        transend.registry._factories.pop("jpeg-distiller")
        victim.kill()

    transend.cluster.env.process(sabotage(transend.cluster.env))
    transend.run(until=transend.cluster.env.now + 3.0)
    reply = transend.submit(record())
    response = transend.run_until(reply)
    assert response.status == "fallback"
    assert response.path == "fallback-original"
    assert response.size_bytes == 10240


def test_overload_returns_cached_variant_if_available():
    """'If the system is too heavily loaded to perform distillation, it
    can return a somewhat different version from the cache.'"""
    transend = make_transend(
        config=fast_config(spawn_threshold=1e9)).start(
        initial_workers={"jpeg-distiller": 1})
    # client1 distills at default prefs -> variant cached
    transend.run_until(transend.submit(record(client="client1")))
    # now the distiller dies and cannot come back
    transend.registry._factories.pop("jpeg-distiller")
    for stub in transend.fabric.alive_workers("jpeg-distiller"):
        stub.kill()
    transend.run(until=transend.cluster.env.now + 3.0)
    # client2 wants different prefs -> exact key misses, variant serves
    transend.set_preference("client2", "quality", 75)
    reply = transend.submit(record(client="client2"))
    response = transend.run_until(reply)
    assert response.status == "fallback"
    assert response.path == "fallback-variant"
    assert response.size_bytes < 10240


def test_trace_driven_run_accumulates_sane_stats():
    transend = make_transend().start(
        initial_workers={"jpeg-distiller": 1, "gif-distiller": 1,
                         "html-munger": 1})
    rng = RandomStreams(5).stream("pb")
    engine = PlaybackEngine(transend.cluster.env, transend.submit,
                            rng=rng, timeout_s=60.0)
    pool = [
        record(url=f"http://site/img{index % 10}.jpg",
               client=f"client{index % 5}", t=float(index))
        for index in range(40)
    ]
    transend.cluster.env.process(engine.constant_rate(4.0, 30.0, pool))
    transend.run(until=120.0)
    assert len(engine.completed()) == len(engine.outcomes)
    stats = transend.stats()
    assert stats["paths"].get("distilled", 0) >= 1
    assert stats["paths"].get("cache-hit-distilled", 0) >= 1
    assert 0.0 < stats["cache_hit_rate"] <= 1.0
    # only 10 distinct URLs; a few duplicate fetches are expected when
    # concurrent requests race on the same cold URL (no coalescing)
    assert transend.origin.fetches <= 16


def test_profile_reads_absorbed_by_write_through_cache():
    transend = make_transend().start(
        initial_workers={"jpeg-distiller": 1})
    for index in range(5):
        transend.run_until(transend.submit(
            record(url=f"http://pics/{index}.jpg", client="client1")))
    cache = transend.logic.profile_cache_for(
        transend.fabric.alive_frontends()[0].name)
    assert cache.misses == 1
    assert cache.hits >= 4
