"""TranSend with the replicated brick backend for the profile store:
same request-path behaviour, but preferences survive a brick kill."""

import pytest

from repro.core.config import SNSConfig
from repro.dstore import ReplicatedProfileStore
from repro.tacc.content import MIME_JPEG
from repro.tacc.customization import TransactionError
from repro.transend.service import TranSend
from repro.workload.trace import TraceRecord


def fast_config(**overrides):
    defaults = dict(
        dispatch_timeout_s=3.0,
        spawn_damping_s=4.0,
        frontend_connection_overhead_s=0.001,
    )
    defaults.update(overrides)
    return SNSConfig(**defaults)


def make_transend(**kwargs):
    kwargs.setdefault("config", fast_config())
    kwargs.setdefault("seed", 13)
    kwargs.setdefault("profile_backend", "dstore")
    return TranSend(**kwargs)


def record(client="client1"):
    return TraceRecord(timestamp=0.0, client_id=client,
                       url="http://pics/a.jpg", mime=MIME_JPEG,
                       size_bytes=10240)


def test_dstore_backend_wires_bricks_into_fabric():
    transend = make_transend()
    assert isinstance(transend.profile_store, ReplicatedProfileStore)
    assert transend.profile_bricks is not None
    assert transend.fabric.profile_bricks is transend.profile_bricks
    assert len(transend.fabric.brick_population()) == 3


def test_preferences_shape_distillation_through_bricks():
    transend = make_transend().start(
        initial_workers={"jpeg-distiller": 1})
    transend.set_preference("client2", "quality", 75)
    first = transend.run_until(transend.submit(record(client="client1")))
    second = transend.run_until(transend.submit(record(client="client2")))
    assert first.path == "distilled"
    assert second.path == "distilled"
    assert second.size_bytes > first.size_bytes


def test_preference_validator_still_enforced():
    transend = make_transend().start()
    with pytest.raises(TransactionError):
        transend.set_preference("client1", "quality", 5000)


def test_preferences_survive_a_brick_kill():
    """The point of the backend: kill any one brick and every stored
    preference is still readable through the surviving replicas."""
    transend = make_transend().start()
    for index in range(12):
        transend.set_preference(f"client{index}", "quality", 20 + index)
    transend.profile_bricks.brick_at(1).kill()
    store = transend.profile_store
    for index in range(12):
        assert store.get_value(f"client{index}", "quality") == 20 + index
    assert store.verify_committed() == []


def test_dstore_rejects_wal_path():
    with pytest.raises(ValueError):
        make_transend(profile_log_path="/tmp/profiles.wal")
    with pytest.raises(ValueError):
        make_transend(profile_backend="bogus")
