"""Tests for the origin server ('the Internet')."""

import pytest

from repro.distillers.images import SyntheticImage
from repro.sim.cluster import Cluster
from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG
from repro.transend.origin import OriginServer
from repro.workload.trace import TraceRecord


def record(url="http://x/a.gif", mime=MIME_GIF, size=8192):
    return TraceRecord(0.0, "c1", url, mime, size)


def make_origin(real=False, internet_bps=None):
    cluster = Cluster(seed=6)
    link = None
    if internet_bps is not None:
        link = cluster.add_access_link("internet", internet_bps)
    return cluster, OriginServer(cluster, link, real_content=real)


def test_sim_mode_materializes_exact_size():
    cluster, origin = make_origin()
    content = origin.materialize(record(size=12345))
    assert content.size == 12345
    assert content.mime == MIME_GIF
    assert content.metadata["origin"] == "sim"


def test_fetch_pays_miss_penalty():
    cluster, origin = make_origin()

    def scenario():
        start = cluster.env.now
        content = yield from origin.fetch(record())
        return cluster.env.now - start, content

    elapsed, content = cluster.env.run(
        until=cluster.env.process(scenario()))
    assert elapsed >= 0.1  # the minimum miss penalty
    assert origin.fetches == 1
    assert origin.bytes_fetched == content.size or \
        origin.bytes_fetched == 8192


def test_fetch_charges_internet_link():
    cluster, origin = make_origin(internet_bps=10_000.0)

    def scenario():
        yield from origin.fetch(record(size=5000))

    cluster.env.run(until=cluster.env.process(scenario()))
    link = cluster.network.access_links["internet"]
    assert link.bytes_sent == 5000


def test_real_mode_gif_is_decodable():
    cluster, origin = make_origin(real=True)
    content = origin.materialize(record(size=8192))
    image, codec, _ = SyntheticImage.decode(content.data)
    assert codec == 1  # GIF-coded
    assert 0.5 * 8192 <= content.size <= 2.0 * 8192


def test_real_mode_jpeg_is_decodable():
    cluster, origin = make_origin(real=True)
    content = origin.materialize(
        record(url="http://x/a.jpg", mime=MIME_JPEG, size=8192))
    image, codec, quality = SyntheticImage.decode(content.data)
    assert codec == 2  # JPEG-coded
    assert quality == 90


def test_real_mode_html_looks_like_html():
    cluster, origin = make_origin(real=True)
    content = origin.materialize(
        record(url="http://x/p.html", mime=MIME_HTML, size=3000))
    text = content.data.decode()
    assert text.startswith("<html>")
    assert "<img" in text
    assert abs(content.size - 3000) < 1500


def test_real_mode_memoizes_per_url():
    cluster, origin = make_origin(real=True)
    first = origin.materialize(record())
    second = origin.materialize(record())
    assert first is second
    different = origin.materialize(record(url="http://x/other.gif"))
    assert different is not first


def test_real_mode_unknown_mime_gets_bytes():
    cluster, origin = make_origin(real=True)
    content = origin.materialize(
        record(url="http://x/blob.bin", mime="application/pdf",
               size=1000))
    assert content.size >= 1000
