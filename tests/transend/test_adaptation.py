"""Tests for network-aware distillation adaptation (Section 5.4)."""

import pytest

from repro.core.config import SNSConfig
from repro.transend.adaptation import (
    MODEM_14_4_BPS,
    MODEM_28_8_BPS,
    AdaptationPolicy,
    AdaptationTier,
    BandwidthEstimator,
)
from repro.transend.service import TranSend
from repro.workload.trace import TraceRecord


# -- estimator ---------------------------------------------------------------

def test_estimator_defaults_until_observed():
    estimator = BandwidthEstimator(default_bps=3600.0)
    assert estimator.bandwidth_bps("new-client") == 3600.0


def test_estimator_ewma_converges():
    estimator = BandwidthEstimator(alpha=0.5)
    for _ in range(20):
        estimator.observe("c1", bytes_sent=10_000, elapsed_s=1.0)
    assert estimator.bandwidth_bps("c1") == pytest.approx(10_000, rel=0.01)
    assert estimator.observations == 20
    assert estimator.known_clients() == ["c1"]


def test_estimator_ignores_degenerate_samples():
    estimator = BandwidthEstimator()
    estimator.observe("c1", bytes_sent=0, elapsed_s=1.0)
    estimator.observe("c1", bytes_sent=100, elapsed_s=0.0)
    assert estimator.observations == 0


def test_degenerate_samples_leave_the_estimate_untouched():
    """Zero-length responses and zero/negative elapsed times carry no
    bandwidth information; they must not drag the EWMA toward zero or
    divide by zero."""
    estimator = BandwidthEstimator(alpha=0.5, default_bps=3600.0)
    estimator.observe("c1", bytes_sent=10_000, elapsed_s=1.0)
    settled = estimator.bandwidth_bps("c1")
    estimator.observe("c1", bytes_sent=0, elapsed_s=1.0)
    estimator.observe("c1", bytes_sent=-50, elapsed_s=1.0)
    estimator.observe("c1", bytes_sent=100, elapsed_s=0.0)
    estimator.observe("c1", bytes_sent=100, elapsed_s=-2.0)
    assert estimator.bandwidth_bps("c1") == settled
    assert estimator.observations == 1
    # an unobserved client is likewise untouched by its own junk
    estimator.observe("c2", bytes_sent=0, elapsed_s=0.0)
    assert estimator.bandwidth_bps("c2") == 3600.0


def test_ewma_weights_recent_samples_so_order_matters():
    """The EWMA is order-dependent by design: the same two samples in
    opposite orders settle on different estimates (exact values,
    alpha = 0.5: first sample seeds the estimate, then
    0.5*new + 0.5*old)."""
    ab = BandwidthEstimator(alpha=0.5)
    ab.observe("c", bytes_sent=1000, elapsed_s=1.0)   # seeds at 1000
    ab.observe("c", bytes_sent=3000, elapsed_s=1.0)   # 0.5*3000+0.5*1000
    assert ab.bandwidth_bps("c") == 2000.0
    ba = BandwidthEstimator(alpha=0.5)
    ba.observe("c", bytes_sent=3000, elapsed_s=1.0)   # seeds at 3000
    ba.observe("c", bytes_sent=1000, elapsed_s=1.0)
    assert ba.bandwidth_bps("c") == 2000.0
    ab.observe("c", bytes_sent=1000, elapsed_s=1.0)   # 0.5*1000+0.5*2000
    ba.observe("c", bytes_sent=3000, elapsed_s=1.0)
    assert ab.bandwidth_bps("c") == 1500.0
    assert ba.bandwidth_bps("c") == 2500.0  # late sample dominates


def test_estimator_validates():
    with pytest.raises(ValueError):
        BandwidthEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        BandwidthEstimator(default_bps=0.0)


# -- policy -------------------------------------------------------------------------

def test_slow_modem_gets_aggressive_distillation():
    policy = AdaptationPolicy()
    policy.estimator.observe("dialup", int(MODEM_14_4_BPS), 1.0)
    adapted = policy.adapt("dialup", {"quality": 25, "scale": 2})
    assert adapted["quality"] <= 10
    assert adapted["scale"] >= 3
    assert "14.4" in adapted["_adaptation_tier"]


def test_lan_client_gets_near_original_quality():
    policy = AdaptationPolicy()
    policy.estimator.observe("office", 1_000_000, 1.0)
    adapted = policy.adapt("office", {"quality": 25, "scale": 2})
    assert adapted["quality"] >= 90
    assert adapted["scale"] == 1


def test_explicit_user_choices_beat_adaptation():
    policy = AdaptationPolicy()
    policy.estimator.observe("dialup", int(MODEM_14_4_BPS), 1.0)
    preferences = {"quality": 80, "_user_set_quality": True,
                   "scale": 2}
    adapted = policy.adapt("dialup", preferences)
    assert adapted["quality"] == 80        # the user said so
    assert adapted["scale"] >= 3           # but scale still adapts


def test_unknown_client_uses_default_modem_tier():
    policy = AdaptationPolicy()
    adapted = policy.adapt("stranger", {})
    assert "28.8" in adapted["_adaptation_tier"]


def test_tier_boundaries_are_inclusive_on_the_low_side():
    """A client measured at *exactly* a tier's bandwidth bound belongs
    to that tier (``<=`` semantics): 2160 B/s is still the 14.4k modem,
    4320 B/s is still the 28.8k modem."""
    policy = AdaptationPolicy()
    cases = [
        (MODEM_14_4_BPS, "14.4"),    # 1800 B/s, well inside
        (2160.0, "14.4"),            # exactly the 14.4k bound
        (2160.1, "28.8"),            # just over: next tier up
        (MODEM_28_8_BPS, "28.8"),    # 3600 B/s
        (4320.0, "28.8"),            # exactly the 28.8k bound
        (4320.1, "ISDN"),
    ]
    for index, (bps, expected) in enumerate(cases):
        client = f"edge{index}"
        # a single observation seeds the EWMA with the raw sample, so
        # the estimate is exactly ``bps``
        policy.estimator.observe(client, bytes_sent=int(bps * 10),
                                 elapsed_s=10.0)
        adapted = policy.adapt(client, {})
        assert expected in adapted["_adaptation_tier"], \
            (bps, adapted["_adaptation_tier"])


def test_tier_validation():
    with pytest.raises(ValueError):
        AdaptationPolicy(tiers=())
    with pytest.raises(ValueError):
        AdaptationPolicy(tiers=(
            AdaptationTier(100.0, 10, 2, "a"),
            AdaptationTier(50.0, 20, 1, "b"),   # unordered
        ))
    with pytest.raises(ValueError):
        AdaptationPolicy(tiers=(
            AdaptationTier(100.0, 10, 2, "bounded-last"),))


# -- end to end through TranSend -------------------------------------------------------

def test_adaptive_transend_differentiates_clients():
    transend = TranSend(
        seed=17, adaptive=True,
        config=SNSConfig(dispatch_timeout_s=5.0,
                         frontend_connection_overhead_s=0.001))
    transend.start(initial_workers={"jpeg-distiller": 1})
    # teach the estimator about two very different clients
    transend.adaptation.estimator.observe("slow", int(MODEM_14_4_BPS),
                                          1.0)
    transend.adaptation.estimator.observe("fast", 2_000_000, 1.0)

    def record(client, url):
        return TraceRecord(0.0, client, url, "image/jpeg", 10240)

    slow_response = transend.run_until(
        transend.submit(record("slow", "http://pics/a.jpg")))
    fast_response = transend.run_until(
        transend.submit(record("fast", "http://pics/b.jpg")))
    assert slow_response.path == "distilled"
    assert fast_response.path == "distilled"
    # the slow modem's copy is much smaller
    assert slow_response.size_bytes < fast_response.size_bytes / 2


def test_adaptive_transend_respects_stored_preferences():
    transend = TranSend(
        seed=18, adaptive=True,
        config=SNSConfig(dispatch_timeout_s=5.0,
                         frontend_connection_overhead_s=0.001))
    transend.start(initial_workers={"jpeg-distiller": 1})
    transend.adaptation.estimator.observe("slow", int(MODEM_14_4_BPS),
                                          1.0)
    transend.set_preference("slow", "quality", 90)  # explicit choice

    record = TraceRecord(0.0, "slow", "http://pics/a.jpg",
                         "image/jpeg", 10240)
    response = transend.run_until(transend.submit(record))
    # quality respected in the distilled artifact's provenance
    assert response.content.metadata["quality"] == 90
