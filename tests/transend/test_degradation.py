"""TranSend under the degradation ladder: forced low-fidelity tier,
serve-stale variants, and the origin circuit breaker's fallbacks."""

from types import SimpleNamespace

from repro.core.config import SNSConfig
from repro.tacc.content import MIME_JPEG, Content
from repro.transend.adaptation import DEFAULT_TIERS
from repro.transend.profiles import distilled_cache_key
from repro.transend.service import TranSend
from repro.workload.trace import TraceRecord


def fast_config(**overrides):
    defaults = dict(
        dispatch_timeout_s=3.0,
        spawn_damping_s=4.0,
        frontend_connection_overhead_s=0.001,
    )
    defaults.update(overrides)
    return SNSConfig(**defaults)


def make_transend(**kwargs):
    kwargs.setdefault("config", fast_config())
    kwargs.setdefault("seed", 13)
    return TranSend(**kwargs).start(
        initial_workers={"jpeg-distiller": 1})


def record(url="http://pics/a.jpg", size=10240, client="client1"):
    return TraceRecord(timestamp=0.0, client_id=client, url=url,
                       mime=MIME_JPEG, size_bytes=size)


def ladder_stub(level):
    return SimpleNamespace(
        fidelity_reduced=level >= 1,
        serve_stale_active=level >= 2,
        relaxed_reads_active=level >= 3,
        priority_admission_active=level >= 4,
        deadline_shed_active=level >= 5,
        forced_tier=DEFAULT_TIERS[0],
    )


def test_forced_tier_overrides_even_user_preferences():
    vanilla = make_transend()
    full = vanilla.run_until(vanilla.submit(record()))
    assert full.status == "ok" and full.path == "distilled"

    transend = make_transend()
    transend.set_preference("client1", "quality", 90)
    transend.logic.degradation = ladder_stub(1)
    response = transend.run_until(transend.submit(record()))
    assert response.status == "degraded"
    assert response.path == "distilled-low-fidelity"
    assert response.annotations["degrade_mode"] == "reduced-fidelity"
    # the forced tier (quality 5, scale 4) beats both the default and
    # the user's explicit quality-90 ask
    assert response.size_bytes < full.size_bytes


def test_serve_stale_answers_from_any_cached_variant():
    transend = make_transend()
    first = transend.run_until(transend.submit(record(client="client1")))
    assert first.path == "distilled"
    # a second client with different preferences would normally cost
    # another distillation; under serve-stale it takes the variant
    transend.set_preference("client2", "quality", 75)
    transend.logic.degradation = ladder_stub(2)
    response = transend.run_until(
        transend.submit(record(client="client2")))
    assert response.status == "degraded"
    assert response.path == "serve-stale"
    assert response.size_bytes == first.size_bytes
    assert transend.origin.fetches == 1  # no second fetch either


def test_open_breaker_fails_fast_on_a_cold_url():
    transend = make_transend(config=fast_config(
        origin_breaker_failures=2))
    transend.logic.origin_breaker._trip()
    response = transend.run_until(
        transend.submit(record(url="http://pics/cold.jpg")))
    assert response.status == "error"
    assert response.path == "origin-breaker"
    assert transend.origin.fetches == 0
    assert transend.stats()["paths"]["origin-breaker"] == 1


def test_open_breaker_prefers_a_cached_variant():
    transend = make_transend(config=fast_config(
        origin_breaker_failures=2))
    url = "http://pics/warm.jpg"
    variant = Content(url, MIME_JPEG, b"v" * 2048)
    transend.cachesys.store(
        distilled_cache_key(url, {"quality": 99}), variant,
        variant_of=url)
    transend.logic.origin_breaker._trip()
    response = transend.run_until(transend.submit(record(url=url)))
    assert response.status == "fallback"
    assert response.path == "fallback-variant"
    assert response.detail == "origin breaker open"
    assert response.size_bytes == 2048


def test_breaker_absent_unless_configured():
    transend = make_transend()
    assert transend.logic.origin_breaker is None
