"""Unit tests for the online invariant checker."""

import pytest

from repro.chaos.invariants import InvariantChecker, InvariantViolation
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


def booted_fabric(**config_overrides):
    fabric = make_fabric(config=fast_config(**config_overrides))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    return fabric


def test_checked_submit_counts_and_passes_through():
    fabric = booted_fabric()
    checker = InvariantChecker(fabric)
    submit = checker.checked_submit(fabric.submit)
    reply = submit(make_record())
    response = fabric.cluster.env.run(until=reply)
    assert response is not None
    assert checker.submitted == 1
    assert checker.ok


def test_double_completion_flagged():
    fabric = booted_fabric()
    checker = InvariantChecker(fabric)
    checker.checked_submit(fabric.submit)  # installs nothing globally
    checker._completed(0)
    assert checker.ok
    checker._completed(0)
    assert not checker.ok
    assert checker.violations[0].invariant == "single-completion"


def test_reregistration_violation_when_worker_never_returns():
    """A worker alive at the heal that never re-appears in the manager's
    view must be flagged within the period budget."""
    fabric = booted_fabric()
    checker = InvariantChecker(fabric)
    victim = fabric.alive_workers()[0]
    victim.partition(6.0)
    heal_at = fabric.cluster.env.now + 6.0
    # re-partition just before the heal, forever: it can never register
    fabric.cluster.run(until=heal_at - 0.1)
    victim.partition(1000.0)
    checker.expect_reregistration(heal_at + 0.05)
    fabric.cluster.run(until=heal_at + 30.0)
    # the victim is partitioned => it leaves ground truth, so the checker
    # correctly does NOT blame it...
    assert checker.ok

    # ...but a worker that is reachable yet silent IS blamed
    silent = [stub for stub in fabric.alive_workers()
              if not stub.is_partitioned][0]
    # pretend to be registered with the current incarnation so the
    # beacon listener never re-registers
    silent._registered_incarnation = fabric.manager.incarnation
    if silent._manager_endpoint is not None:
        silent._manager_endpoint.channel.close()
        silent._manager_endpoint = None
    fabric.manager.workers.pop(silent.name, None)
    now = fabric.cluster.env.now
    checker.expect_reregistration(now)
    budget = (checker.reregister_periods + 2) * \
        fabric.config.beacon_interval_s
    fabric.cluster.run(until=now + budget + 5.0)
    assert any(v.invariant == "reregistration"
               for v in checker.violations)


def test_reregistration_success_records_time():
    fabric = booted_fabric()
    checker = InvariantChecker(fabric)
    victim = fabric.alive_workers()[0]
    victim.partition(5.0)
    heal_at = fabric.cluster.env.now + 5.0
    checker.expect_reregistration(heal_at)
    fabric.cluster.run(until=heal_at + 10.0)
    assert checker.ok
    assert len(checker.reregistration_times) == 1
    budget = checker.reregister_periods * fabric.config.beacon_interval_s
    assert checker.reregistration_times[0] <= budget


def test_convergence_success_and_extinction():
    fabric = booted_fabric()
    checker = InvariantChecker(fabric)
    now = fabric.cluster.env.now
    checker.expect_convergence(now + 1.0)
    fabric.cluster.run(until=now + 10.0)
    assert checker.ok
    assert checker.convergence_s is not None

    # kill every worker and keep killing respawns: an empty pool is
    # extinction, never convergence
    extinct = InvariantChecker(fabric)
    now = fabric.cluster.env.now
    extinct.expect_convergence(now + 0.5, within_s=2.0)
    for _ in range(8):
        for stub in fabric.alive_workers():
            stub.kill()
        fabric.cluster.run(until=fabric.cluster.env.now + 0.5)
    assert any(v.invariant == "convergence" and "extinct" in v.detail
               for v in extinct.violations)


def test_final_checks_flag_hangs_and_slow_replies():
    fabric = booted_fabric()
    checker = InvariantChecker(fabric)
    engine = PlaybackEngine(
        fabric.cluster.env, checker.checked_submit(fabric.submit),
        rng=RandomStreams(3).stream("pb"), timeout_s=10.0)
    pool = [make_record(i) for i in range(5)]
    fabric.cluster.env.process(engine.constant_rate(5.0, 3.0, pool))
    fabric.cluster.run(until=20.0)
    checker.final_checks(engine, max_latency_s=10.0)
    assert checker.ok

    # artificially tighten the latency bound: must now flag
    strict = InvariantChecker(fabric)
    strict.submitted = len(engine.outcomes)
    strict.final_checks(engine, max_latency_s=1e-9)
    assert any(v.invariant == "bounded-reply"
               for v in strict.violations)


def test_violation_repr_readable():
    violation = InvariantViolation(3.5, "convergence", "view != truth")
    text = repr(violation)
    assert "convergence" in text and "3.50" in text
