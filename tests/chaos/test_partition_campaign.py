"""The partition-failures acceptance campaigns: soft vs consensus.

The same SAN-partition schedule runs against both control planes.  The
soft single manager gets deposed on stale views and keeps dispatching
on unbounded-staleness hints (wrong decisions, by design — the paper's
trade); the Paxos-replicated group must show **zero** wrong-decision
dispatches, bounded failover, and a clean safety audit, paying for it
with lease stalls while partitioned.
"""

import pytest

from repro.chaos import get_campaign, run_campaign, run_campaign_batch
from repro.chaos.batch import run_campaign_shard
from repro.cli import main


def _run(name, backend, seed=1997):
    campaign = get_campaign(name)
    campaign.manager_backend = backend
    return run_campaign(campaign, seed=seed)


@pytest.fixture(scope="module")
def soft_report():
    return _run("partition-failures", "soft")


@pytest.fixture(scope="module")
def consensus_report():
    return _run("partition-failures", "consensus")


def test_soft_backend_shows_the_failure_mode(soft_report):
    report = soft_report
    assert report.ok, report.violations
    part = report.partition
    assert part["backend"] == "soft"
    # stale-view dispatches happened: the soft manager promises no bound
    assert part["wrong_decisions"] > 0
    assert part["lease_stalls"] == 0  # nothing to stall on
    # the partitioned-away manager was deposed, then fenced by
    # incarnation when its zombie beacons came back at the heal
    assert part["deposed_managers"] >= 1
    assert part["stale_beacons_rejected"] >= 1
    assert report.counters["manager_restarts"] >= 1
    assert part["multicast_blocked"] > 0


def test_consensus_backend_zero_wrong_decisions(consensus_report):
    report = consensus_report
    assert report.ok, report.violations  # includes the paxos safety audit
    part = report.partition
    assert part["backend"] == "consensus"
    assert part["wrong_decisions"] == 0  # the acceptance number
    assert part["deposed_managers"] == 0  # no watchdog restarts needed
    # the price of the bound: dispatch stalls while no lease is valid
    assert part["lease_stalls"] > 0
    assert part["dispatch_stall_s"] > 0


def test_consensus_failover_is_bounded_and_audited(consensus_report):
    cons = consensus_report.consensus
    assert cons["replicas"] == 3
    # one election per partition that hit the leader, plus boot
    assert cons["elections"] >= 3
    assert cons["lease_handoffs"] >= 2
    assert cons["log_length"] > 0
    # failover bound: lease + election timeout + stagger, per regime
    for regime in cons["regimes"][1:]:
        assert regime["stalled_s"] <= 4.0
    assert cons["minority_stall_s"] <= 8.0
    # availability held through both failovers
    assert consensus_report.overall_yield >= 0.99


def test_both_backends_render_their_sections(soft_report,
                                             consensus_report):
    soft_text = soft_report.render()
    assert "partition  backend=soft" in soft_text
    assert "consensus" not in soft_text.split("faults")[0].split(
        "partition")[0]  # no consensus section without the group
    cons_text = consensus_report.render()
    assert "partition  backend=consensus" in cons_text
    assert "wrong-decisions 0" in cons_text
    assert "regime b" in cons_text


def test_partition_smoke_batch_byte_identical_across_jobs():
    serial = run_campaign_batch("partition-smoke", master_seed=1997,
                                runs=2, jobs=1,
                                manager_backend="consensus")
    fanned = run_campaign_batch("partition-smoke", master_seed=1997,
                                runs=2, jobs=2,
                                manager_backend="consensus")
    assert serial.render(verbose=True) == fanned.render(verbose=True)
    assert serial.ok


def test_shard_override_reaches_the_fabric():
    report = run_campaign_shard("partition-smoke", 1997,
                                manager_backend="consensus")
    assert report.partition["backend"] == "consensus"
    assert report.consensus["replicas"] == 3
    assert report.partition["wrong_decisions"] == 0


def test_cli_runs_partition_smoke_with_backend_flag(capsys):
    code = main(["chaos", "partition-smoke",
                 "--manager-backend", "consensus", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "backend=consensus" in out
    assert "wrong-decisions 0" in out
