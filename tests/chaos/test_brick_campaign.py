"""The brick-failure acceptance campaign: kills and gray failures
against the replicated profile store lose zero committed writes, keep
reads available, and rejoin in constant time — plus the single-store
baseline whose recovery cost grows with the log."""

import pytest

from repro.chaos import get_campaign, run_campaign, run_campaign_batch
from repro.cli import main

BRICK_FAULT_KINDS = {"brick-kill", "fail-slow", "zombie", "hang"}


@pytest.fixture(scope="module")
def brick_report():
    return run_campaign(get_campaign("brick-failures"), seed=1997)


def test_brick_failures_all_detected_and_healed(brick_report):
    report = brick_report
    assert report.ok, report.violations
    assert {case.kind for case in report.recovery_cases} == \
        BRICK_FAULT_KINDS
    assert len(report.recovery_cases) == 5
    for case in report.recovery_cases:
        assert case.detected, case
        assert case.healed, case
        assert case.heal_action == "brick-restart"
        assert case.replacement.startswith("brick")


def test_brick_failures_loses_no_committed_writes(brick_report):
    profile = brick_report.profile
    assert profile["backend"] == "dstore"
    assert profile["lost_writes"] == []
    writes = profile["writes"]
    assert writes["attempted"] > 100
    assert writes["committed"] == writes["attempted"]
    assert profile["store"]["committed_cells"] > 0
    assert profile["bricks"]["data_loss_promotions"] == 0


def test_brick_failures_read_availability_slo(brick_report):
    profile = brick_report.profile
    assert profile["reads"] > 1000
    assert profile["read_availability"] >= 0.99


def test_brick_failures_rejoin_constant_time(brick_report):
    rejoins = brick_report.profile["bricks"]["rejoins"]
    assert len(rejoins) == 5
    times = {round(record["rejoin_s"], 6) for record in rejoins}
    assert len(times) == 1  # identical regardless of state held
    sizes = [record["cells_at_kill"] for record in rejoins]
    assert max(sizes) > min(sizes)  # while the state sizes differ
    for record in rejoins:
        assert record["sync_s"] is not None  # repair finished too
    summary = brick_report.recovery_summary
    assert summary["rejoins"] == 5
    assert summary["rejoin_mean_s"] == \
        pytest.approx(summary["rejoin_max_s"])


def test_brick_failures_report_renders_profile_section(brick_report):
    text = brick_report.render()
    assert "backend=dstore" in text
    assert "committed-write loss: 0" in text
    assert "rejoin" in text
    assert "cells at kill" in text


def test_brick_smoke_campaign_heals_everything():
    report = run_campaign(get_campaign("brick-smoke"), seed=3)
    assert report.ok, report.violations
    assert len(report.recovery_cases) == 3
    assert all(case.healed for case in report.recovery_cases)
    assert report.profile["lost_writes"] == []


def test_single_backend_outage_grows_with_log():
    """The baseline the bricks exist to beat: the single store's
    recovery replays the WAL, so the second kill (more committed
    transactions) takes strictly longer to heal than the first."""
    report = run_campaign(get_campaign("brick-failures-single"),
                          seed=1997)
    assert report.ok, report.violations
    first, second = report.recovery_cases
    assert first.detector == second.detector == "restart-watchdog"
    assert first.mttd == second.mttd == 0.0
    assert second.mttr > first.mttr
    profile = report.profile
    assert profile["backend"] == "single"
    # writes attempted during the outage window are refused outright —
    # the unavailability bricks mask
    assert profile["writes"]["failed"] > 0


def test_brick_batch_parallel_is_byte_identical():
    serial = run_campaign_batch("brick-smoke", master_seed=3,
                                runs=2, jobs=1)
    parallel = run_campaign_batch("brick-smoke", master_seed=3,
                                  runs=2, jobs=2)
    assert serial.render(verbose=True) == parallel.render(verbose=True)
    assert serial.ok


def test_cli_profile_backend_override(capsys):
    exit_code = main(["chaos", "smoke", "--profile-backend", "dstore"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "backend=dstore" in out
    assert "committed-write loss: 0" in out
