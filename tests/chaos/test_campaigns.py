"""Campaign-level tests: the ISSUE's acceptance scenario and the
"checker has teeth" falsification."""

import pytest

from repro.chaos import (
    CAMPAIGNS,
    Campaign,
    CampaignRunner,
    KillWorker,
    LossyWindow,
    get_campaign,
    run_campaign,
)
from repro.core.worker_stub import WorkerStub


def test_get_campaign_unknown_name():
    with pytest.raises(KeyError):
        get_campaign("no-such-campaign")


def test_campaign_validation_rejects_unhealable_end():
    campaign = Campaign(
        name="bad", description="fault outlives the run",
        duration_s=20.0,
        actions=[LossyWindow(at=5.0, duration_s=30.0, loss=0.5)])
    with pytest.raises(ValueError):
        campaign.validate()


def test_campaign_validation_rejects_negative_times():
    campaign = Campaign(
        name="bad", description="fault before t=0", duration_s=20.0,
        actions=[KillWorker(at=-1.0)])
    with pytest.raises(ValueError):
        campaign.validate()


def test_smoke_campaign_holds_invariants():
    report = run_campaign(get_campaign("smoke"), seed=7)
    assert report.ok, report.violations
    assert report.submitted > 100
    assert report.overall_yield >= 0.95
    assert report.recovered


def test_smoke_campaign_deterministic():
    one = run_campaign(get_campaign("smoke"), seed=11)
    two = run_campaign(get_campaign("smoke"), seed=11)
    assert one.submitted == two.submitted
    assert one.series == two.series
    assert one.counters == two.counters
    assert [repr(r) for r in one.fault_timeline] == \
        [repr(r) for r in two.fault_timeline]


def test_mixed_campaign_acceptance():
    """The ISSUE's acceptance bar: manager crash + 20% beacon loss +
    straggler + rolling kills completes with ZERO invariant violations,
    and yield is back over 95% within 5 beacon intervals of the final
    heal."""
    report = run_campaign(get_campaign("mixed"), seed=1997)
    assert report.ok, report.violations
    assert report.counters["manager_restarts"] >= 1
    assert report.counters["datagrams_lost"] > 0
    assert any(record.kind == "kill" and "manager" in record.target
               for record in report.fault_timeline)
    assert report.recovered
    assert report.recovery_beacon_periods <= 5.0
    assert report.convergence_s is not None


def test_checker_has_teeth(monkeypatch):
    """The same mixed campaign with worker re-registration disabled must
    FAIL — otherwise the zero-violations result above proves nothing."""
    def no_register(self, beacon):
        return iter(())  # discover the manager, tell it nothing

    monkeypatch.setattr(WorkerStub, "_register", no_register)
    report = run_campaign(get_campaign("mixed"), seed=1997)
    assert not report.ok
    assert any(violation.invariant in ("convergence", "reregistration")
               for violation in report.violations)


def test_every_preset_campaign_is_well_formed():
    for name, factory in CAMPAIGNS.items():
        campaign = factory().validate()
        assert campaign.name == name
        assert campaign.description
        assert campaign.final_heal_s < campaign.duration_s


def test_report_render_mentions_the_essentials():
    report = run_campaign(get_campaign("smoke"), seed=7)
    text = report.render()
    assert "yield" in text
    assert "harvest" in text
    assert "invariants all held" in text
    assert "kill" in text  # the fault timeline


def test_runner_reuses_one_fabric_per_run():
    runner = CampaignRunner(get_campaign("smoke"), seed=7)
    report = runner.run()
    assert runner.fabric.manager is not None
    assert report.campaign == "smoke"
    # hardened request path was active
    config = runner.fabric.config
    assert config.shed_expired_requests
    assert config.admission_max_backlog_s is not None
