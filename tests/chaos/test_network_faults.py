"""Tests for the lossy-SAN fault model (loss, duplication, jitter)."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.kernel import Environment
from repro.sim.network import (
    ANY_SCOPE,
    CHANNEL_RTO_S,
    CHANNEL_SCOPE,
    FaultWindow,
    Network,
    NetworkFaults,
)
from repro.sim.rng import RandomStreams
from repro.sim.transport import Channel


def make_faults(seed=3):
    env = Environment()
    return env, NetworkFaults(env, RandomStreams(seed).stream("nf"))


# -- windows -----------------------------------------------------------------

def test_fault_window_validation():
    with pytest.raises(ValueError):
        FaultWindow("g", 0.0, None, loss=1.5)
    with pytest.raises(ValueError):
        FaultWindow("g", 0.0, None, duplicate=-0.1)
    with pytest.raises(ValueError):
        FaultWindow("g", 0.0, None, jitter_s=-1.0)
    with pytest.raises(ValueError):
        FaultWindow("g", 10.0, 5.0)


def test_window_active_interval_is_half_open():
    window = FaultWindow("g", 5.0, 10.0, loss=0.5)
    assert not window.active_at(4.9)
    assert window.active_at(5.0)
    assert window.active_at(9.99)
    assert not window.active_at(10.0)


def test_impose_rejects_past_start():
    env, faults = make_faults()
    env.run(until=10.0)
    with pytest.raises(ValueError):
        faults.impose(loss=0.5, start=5.0)


def test_clear_ends_windows_now():
    env, faults = make_faults()
    window = faults.impose(scope="g", loss=1.0)
    env.run(until=3.0)
    assert faults.datagram_fate("g") == (0, 0.0)
    faults.clear(window)
    assert faults.datagram_fate("g") == (1, 0.0)


def test_final_heal_time():
    env, faults = make_faults()
    faults.impose(scope="a", loss=0.1, duration_s=10.0)
    faults.impose(scope="b", loss=0.1, start=5.0, duration_s=20.0)
    assert faults.final_heal_time() == 25.0
    faults.impose(scope="c", loss=0.1)  # open-ended
    assert faults.final_heal_time() == float("inf")


# -- datagram fate -----------------------------------------------------------

def test_no_windows_draws_no_randomness():
    """Determinism discipline: an uninstalled or idle fault model must
    not consume RNG, so fault-free runs replay identically."""
    _, consulted = make_faults(seed=3)
    _, untouched = make_faults(seed=3)
    assert consulted.datagram_fate("anything") == (1, 0.0)
    assert consulted.channel_penalty() == 0.0
    # an expired window is as cheap as no window
    consulted.impose(scope="g", loss=0.9, duration_s=0.0)
    consulted.env.run(until=1.0)
    assert consulted.datagram_fate("g") == (1, 0.0)
    assert [consulted.rng.random() for _ in range(5)] == \
        [untouched.rng.random() for _ in range(5)]


def test_scoping_matches_group_or_any():
    env, faults = make_faults()
    faults.impose(scope="beacons", loss=1.0)
    assert faults.datagram_fate("beacons")[0] == 0
    assert faults.datagram_fate("other-group")[0] == 1
    faults.impose(scope=ANY_SCOPE, loss=1.0)
    assert faults.datagram_fate("other-group")[0] == 0


def test_loss_wins_over_duplication():
    env, faults = make_faults()
    faults.impose(scope="g", loss=1.0, duplicate=1.0, jitter_s=1.0)
    copies, extra = faults.datagram_fate("g")
    assert copies == 0
    assert extra == 0.0
    assert faults.datagrams_lost == 1
    assert faults.datagrams_duplicated == 0


def test_duplication_and_jitter():
    env, faults = make_faults()
    faults.impose(scope="g", duplicate=1.0, jitter_s=0.5)
    copies, extra = faults.datagram_fate("g")
    assert copies == 2
    assert 0.0 <= extra <= 0.5
    assert faults.datagrams_duplicated == 1
    assert faults.messages_jittered == 1


def test_channel_penalty_is_retransmit_delay_not_loss():
    env, faults = make_faults()
    faults.impose(scope=CHANNEL_SCOPE, loss=0.5)
    penalties = [faults.channel_penalty() for _ in range(200)]
    assert all(penalty >= 0.0 for penalty in penalties)
    assert any(penalty >= CHANNEL_RTO_S for penalty in penalties)
    assert faults.channel_retransmits > 0


def test_channel_penalty_total_loss_is_finite():
    """loss=1.0 must stall the connection, not hang the simulation."""
    env, faults = make_faults()
    faults.impose(scope=CHANNEL_SCOPE, loss=1.0)
    penalty = faults.channel_penalty()
    # 10 retransmits with doubling RTO: 0.2 * (2^10 - 1)
    assert penalty == pytest.approx(CHANNEL_RTO_S * 1023)


def test_fate_is_deterministic_per_seed():
    _, one = make_faults(seed=11)
    _, two = make_faults(seed=11)
    for faults in (one, two):
        faults.impose(scope="g", loss=0.3, duplicate=0.2, jitter_s=0.1)
    fates_one = [one.datagram_fate("g") for _ in range(50)]
    fates_two = [two.datagram_fate("g") for _ in range(50)]
    assert fates_one == fates_two


# -- integration: multicast and channels -------------------------------------

def test_multicast_full_loss_drops_everything():
    cluster = Cluster(seed=5)
    faults = cluster.network.install_faults(
        cluster.streams.stream("nf"))
    group = cluster.multicast.group("g")
    subscription = group.subscribe("listener")
    faults.impose(scope="g", loss=1.0)
    for _ in range(10):
        group.publish("beacon", sender="mgr")
    cluster.run(until=1.0)
    assert subscription.queue.length == 0
    assert group.fault_dropped == 10
    assert faults.datagrams_lost == 10


def test_multicast_duplication_delivers_twice():
    cluster = Cluster(seed=5)
    faults = cluster.network.install_faults(
        cluster.streams.stream("nf"))
    group = cluster.multicast.group("g")
    subscription = group.subscribe("listener")
    faults.impose(scope="g", duplicate=1.0)
    group.publish("beacon", sender="mgr")
    cluster.run(until=1.0)
    assert subscription.queue.length == 2
    assert group.fault_duplicated == 1


def test_multicast_unscoped_group_untouched():
    cluster = Cluster(seed=5)
    faults = cluster.network.install_faults(
        cluster.streams.stream("nf"))
    faults.impose(scope="lossy-group", loss=1.0)
    group = cluster.multicast.group("clean-group")
    subscription = group.subscribe("listener")
    group.publish("msg", sender="x")
    cluster.run(until=1.0)
    assert subscription.queue.length == 1


def test_channel_stays_fifo_under_jitter():
    """TCP delays but never reorders: messages sent in order arrive in
    order even when per-message jitter would have swapped them."""
    env = Environment()
    network = Network(env)
    faults = network.install_faults(RandomStreams(9).stream("nf"))
    faults.impose(scope=CHANNEL_SCOPE, jitter_s=0.2)
    channel = Channel(env, network, "a", "b")
    received = []

    def receiver():
        for _ in range(30):
            message = yield channel.b.recv()
            received.append(message)

    env.process(receiver())
    for index in range(30):
        channel.a.send(index)
    env.run(until=10.0)
    assert received == list(range(30))
    assert faults.messages_jittered > 0


def test_install_faults_idempotent():
    env = Environment()
    network = Network(env)
    first = network.install_faults(RandomStreams(1).stream("nf"))
    second = network.install_faults(RandomStreams(2).stream("other"))
    assert first is second
