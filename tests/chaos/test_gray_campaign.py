"""The gray-failure acceptance campaign: every gray mode injected into
a supervised fabric is detected and healed without human intervention,
with MTTD/MTTR accounted and zero invariant violations."""

import pytest

from repro.chaos import get_campaign, run_campaign
from repro.cli import main

ALL_GRAY_KINDS = {"hang", "zombie", "fail-slow", "leak", "corrupt-output"}


@pytest.fixture(scope="module")
def gray_report():
    return run_campaign(get_campaign("gray-failures"), seed=1997)


def test_gray_failures_all_detected_and_healed(gray_report):
    report = gray_report
    assert report.ok, report.violations
    assert {case.kind for case in report.recovery_cases} == ALL_GRAY_KINDS
    assert report.all_gray_healed, report.recovery_cases
    for case in report.recovery_cases:
        assert case.detected, case
        assert case.mttd is not None and case.mttd >= 0
        assert case.mttr is not None and case.mttr > 0
        assert case.replacement, case


def test_gray_failures_summary_and_availability(gray_report):
    summary = gray_report.recovery_summary
    assert summary["injected"] == 5
    assert summary["healed"] == 5
    assert summary["mttd_mean"] > 0
    assert summary["mttr_mean"] > 0
    assert 0.85 <= summary["availability"] < 1.0
    assert gray_report.counters["recovery_restarts"] >= 5
    assert gray_report.counters["recovery_probes"] > 0


def test_gray_failures_yield_recovers(gray_report):
    assert gray_report.recovered
    assert gray_report.overall_yield >= 0.95


def test_gray_failures_report_renders_healing_section(gray_report):
    text = gray_report.render()
    assert "healing" in text
    assert "MTTD" in text and "MTTR" in text
    assert "availability" in text
    for kind in ALL_GRAY_KINDS:
        assert kind in text


def test_gray_smoke_campaign_heals_everything():
    report = run_campaign(get_campaign("gray-smoke"), seed=3)
    assert report.ok, report.violations
    assert len(report.recovery_cases) == 3
    assert report.all_gray_healed, report.recovery_cases


def test_gray_smoke_deterministic():
    one = run_campaign(get_campaign("gray-smoke"), seed=11)
    two = run_campaign(get_campaign("gray-smoke"), seed=11)
    assert one.counters == two.counters
    assert one.series == two.series
    assert [repr(c) for c in one.recovery_cases] == \
        [repr(c) for c in two.recovery_cases]


# -- the CLI flag form ------------------------------------------------------------


def test_cli_campaign_flag_runs_gray_smoke(capsys):
    assert main(["chaos", "--campaign", "gray-smoke", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "healing" in out
    assert "MTTD" in out


def test_cli_conflicting_campaign_names_error(capsys):
    assert main(["chaos", "smoke", "--campaign", "mixed"]) == 2
    assert "conflicting campaign names" in capsys.readouterr().err


def test_cli_matching_positional_and_flag_agree(capsys):
    # same name both ways is not a conflict: the listing path proves it
    assert main(["chaos", "list", "--campaign", "list"]) == 0
    assert "gray-failures" in capsys.readouterr().out
