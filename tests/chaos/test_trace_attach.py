"""Chaos × tracing integration: an invariant violation must carry the
offending request's span tree when tracing sampled it."""

import dataclasses

from repro.chaos.campaign import get_campaign, run_campaign
from repro.obs import capture_traces


def forced_slo_campaign():
    """The smoke campaign with an SLO bound far below its observed
    latencies, so the bounded-reply check fails deterministically."""
    return dataclasses.replace(get_campaign("smoke"),
                               name="smoke-slo",
                               slo_latency_s=0.001)


def test_violation_attaches_offending_span_tree():
    with capture_traces() as tracers:
        report = run_campaign(forced_slo_campaign(), seed=3)
    assert not report.ok
    slo = [violation for violation in report.violations
           if violation.invariant == "bounded-reply"]
    assert slo, report.violations
    violation = slo[0]
    assert violation.trace_id is not None
    assert violation.span_tree is not None
    # the tree really is the request's causal timeline
    assert "request [other] @client" in violation.span_tree
    assert "frontend [service]" in violation.span_tree
    # and the rendered report inlines it under the violation
    rendered = report.render()
    assert f"offending request {violation.trace_id}:" in rendered
    assert "request [other] @client" in rendered


def test_violation_without_tracing_omits_span_tree():
    report = run_campaign(forced_slo_campaign(), seed=3)
    assert not report.ok
    violation = report.violations[0]
    assert violation.trace_id is None
    assert violation.span_tree is None
    assert "offending request" not in report.render()


def test_report_latency_summary_populated():
    report = run_campaign(get_campaign("smoke"), seed=7)
    assert report.latency["count"] > 0
    assert report.latency["p50"] <= report.latency["p95"] \
        <= report.latency["max"]
    # but the rendered report's byte format is unchanged: latency is
    # data, not a new output line
    assert "invariants all held" in report.render()


def test_slo_bound_defaults_to_client_timeout():
    campaign = get_campaign("smoke")
    assert campaign.slo_latency_s is None
    report = run_campaign(campaign, seed=7)
    assert report.ok
