"""Placement: stable hashing, replica groups, slot inversion."""

import hashlib

import pytest

from repro.dstore import Partitioner


def test_partition_of_is_md5_not_builtin_hash():
    # the builtin hash() is salted per process; placement must be the
    # md5-derived value so --jobs N matches serial byte-for-byte
    partitioner = Partitioner(n_bricks=3, replicas=2, n_partitions=16)
    digest = hashlib.md5(b"client7").digest()
    expected = int.from_bytes(digest[:8], "big") % 16
    assert partitioner.partition_of("client7") == expected


def test_partition_of_in_range_and_deterministic():
    partitioner = Partitioner(n_bricks=5, replicas=3, n_partitions=32)
    for index in range(100):
        key = f"user{index}"
        partition = partitioner.partition_of(key)
        assert 0 <= partition < 32
        assert partitioner.partition_of(key) == partition


def test_slots_of_consecutive_distinct_replicas():
    partitioner = Partitioner(n_bricks=4, replicas=3, n_partitions=16)
    for partition in range(16):
        slots = partitioner.slots_of(partition)
        assert len(slots) == 3
        assert len(set(slots)) == 3
        first = partition % 4
        assert slots == [first, (first + 1) % 4, (first + 2) % 4]


def test_replica_slots_composes_hash_and_placement():
    partitioner = Partitioner(n_bricks=3, replicas=2)
    for key in ("client0", "client1", "alice"):
        partition = partitioner.partition_of(key)
        assert partitioner.replica_slots(key) == \
            partitioner.slots_of(partition)


def test_partitions_of_slot_inverts_slots_of():
    partitioner = Partitioner(n_bricks=3, replicas=2, n_partitions=16)
    for slot in range(3):
        for partition in partitioner.partitions_of_slot(slot):
            assert slot in partitioner.slots_of(partition)
    # every partition is hosted on exactly `replicas` slots
    copies = sum(len(partitioner.partitions_of_slot(slot))
                 for slot in range(3))
    assert copies == 16 * 2


def test_invalid_configurations_rejected():
    with pytest.raises(ValueError):
        Partitioner(n_bricks=0)
    with pytest.raises(ValueError):
        Partitioner(n_bricks=2, replicas=3)
    with pytest.raises(ValueError):
        Partitioner(n_bricks=2, replicas=0)
    with pytest.raises(ValueError):
        Partitioner(n_bricks=2, n_partitions=0)
    partitioner = Partitioner(n_bricks=2)
    with pytest.raises(ValueError):
        partitioner.slots_of(99)
