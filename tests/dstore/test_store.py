"""Quorum coordinator semantics: replication, degraded commits,
tombstones, zombie freshness, and the committed-cells oracle."""

import pytest

from repro.dstore import (
    BrickCluster,
    QuorumError,
    ReadUnavailable,
    ReplicatedProfileStore,
    TOMBSTONE,
)
from repro.sim.cluster import Cluster
from repro.tacc.customization import TransactionError


def make_store(n_bricks=3, replicas=2, seed=11, **store_kwargs):
    cluster = Cluster(seed=seed)
    bricks = BrickCluster(cluster, n_bricks=n_bricks,
                          replicas=replicas).boot()
    store = ReplicatedProfileStore(bricks, **store_kwargs)
    return cluster, bricks, store


def user_on_slots(partitioner, slots):
    """A user id whose replica group is exactly ``slots``."""
    for index in range(10_000):
        user = f"user{index}"
        if partitioner.replica_slots(user) == list(slots):
            return user
    raise AssertionError(f"no user found for slots {slots}")


def test_set_get_roundtrip_and_copy():
    _, _, store = make_store()
    store.set("client0", "quality", 60)
    assert store.get("client0") == {"quality": 60}
    profile = store.get("client0")
    profile["quality"] = 1  # mutating the copy must not leak back
    assert store.get_value("client0", "quality") == 60
    assert store.get_value("client0", "missing", "fallback") == "fallback"
    assert store.get("nobody") == {}


def test_write_lands_on_every_replica():
    _, bricks, store = make_store()
    store.set("client0", "scale", 0.5)
    partition = store.partitioner.partition_of("client0")
    replicas = [bricks.brick_at(slot)
                for slot in store.partitioner.slots_of(partition)]
    assert len(replicas) == 2
    for brick in replicas:
        cells = brick.read_user(partition, "client0")
        assert cells is not None and cells["scale"][1] == 0.5


def test_transaction_batches_and_single_writer():
    _, _, store = make_store()
    with store.begin() as tx:
        tx.set("client0", "quality", 10)
        tx.set("client1", "quality", 20)
    assert store.get_value("client0", "quality") == 10
    assert store.get_value("client1", "quality") == 20
    assert store.commits == 1
    open_tx = store.begin()
    with pytest.raises(TransactionError):
        store.begin()
    open_tx.abort()


def test_abort_commits_nothing():
    _, _, store = make_store()
    try:
        with store.begin() as tx:
            tx.set("client0", "quality", 99)
            raise RuntimeError("client bailed")
    except RuntimeError:
        pass
    assert store.get("client0") == {}
    assert store.committed == {}
    assert store.aborts == 1


def test_non_json_value_rejected():
    _, _, store = make_store()
    with pytest.raises(TransactionError):
        store.set("client0", "bad", object())
    assert store.committed == {}


def test_validator_hook_runs():
    def validator(user_id, key, value):
        if key == "forbidden":
            raise TransactionError("nope")
    _, _, store = make_store(validator=validator)
    store.set("client0", "fine", 1)
    with pytest.raises(TransactionError):
        store.set("client0", "forbidden", 1)


def test_delete_is_versioned_tombstone():
    _, _, store = make_store()
    store.set("client0", "quality", 60)
    store.delete("client0", "quality")
    assert store.get("client0") == {}
    assert store.get_value("client0", "quality", "gone") == "gone"
    assert "client0" not in store
    assert store.users() == []
    # the tombstone itself is committed state (it must win merges)
    cell = store.committed[("client0", "quality")]
    assert cell[1] == TOMBSTONE


def test_one_dead_replica_degrades_but_commits():
    _, bricks, store = make_store()
    user = user_on_slots(store.partitioner, [0, 1])
    bricks.brick_at(1).kill()
    store.set(user, "quality", 42)
    assert store.degraded_writes == 1
    assert store.get_value(user, "quality") == 42
    assert store.verify_committed() == []


def test_all_replicas_dead_fails_write_and_read():
    _, bricks, store = make_store()
    user = user_on_slots(store.partitioner, [0, 1])
    store.set(user, "quality", 1)
    bricks.brick_at(0).kill()
    bricks.brick_at(1).kill()
    with pytest.raises(QuorumError):
        store.set(user, "quality", 2)
    assert store.failed_writes == 1
    with pytest.raises(ReadUnavailable):
        store.get(user)
    assert store.unavailable_reads == 1
    # the context-manager abort path after a QuorumError must not
    # raise "abort of a non-current transaction"
    assert store._open_tx is None


def test_zombie_replica_cannot_serve_stale_reads():
    cluster, bricks, store = make_store()
    user = user_on_slots(store.partitioner, [0, 1])
    store.set(user, "quality", 10)
    zombie = bricks.brick_at(0)
    zombie.gray.zombify(cluster.env.now)
    # the zombie acks the write and drops it; the healthy peer holds
    # the only real copy — read-all max-version merge finds it
    store.set(user, "quality", 20)
    assert store.get_value(user, "quality") == 20
    assert zombie.gray.dropped > 0
    assert store.verify_committed() == []


def test_read_repair_does_not_launder_zombie_staleness():
    cluster, bricks, store = make_store()
    user = user_on_slots(store.partitioner, [0, 1])
    partition = store.partitioner.partition_of(user)
    store.set(user, "quality", 10)
    zombie = bricks.brick_at(0)
    zombie.gray.zombify(cluster.env.now)
    store.set(user, "quality", 20)
    store.get(user)  # triggers read-repair toward the stale zombie
    cells = zombie.cells[partition].get(user, {})
    assert cells.get("quality", (0, None))[1] != 20


def test_stale_write_never_resurrects():
    _, bricks, store = make_store()
    user = user_on_slots(store.partitioner, [0, 1])
    partition = store.partitioner.partition_of(user)
    store.set(user, "quality", 30)
    version = store.committed[(user, "quality")][0]
    # a delayed lower-version write arrives late at one replica
    brick = bricks.brick_at(0)
    brick.put_cells(partition, user, [("quality", version - 1, 999)])
    assert store.get_value(user, "quality") == 30


def test_unresponsive_replica_charged_as_timeout():
    from repro.dstore.store import BRICK_TIMEOUT_S
    cluster, bricks, store = make_store()
    user = user_on_slots(store.partitioner, [0, 1])
    store.set(user, "quality", 5)
    bricks.brick_at(1).gray.hang(cluster.env.now)
    store.get(user)
    assert store.last_op_cost_s >= BRICK_TIMEOUT_S


def test_write_quorum_bounds():
    with pytest.raises(ValueError):
        make_store(write_quorum=0)
    with pytest.raises(ValueError):
        make_store(write_quorum=3)  # replicas=2
    _, _, store = make_store(write_quorum=1)
    assert store.write_quorum == 1


def test_stats_shape():
    _, _, store = make_store()
    store.set("client0", "quality", 1)
    store.get("client0")
    stats = store.stats()
    assert stats["committed_cells"] == 1
    assert stats["commits"] == 1
    assert stats["quorum_reads"] == 1
    assert stats["failed_writes"] == 0
