"""The relaxed-reads ladder level on the replicated profile store:
R=1 reads that stop at the first authoritative replica, while writes
keep their quorum unconditionally."""

from types import SimpleNamespace

import pytest

from repro.dstore import (
    BRICK_SPAWN_S,
    BrickCluster,
    ReadUnavailable,
    ReplicatedProfileStore,
)
from repro.sim.cluster import Cluster


def make_store(n_bricks=3, replicas=2, seed=11):
    cluster = Cluster(seed=seed)
    bricks = BrickCluster(cluster, n_bricks=n_bricks,
                          replicas=replicas).boot()
    store = ReplicatedProfileStore(bricks)
    return cluster, bricks, store


def relax(store, active=True):
    store.degradation = SimpleNamespace(relaxed_reads_active=active)


def respawn(cluster, bricks, slot):
    done = {}

    def runner():
        done["brick"] = yield from bricks.respawn(slot)
    cluster.env.process(runner())
    cluster.run(until=cluster.env.now + BRICK_SPAWN_S + 0.01)
    return done["brick"]


def test_relaxed_read_stops_at_the_first_authoritative_replica():
    _, _, store = make_store()
    store.set("client0", "quality", 60)
    relax(store)
    assert store.get("client0") == {"quality": 60}
    assert store.relaxed_reads == 1
    assert store.last_op_hops == 1  # one replica consulted, not two


def test_quorum_read_consults_every_replica_when_not_relaxed():
    _, _, store = make_store()
    store.set("client0", "quality", 60)
    relax(store, active=False)
    assert store.get("client0") == {"quality": 60}
    assert store.relaxed_reads == 0
    assert store.last_op_hops == 2


def test_relaxed_reads_skip_read_repair():
    """An amnesiac rejoined brick normally gets healed by the read
    path; at R=1 the read never even looks at it."""
    cluster, bricks, store = make_store()
    for index in range(8):
        store.set(f"user{index}", "quality", index)
    bricks.brick_at(0).kill()
    replacement = respawn(cluster, bricks, 0)
    user = next(f"user{index}" for index in range(8)
                if 0 in store.partitioner.replica_slots(f"user{index}"))
    partition = store.partitioner.partition_of(user)
    relax(store)
    repairs_before = store.read_repairs
    assert store.get_value(user, "quality") is not None
    assert store.read_repairs == repairs_before
    assert replacement.read_user(partition, user) is None  # still amnesiac
    # back at full quorum, the same read heals it
    relax(store, active=False)
    store.get(user)
    assert replacement.read_user(partition, user) is not None


def test_writes_keep_their_quorum_under_relaxed_reads():
    """Degraded harvest, never degraded durability: the ladder level
    must not touch the write path."""
    _, bricks, store = make_store()
    relax(store)
    store.set("client0", "scale", 0.5)
    assert store.degraded_writes == 0
    partition = store.partitioner.partition_of("client0")
    replicas = [bricks.brick_at(slot)
                for slot in store.partitioner.slots_of(partition)]
    assert len(replicas) == 2
    for brick in replicas:
        cells = brick.read_user(partition, "client0")
        assert cells is not None and cells["scale"][1] == 0.5


def test_relaxed_read_still_raises_when_no_replica_answers():
    """R=1 relaxes freshness, not existence: zero authoritative
    answers is still an unavailable read."""
    _, bricks, store = make_store()
    store.set("client0", "quality", 60)
    partition = store.partitioner.partition_of("client0")
    for slot in store.partitioner.slots_of(partition):
        bricks.brick_at(slot).kill()
    relax(store)
    with pytest.raises(ReadUnavailable):
        store.get("client0")
    assert store.unavailable_reads == 1
