"""Cheap recovery: constant-time rejoin, amnesia handled by the
authority protocol, read-repair, anti-entropy, and total-loss
promotion (where the write-loss oracle must have teeth)."""

import pytest

from repro.dstore import (
    BRICK_SPAWN_S,
    BrickCluster,
    ReplicatedProfileStore,
)
from repro.sim.cluster import Cluster


def make_store(n_bricks=3, replicas=2, seed=11):
    cluster = Cluster(seed=seed)
    bricks = BrickCluster(cluster, n_bricks=n_bricks,
                          replicas=replicas).boot()
    store = ReplicatedProfileStore(bricks)
    return cluster, bricks, store


def respawn(cluster, bricks, slot):
    done = {}

    def runner():
        done["brick"] = yield from bricks.respawn(slot)
    cluster.env.process(runner())
    cluster.run(until=cluster.env.now + BRICK_SPAWN_S + 0.01)
    return done["brick"]


def load_users(store, count, prefix="user"):
    for index in range(count):
        store.set(f"{prefix}{index}", "quality", index)
        store.set(f"{prefix}{index}", "scale", 0.5)


def test_restarted_brick_is_amnesiac_but_serving():
    cluster, bricks, store = make_store()
    load_users(store, 20)
    victim = bricks.brick_at(0)
    victim.kill()
    replacement = respawn(cluster, bricks, 0)
    assert replacement is not victim
    assert replacement.alive
    assert replacement.cell_count() == 0
    assert not replacement.fully_authoritative
    # recovering partitions answer reads "unknown", never false-absent
    partition = replacement.recovering_partitions[0]
    assert replacement.read_user(partition, "anyone") is None
    # but writes are accepted immediately (new versions are new data)
    assert replacement.put_cells(
        partition, "x", [("k", bricks.next_version(), 1)])


def test_reads_masked_by_peer_during_recovery():
    cluster, bricks, store = make_store()
    load_users(store, 20)
    bricks.brick_at(0).kill()
    respawn(cluster, bricks, 0)
    for index in range(20):
        assert store.get_value(f"user{index}", "quality") == index
    assert store.verify_committed() == []


def test_read_repair_heals_hot_users_before_sweep():
    cluster, bricks, store = make_store()
    load_users(store, 8)
    bricks.brick_at(0).kill()
    replacement = respawn(cluster, bricks, 0)
    # pick a user hosted on the replacement, read it through the store
    user = next(f"user{index}" for index in range(8)
                if 0 in store.partitioner.replica_slots(f"user{index}"))
    partition = store.partitioner.partition_of(user)
    assert replacement.read_user(partition, user) is None
    store.get(user)  # read-repair pushes the merged cells back
    assert replacement.read_user(partition, user) is not None
    assert store.read_repairs > 0


def test_anti_entropy_completes_and_records_sync():
    cluster, bricks, store = make_store()
    load_users(store, 30)
    bricks.brick_at(0).kill()
    replacement = respawn(cluster, bricks, 0)
    cluster.run(until=cluster.env.now + 10.0)
    assert replacement.fully_authoritative
    assert bricks.partitions_synced > 0
    record = bricks.rejoins[-1]
    assert record["brick"] == replacement.name
    assert record["sync_s"] is not None and record["sync_s"] > 0
    assert store.verify_committed() == []


def test_rejoin_time_independent_of_state_size():
    """The cheap-recovery claim itself: a brick that held 10x the data
    rejoins in exactly the same time — there is no log to replay."""
    cluster, bricks, store = make_store()
    load_users(store, 4, prefix="light")
    bricks.brick_at(0).kill()
    respawn(cluster, bricks, 0)
    cluster.run(until=cluster.env.now + 10.0)

    load_users(store, 200, prefix="heavy")
    bricks.brick_at(1).kill()
    respawn(cluster, bricks, 1)
    cluster.run(until=cluster.env.now + 10.0)

    light, heavy = bricks.rejoins[0], bricks.rejoins[1]
    assert heavy["cells_at_kill"] > 4 * light["cells_at_kill"]
    assert heavy["rejoin_s"] == pytest.approx(BRICK_SPAWN_S)
    assert light["rejoin_s"] == pytest.approx(BRICK_SPAWN_S)
    # recovery *work* still scales with data — it just happens in the
    # background, off the rejoin path
    assert heavy["sync_s"] > 0


def test_total_amnesia_promotes_and_oracle_reports_loss():
    """Kill every replica of the keyspace at once: the lowest live
    slot promotes empty partitions so reads come back, and the
    committed-write oracle reports exactly what that cost."""
    cluster, bricks, store = make_store(n_bricks=2, replicas=2)
    load_users(store, 10)
    committed = len(store.committed)
    assert committed == 20
    bricks.brick_at(0).kill()
    bricks.brick_at(1).kill()
    for slot in (0, 1):
        cluster.env.process(bricks.respawn(slot))
    cluster.run(until=cluster.env.now + 15.0)
    assert bricks.data_loss_promotions > 0
    for slot in (0, 1):
        assert bricks.brick_at(slot).fully_authoritative
    lost = store.verify_committed()
    assert len(lost) == committed
    assert all(report["reason"] == "missing" for report in lost)


def test_rejoin_record_reaches_attached_ledger():
    from repro.recovery.ledger import RecoveryLedger
    cluster, bricks, store = make_store()
    ledger = RecoveryLedger(cluster.env)
    bricks.ledger = ledger
    load_users(store, 5)
    bricks.brick_at(0).kill()
    respawn(cluster, bricks, 0)
    cluster.run(until=cluster.env.now + 10.0)
    assert len(ledger.rejoins) == 1
    summary = ledger.summary(duration_s=20.0, population=3)
    assert summary["rejoins"] == 1
    assert summary["rejoin_mean_s"] == pytest.approx(BRICK_SPAWN_S)
    # the ledger shares the live record dict: sync_s arrives in place
    assert ledger.rejoins[0]["sync_s"] is not None
    assert any("rejoin" in line for line in ledger.render())
