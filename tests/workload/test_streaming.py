"""Streaming workload playback: equivalence and bounded memory.

The million-request replay path must produce byte-identical results to
the in-memory path — same RNG draws, same record order, same outcomes —
while never materializing the trace or the per-request outcome list.
"""

import tracemalloc
from itertools import islice

from repro.sim.kernel import Environment
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord, iter_trace, load_trace, \
    save_trace
from repro.workload.tracegen import (
    TraceGenerator,
    fixed_jpeg_trace,
    iter_fixed_jpeg_trace,
)


# -- generator equivalence -------------------------------------------------


def test_iter_generate_matches_generate():
    materialized = TraceGenerator(seed=42, n_users=200).generate(30.0)
    streamed = list(TraceGenerator(seed=42, n_users=200).iter_generate(30.0))
    assert streamed == materialized
    timestamps = [record.timestamp for record in streamed]
    assert timestamps == sorted(timestamps)


def test_iter_fixed_jpeg_trace_matches_fixed_jpeg_trace():
    records = fixed_jpeg_trace(rate_rps=50.0, duration_s=20.0, seed=7)
    assert records  # sanity: the comparison below is not vacuous
    streamed = list(islice(
        iter_fixed_jpeg_trace(rate_rps=50.0, n_requests=len(records),
                              seed=7),
        len(records)))
    assert streamed == records


def test_iter_fixed_jpeg_trace_is_lazy_and_count_bounded():
    iterator = iter_fixed_jpeg_trace(rate_rps=100.0, n_requests=5)
    records = list(iterator)
    assert len(records) == 5
    assert all(isinstance(record, TraceRecord) for record in records)
    timestamps = [record.timestamp for record in records]
    assert timestamps == sorted(timestamps)


def test_iter_trace_streams_file(tmp_path):
    path = str(tmp_path / "trace.tsv")
    records = fixed_jpeg_trace(rate_rps=20.0, duration_s=5.0, seed=3)
    save_trace(records, path)
    # timestamps roundtrip at the file format's 6-decimal precision, so
    # compare the two readers to each other and the shape to the source
    streamed = list(iter_trace(path))
    assert streamed == load_trace(path)
    assert [record.url for record in streamed] == \
        [record.url for record in records]


# -- playback equivalence --------------------------------------------------


def _echo_adapter(env, service_s=0.01):
    def submit(record):
        return env.timeout(service_s, value=f"ok:{record.url}")
    return submit


def _replay(records_factory, record_outcomes=True):
    env = Environment()
    engine = PlaybackEngine(env, _echo_adapter(env),
                            record_outcomes=record_outcomes)
    env.process(engine.play(records_factory()))
    env.run()
    return env, engine


def test_play_accepts_generator_and_matches_list_playback():
    records = fixed_jpeg_trace(rate_rps=40.0, duration_s=10.0, seed=11)
    env_list, from_list = _replay(lambda: list(records))
    env_gen, from_gen = _replay(lambda: iter(records))
    assert env_list.now == env_gen.now
    assert [
        (outcome.record, outcome.submitted_at, outcome.completed_at)
        for outcome in from_list.outcomes
    ] == [
        (outcome.record, outcome.submitted_at, outcome.completed_at)
        for outcome in from_gen.outcomes
    ]


def test_streaming_stats_match_recorded_outcomes():
    records = fixed_jpeg_trace(rate_rps=40.0, duration_s=10.0, seed=11)
    _, recorded = _replay(lambda: iter(records), record_outcomes=True)
    _, streaming = _replay(lambda: iter(records), record_outcomes=False)

    assert streaming.outcomes == []  # bounded memory: nothing recorded
    stats = streaming.stats
    assert stats.submitted == len(records)
    assert stats.completed == len(recorded.completed())
    assert stats.failed == len(recorded.failed())
    latencies = recorded.latencies()
    assert stats.latency_min == min(latencies)
    assert stats.latency_max == max(latencies)
    assert abs(stats.mean_latency
               - sum(latencies) / len(latencies)) < 1e-12
    # both modes maintain the aggregate identically
    assert recorded.stats == streaming.stats


def test_streaming_replay_memory_stays_bounded():
    """A streaming replay must hold O(in-flight) memory, not O(trace):
    20k requests through the bounded-memory path should peak far below
    what materializing 20k records + outcomes would cost."""
    n_requests = 20_000
    env = Environment()
    engine = PlaybackEngine(env, _echo_adapter(env, service_s=0.001),
                            record_outcomes=False)
    trace = iter_fixed_jpeg_trace(rate_rps=500.0, n_requests=n_requests,
                                  seed=5)
    tracemalloc.start()
    env.process(engine.play(trace))
    env.run()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert engine.stats.completed == n_requests
    assert engine.outcomes == []
    # materialized: ~20k TraceRecords + ~20k RequestOutcomes is several
    # MB; the streaming path's peak is in-flight state only
    assert peak < 2 * 1024 * 1024, f"peak {peak} bytes"


def test_playback_stats_failure_accounting():
    env = Environment()

    def flaky(record):
        if record.url.endswith("img0.jpg"):
            raise RuntimeError("boom")
        return env.timeout(0.01, value="ok")

    records = fixed_jpeg_trace(rate_rps=30.0, duration_s=5.0, seed=9)
    engine = PlaybackEngine(env, flaky, record_outcomes=False)
    env.process(engine.play(iter(records)))
    env.run()
    expected_failures = sum(
        1 for record in records if record.url.endswith("img0.jpg"))
    assert engine.stats.failed == expected_failures
    assert engine.stats.completed == len(records) - expected_failures
    assert engine.stats.submitted == len(records)
