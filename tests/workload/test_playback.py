"""Tests for the playback engine against a mock service."""

import pytest

from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord


def records_at(times):
    return [
        TraceRecord(t, f"c{i}", f"http://x/{i}.gif", "image/gif", 1000)
        for i, t in enumerate(times)
    ]


class MockService:
    """Responds after a fixed service time; can be told to fail."""

    def __init__(self, env, service_time=0.1, fail_urls=()):
        self.env = env
        self.service_time = service_time
        self.fail_urls = set(fail_urls)
        self.received = []

    def submit(self, record):
        self.received.append((self.env.now, record))
        event = self.env.event()
        if record.url in self.fail_urls:
            raise RuntimeError("service refused")
        self.env.process(self._respond(event, record))
        return event

    def _respond(self, event, record):
        yield self.env.timeout(self.service_time)
        event.succeed({"url": record.url})


def test_faithful_playback_preserves_spacing():
    env = Environment()
    service = MockService(env)
    engine = PlaybackEngine(env, service.submit)
    trace = records_at([100.0, 100.5, 102.0])
    env.process(engine.play(trace))
    env.run()
    submit_times = [t for t, _ in service.received]
    assert submit_times == pytest.approx([0.0, 0.5, 2.0])
    assert len(engine.completed()) == 3
    assert engine.latencies() == pytest.approx([0.1, 0.1, 0.1])


def test_playback_with_offset():
    env = Environment()
    service = MockService(env)
    engine = PlaybackEngine(env, service.submit)
    env.process(engine.play(records_at([0.0, 1.0]), time_offset=10.0))
    env.run()
    assert [t for t, _ in service.received] == pytest.approx([10.0, 11.0])


def test_constant_rate_mode_hits_requested_rate():
    env = Environment()
    service = MockService(env, service_time=0.01)
    rng = RandomStreams(5).stream("playback")
    engine = PlaybackEngine(env, service.submit, rng=rng)
    pool = records_at([0.0])
    env.process(engine.constant_rate(50.0, 60.0, pool))
    env.run()
    assert len(service.received) / 60.0 == pytest.approx(50.0, rel=0.15)


def test_constant_rate_requires_rng():
    env = Environment()
    engine = PlaybackEngine(env, MockService(env).submit)
    with pytest.raises(ValueError):
        next(engine.constant_rate(10.0, 1.0, records_at([0.0])))


def test_ramp_mode_changes_rate_per_step():
    env = Environment()
    service = MockService(env, service_time=0.01)
    rng = RandomStreams(5).stream("playback")
    engine = PlaybackEngine(env, service.submit, rng=rng)
    pool = records_at([0.0])
    env.process(engine.ramp([(30.0, 5.0), (30.0, 40.0)], pool))
    env.run()
    first_half = sum(1 for t, _ in service.received if t < 30.0)
    second_half = sum(1 for t, _ in service.received if t >= 30.0)
    assert second_half > 4 * first_half


def test_ramp_zero_rate_pauses():
    env = Environment()
    service = MockService(env)
    rng = RandomStreams(5).stream("playback")
    engine = PlaybackEngine(env, service.submit, rng=rng)
    env.process(engine.ramp([(10.0, 0.0), (10.0, 10.0)], records_at([0.0])))
    env.run()
    assert all(t >= 10.0 for t, _ in service.received)


def test_adapter_exception_recorded_as_failure():
    env = Environment()
    service = MockService(env, fail_urls={"http://x/0.gif"})
    engine = PlaybackEngine(env, service.submit)
    env.process(engine.play(records_at([0.0, 1.0])))
    env.run()
    assert len(engine.failed()) == 1
    assert "service refused" in engine.failed()[0].error
    assert len(engine.completed()) == 1


def test_timeout_marks_request_failed():
    env = Environment()
    service = MockService(env, service_time=10.0)
    engine = PlaybackEngine(env, service.submit, timeout_s=1.0)
    env.process(engine.play(records_at([0.0])))
    env.run()
    assert len(engine.failed()) == 1
    assert engine.failed()[0].error == "timeout"


def test_in_flight_tracking():
    env = Environment()
    service = MockService(env, service_time=5.0)
    engine = PlaybackEngine(env, service.submit)
    env.process(engine.play(records_at([0.0, 0.1, 0.2])))
    env.run()
    assert engine.max_in_flight == 3
    assert engine.in_flight == 0


def test_throughput_window():
    env = Environment()
    service = MockService(env, service_time=0.0)
    engine = PlaybackEngine(env, service.submit)
    env.process(engine.play(records_at([0.0, 1.0, 2.0, 3.0])))
    env.run(until=100.0)
    # all 4 completed by t=3; window of last 50 s covers them
    assert engine.throughput(100.0) == pytest.approx(4 / 100.0)
    with pytest.raises(ValueError):
        engine.throughput(0.0)


def test_play_scheduled_matches_play_aligned():
    """The callback-driven pump submits the same records at the same
    simulated times as the process-based absolute-clock player."""
    trace = records_at([10.0, 10.4, 12.0, 15.5])
    received = {}
    for mode in ("aligned", "scheduled"):
        env = Environment()
        service = MockService(env, service_time=0.1)
        engine = PlaybackEngine(env, service.submit)
        if mode == "aligned":
            env.process(engine.play_aligned(trace, clock_origin=10.0))
        else:
            engine.play_scheduled(trace, clock_origin=10.0)
        env.run()
        received[mode] = [(t, record.url)
                          for t, record in service.received]
        assert engine.stats.completed == 4
    assert received["scheduled"] == received["aligned"]
    assert [t for t, _ in received["scheduled"]] \
        == pytest.approx([0.0, 0.4, 2.0, 5.5])


def test_play_scheduled_past_due_records_submit_immediately():
    env = Environment()
    service = MockService(env, service_time=0.0)
    engine = PlaybackEngine(env, service.submit)
    # both records are already due at t=0 on this clock
    engine.play_scheduled(records_at([3.0, 4.0]), clock_origin=5.0)
    env.run()
    assert [t for t, _ in service.received] == [0.0, 0.0]
    assert engine.stats.submitted == 2


def test_throughput_modes_agree():
    """Bounded-memory mode must answer the same windowed-throughput
    query as the outcome-scanning mode, for every window that the
    completion ring covers."""
    times = [0.0, 1.0, 2.0, 3.0, 10.0, 11.0]
    results = {}
    for record_outcomes in (True, False):
        env = Environment()
        service = MockService(env, service_time=0.0)
        engine = PlaybackEngine(env, service.submit,
                                record_outcomes=record_outcomes)
        env.process(engine.play(records_at(times)))
        env.run(until=12.0)
        results[record_outcomes] = [engine.throughput(w)
                                    for w in (1.5, 5.0, 12.0)]
    assert results[True] == pytest.approx(results[False])
    # the trailing 1.5 s window sees only the completion at t=11
    assert results[False][0] == pytest.approx(1 / 1.5)


def test_throughput_ring_wrap_raises_instead_of_undercounting():
    env = Environment()
    service = MockService(env, service_time=0.0)
    engine = PlaybackEngine(env, service.submit,
                            record_outcomes=False, throughput_ring=2)
    env.process(engine.play(records_at([0.0, 1.0, 2.0, 3.0])))
    env.run(until=4.0)
    # ring holds completions at t=2 and t=3 only; a 1.5 s window
    # (horizon 2.5) is fully covered...
    assert engine.throughput(1.5) == pytest.approx(1 / 1.5)
    # ...but a 3 s window (horizon 1.0) reaches past the evicted
    # completions at t=0 and t=1 and must refuse rather than lie
    with pytest.raises(ValueError, match="larger"):
        engine.throughput(3.0)


def test_throughput_zero_ring_raises_in_bounded_mode():
    env = Environment()
    service = MockService(env, service_time=0.0)
    engine = PlaybackEngine(env, service.submit,
                            record_outcomes=False, throughput_ring=0)
    env.process(engine.play(records_at([0.0])))
    env.run(until=1.0)
    with pytest.raises(ValueError, match="throughput_ring=0"):
        engine.throughput(1.0)


def test_bounded_mode_stats_match_recorded_mode():
    times = [0.0, 0.5, 1.0]
    stats = {}
    for record_outcomes in (True, False):
        env = Environment()
        service = MockService(env, service_time=0.1,
                              fail_urls={"http://x/1.gif"})
        engine = PlaybackEngine(env, service.submit,
                                record_outcomes=record_outcomes)
        env.process(engine.play(records_at(times)))
        env.run()
        stats[record_outcomes] = engine.stats
    for mode in (True, False):
        assert stats[mode].submitted == 3
        assert stats[mode].completed == 2
        assert stats[mode].failed == 1
        assert stats[mode].mean_latency == pytest.approx(0.1)
    # only the recorded mode keeps per-request outcomes
    env = Environment()
    engine = PlaybackEngine(env, MockService(env).submit,
                            record_outcomes=False)
    env.process(engine.play(records_at([0.0])))
    env.run()
    assert engine.outcomes == []
