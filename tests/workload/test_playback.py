"""Tests for the playback engine against a mock service."""

import pytest

from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord


def records_at(times):
    return [
        TraceRecord(t, f"c{i}", f"http://x/{i}.gif", "image/gif", 1000)
        for i, t in enumerate(times)
    ]


class MockService:
    """Responds after a fixed service time; can be told to fail."""

    def __init__(self, env, service_time=0.1, fail_urls=()):
        self.env = env
        self.service_time = service_time
        self.fail_urls = set(fail_urls)
        self.received = []

    def submit(self, record):
        self.received.append((self.env.now, record))
        event = self.env.event()
        if record.url in self.fail_urls:
            raise RuntimeError("service refused")
        self.env.process(self._respond(event, record))
        return event

    def _respond(self, event, record):
        yield self.env.timeout(self.service_time)
        event.succeed({"url": record.url})


def test_faithful_playback_preserves_spacing():
    env = Environment()
    service = MockService(env)
    engine = PlaybackEngine(env, service.submit)
    trace = records_at([100.0, 100.5, 102.0])
    env.process(engine.play(trace))
    env.run()
    submit_times = [t for t, _ in service.received]
    assert submit_times == pytest.approx([0.0, 0.5, 2.0])
    assert len(engine.completed()) == 3
    assert engine.latencies() == pytest.approx([0.1, 0.1, 0.1])


def test_playback_with_offset():
    env = Environment()
    service = MockService(env)
    engine = PlaybackEngine(env, service.submit)
    env.process(engine.play(records_at([0.0, 1.0]), time_offset=10.0))
    env.run()
    assert [t for t, _ in service.received] == pytest.approx([10.0, 11.0])


def test_constant_rate_mode_hits_requested_rate():
    env = Environment()
    service = MockService(env, service_time=0.01)
    rng = RandomStreams(5).stream("playback")
    engine = PlaybackEngine(env, service.submit, rng=rng)
    pool = records_at([0.0])
    env.process(engine.constant_rate(50.0, 60.0, pool))
    env.run()
    assert len(service.received) / 60.0 == pytest.approx(50.0, rel=0.15)


def test_constant_rate_requires_rng():
    env = Environment()
    engine = PlaybackEngine(env, MockService(env).submit)
    with pytest.raises(ValueError):
        next(engine.constant_rate(10.0, 1.0, records_at([0.0])))


def test_ramp_mode_changes_rate_per_step():
    env = Environment()
    service = MockService(env, service_time=0.01)
    rng = RandomStreams(5).stream("playback")
    engine = PlaybackEngine(env, service.submit, rng=rng)
    pool = records_at([0.0])
    env.process(engine.ramp([(30.0, 5.0), (30.0, 40.0)], pool))
    env.run()
    first_half = sum(1 for t, _ in service.received if t < 30.0)
    second_half = sum(1 for t, _ in service.received if t >= 30.0)
    assert second_half > 4 * first_half


def test_ramp_zero_rate_pauses():
    env = Environment()
    service = MockService(env)
    rng = RandomStreams(5).stream("playback")
    engine = PlaybackEngine(env, service.submit, rng=rng)
    env.process(engine.ramp([(10.0, 0.0), (10.0, 10.0)], records_at([0.0])))
    env.run()
    assert all(t >= 10.0 for t, _ in service.received)


def test_adapter_exception_recorded_as_failure():
    env = Environment()
    service = MockService(env, fail_urls={"http://x/0.gif"})
    engine = PlaybackEngine(env, service.submit)
    env.process(engine.play(records_at([0.0, 1.0])))
    env.run()
    assert len(engine.failed()) == 1
    assert "service refused" in engine.failed()[0].error
    assert len(engine.completed()) == 1


def test_timeout_marks_request_failed():
    env = Environment()
    service = MockService(env, service_time=10.0)
    engine = PlaybackEngine(env, service.submit, timeout_s=1.0)
    env.process(engine.play(records_at([0.0])))
    env.run()
    assert len(engine.failed()) == 1
    assert engine.failed()[0].error == "timeout"


def test_in_flight_tracking():
    env = Environment()
    service = MockService(env, service_time=5.0)
    engine = PlaybackEngine(env, service.submit)
    env.process(engine.play(records_at([0.0, 0.1, 0.2])))
    env.run()
    assert engine.max_in_flight == 3
    assert engine.in_flight == 0


def test_throughput_window():
    env = Environment()
    service = MockService(env, service_time=0.0)
    engine = PlaybackEngine(env, service.submit)
    env.process(engine.play(records_at([0.0, 1.0, 2.0, 3.0])))
    env.run(until=100.0)
    # all 4 completed by t=3; window of last 50 s covers them
    assert engine.throughput(100.0) == pytest.approx(4 / 100.0)
    with pytest.raises(ValueError):
        engine.throughput(0.0)
