"""Calibration tests: the synthetic workload must match the published
statistics of the Berkeley dialup trace (Section 4.1 / Figure 5)."""

import pytest

from repro.sim.rng import RandomStreams
from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG
from repro.workload.distributions import (
    MimeMix,
    Mode,
    SizeModel,
    default_mime_mix,
    default_size_models,
    size_histogram,
)


@pytest.fixture(scope="module")
def rng():
    return RandomStreams(2024).stream("calibration")


@pytest.fixture(scope="module")
def models():
    return default_size_models()


def sample_many(model, rng, n=20000):
    return [model.sample(rng) for _ in range(n)]


def test_html_mean_matches_paper(models, rng):
    sizes = sample_many(models[MIME_HTML], rng)
    mean = sum(sizes) / len(sizes)
    assert mean == pytest.approx(5131, rel=0.15)


def test_gif_mean_matches_paper(models, rng):
    sizes = sample_many(models[MIME_GIF], rng)
    mean = sum(sizes) / len(sizes)
    assert mean == pytest.approx(3428, rel=0.15)


def test_jpeg_mean_matches_paper(models, rng):
    sizes = sample_many(models[MIME_JPEG], rng)
    mean = sum(sizes) / len(sizes)
    assert mean == pytest.approx(12070, rel=0.15)


def test_gif_distribution_is_bimodal_around_1kb(models, rng):
    """Figure 5: GIF has an icon plateau under 1 KB and a photo plateau
    above; the 1 KB threshold separates them ~50/50."""
    sizes = sample_many(models[MIME_GIF], rng)
    below = sum(1 for size in sizes if size < 1024)
    fraction_below = below / len(sizes)
    assert 0.35 < fraction_below < 0.65


def test_jpeg_falls_off_under_1kb(models, rng):
    """Figure 5: JPEGs 'fall off rapidly under the 1KB mark'."""
    sizes = sample_many(models[MIME_JPEG], rng)
    below = sum(1 for size in sizes if size < 1024)
    assert below / len(sizes) < 0.02


def test_mime_mix_matches_paper_shares(rng):
    mix = default_mime_mix()
    n = 30000
    draws = [mix.sample(rng) for _ in range(n)]
    assert draws.count(MIME_GIF) / n == pytest.approx(0.50, abs=0.02)
    assert draws.count(MIME_HTML) / n == pytest.approx(0.22, abs=0.02)
    assert draws.count(MIME_JPEG) / n == pytest.approx(0.18, abs=0.02)


def test_size_model_validates():
    with pytest.raises(ValueError):
        SizeModel([])
    with pytest.raises(ValueError):
        SizeModel([Mode(mean=100, sigma=1.0, weight=0.0)])


def test_mime_mix_validates():
    with pytest.raises(ValueError):
        MimeMix({})
    with pytest.raises(ValueError):
        MimeMix({"a": 0.0})


def test_mode_bounds_respected(rng):
    model = SizeModel([Mode(mean=500, sigma=2.0, min_bytes=100,
                            max_bytes=1000)])
    sizes = sample_many(model, rng, n=5000)
    assert min(sizes) >= 100
    assert max(sizes) <= 1000


def test_size_histogram_sums_to_one(models, rng):
    sizes = sample_many(models[MIME_GIF], rng, n=5000)
    histogram = size_histogram(sizes)
    assert sum(mass for _, mass in histogram) == pytest.approx(1.0)
    centers = [center for center, _ in histogram]
    assert centers == sorted(centers)


def test_size_histogram_empty():
    assert size_histogram([]) == []
