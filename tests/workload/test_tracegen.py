"""Tests for trace generation, trace files, and burstiness analysis."""

import pytest

from repro.tacc.content import MIME_JPEG
from repro.workload.burstiness import (
    aggregate,
    bucket_counts,
    burstiness_report,
    index_of_dispersion,
    overflow_line_for_fraction,
    utilization_line,
)
from repro.workload.trace import TraceRecord, load_trace, save_trace
from repro.workload.tracegen import (
    BurstCascade,
    DocumentUniverse,
    TraceGenerator,
    daily_cycle_factor,
    fixed_jpeg_trace,
)
from repro.sim.rng import RandomStreams


# -- trace records -----------------------------------------------------------

def test_trace_record_roundtrips_through_line():
    record = TraceRecord(12.5, "client3", "http://a/b.gif",
                         "image/gif", 2048)
    assert TraceRecord.from_line(record.to_line()) == record


def test_trace_file_roundtrip(tmp_path):
    records = [
        TraceRecord(float(index), f"c{index}", f"http://x/{index}.html",
                    "text/html", 100 + index)
        for index in range(10)
    ]
    path = str(tmp_path / "trace.tsv")
    assert save_trace(records, path) == 10
    assert load_trace(path) == records


def test_malformed_trace_line_rejected():
    with pytest.raises(ValueError):
        TraceRecord.from_line("only\tthree\tfields")


# -- generator ----------------------------------------------------------------

def test_generator_deterministic_given_seed():
    first = TraceGenerator(seed=5, mean_rate_rps=3.0).generate(60.0)
    second = TraceGenerator(seed=5, mean_rate_rps=3.0).generate(60.0)
    assert first == second
    third = TraceGenerator(seed=6, mean_rate_rps=3.0).generate(60.0)
    assert first != third


def _gen(seed=5, rate=8.0):
    return TraceGenerator(seed=seed, mean_rate_rps=rate)


def test_slice_concatenation_reproduces_single_call():
    """The time-shard handoff contract: [0, T) equals [0, t) + [t, T)
    record-for-record, at every split point — including mid-bucket."""
    whole = _gen().generate(30.0)
    for split in (10.0, 15.5, 0.25, 29.75, 7.0):
        left = _gen().generate(split)
        right = _gen().generate(30.0 - split, start_s=split)
        assert left + right == whole, f"split at {split}"


def test_slice_many_odd_widths_tile_the_trace():
    whole = _gen(seed=11).generate(20.0)
    edges = [0.0, 1.7, 3.1, 3.2, 8.999, 13.0, 17.42, 20.0]
    tiled = []
    for start, end in zip(edges, edges[1:]):
        tiled.extend(_gen(seed=11).generate(end - start, start_s=start))
    assert tiled == whole


def test_slice_from_fresh_generator_instances():
    """Windows must be regenerable with zero carried state: a brand-new
    generator asked for [t, T) yields what the original produced there.
    This is what lets each replay shard rebuild its window from the
    spec alone, with no RNG-position handoff."""
    original = _gen(seed=7).generate(25.0)
    generator = _gen(seed=7)  # one instance, reused across windows
    reused = (generator.generate(10.0)
              + generator.generate(15.0, start_s=10.0))
    fresh = (_gen(seed=7).generate(10.0)
             + _gen(seed=7).generate(15.0, start_s=10.0))
    assert reused == original
    assert fresh == original


def test_slice_with_nonzero_origin_offsets():
    whole = _gen(seed=3).generate(12.0, start_s=100.0)
    parts = (_gen(seed=3).generate(5.5, start_s=100.0)
             + _gen(seed=3).generate(6.5, start_s=105.5))
    assert parts == whole


def test_iter_generate_streams_same_records_as_generate():
    generator = _gen(seed=13)
    assert list(generator.iter_generate(15.0, start_s=4.0)) \
        == generator.generate(15.0, start_s=4.0)


def test_generator_mean_rate_roughly_requested():
    records = TraceGenerator(
        seed=9, mean_rate_rps=5.8, with_daily_cycle=False,
        with_bursts=False).generate(600.0)
    assert len(records) / 600.0 == pytest.approx(5.8, rel=0.15)


def test_generator_timestamps_sorted_and_in_range():
    records = TraceGenerator(seed=2, mean_rate_rps=4.0).generate(
        120.0, start_s=100.0)
    times = [record.timestamp for record in records]
    assert times == sorted(times)
    assert all(100.0 <= t < 220.0 for t in times)


def test_daily_cycle_unit_mean_and_trough():
    factors = [daily_cycle_factor(hour * 3600.0) for hour in range(24)]
    assert sum(factors) / 24 == pytest.approx(1.0, abs=0.01)
    assert min(factors) == factors[7] or min(factors) == factors[8]


def test_bursty_trace_more_dispersed_than_poisson():
    """The headline burstiness property: with the cascade on, bucket
    counts are over-dispersed relative to Poisson at coarse scales."""
    smooth = TraceGenerator(seed=3, mean_rate_rps=5.0,
                            with_daily_cycle=False,
                            with_bursts=False).generate(1800.0)
    bursty = TraceGenerator(seed=3, mean_rate_rps=5.0,
                            with_daily_cycle=False,
                            with_bursts=True).generate(1800.0)
    dispersion_smooth = index_of_dispersion(bucket_counts(smooth, 30.0))
    dispersion_bursty = index_of_dispersion(bucket_counts(bursty, 30.0))
    assert dispersion_smooth < 2.5
    assert dispersion_bursty > 2 * dispersion_smooth


def test_burst_dispersion_grows_with_aggregation():
    """Self-similar-ish traffic stays over-dispersed as buckets widen,
    unlike Poisson whose dispersion stays ~1."""
    bursty = TraceGenerator(seed=4, mean_rate_rps=5.0,
                            with_daily_cycle=False,
                            with_bursts=True).generate(3600.0)
    fine = bucket_counts(bursty, 1.0)
    coarse = aggregate(fine, 30)
    assert index_of_dispersion(coarse) > index_of_dispersion(fine)


def test_universe_shared_and_private_documents():
    rng = RandomStreams(1).stream("u")
    universe = DocumentUniverse(rng, n_shared_docs=100,
                                n_private_per_user=10,
                                shared_fraction=0.5)
    shared_urls = {doc.url for doc in universe.shared_docs}
    docs = [universe.sample_document("client1") for _ in range(500)]
    shared_count = sum(1 for doc in docs if doc.url in shared_urls)
    assert 150 < shared_count < 350  # ~50% shared
    private = [doc for doc in docs if doc.url not in shared_urls]
    assert all("client1" in doc.url for doc in private)


def test_universe_private_docs_stable():
    rng = RandomStreams(1).stream("u")
    universe = DocumentUniverse(rng, n_shared_docs=10)
    first = universe._private_doc("clientX", 3)
    second = universe._private_doc("clientX", 3)
    assert first is second


def test_universe_validates_shared_fraction():
    rng = RandomStreams(1).stream("u")
    with pytest.raises(ValueError):
        DocumentUniverse(rng, shared_fraction=1.5)


def test_fixed_jpeg_trace_shape():
    records = fixed_jpeg_trace(rate_rps=20.0, duration_s=30.0,
                               n_images=5, image_size_bytes=10240)
    assert len(records) / 30.0 == pytest.approx(20.0, rel=0.25)
    assert all(record.mime == MIME_JPEG for record in records)
    assert all(record.size_bytes == 10240 for record in records)
    assert len({record.url for record in records}) == 5


def test_burst_cascade_unit_mean():
    cascade = BurstCascade(RandomStreams(8).stream("b"), sigma=0.3)
    samples = [cascade.factor(t * 1.0) for t in range(0, 36000, 7)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(1.0, rel=0.25)


# -- burstiness analysis ----------------------------------------------------------

def make_records(rates, bucket_s=1.0):
    """Deterministic trace with `rates[i]` requests in second i."""
    records = []
    for second, rate in enumerate(rates):
        for k in range(rate):
            records.append(TraceRecord(
                second * bucket_s + k / (rate + 1), "c", "u", "m", 1))
    return records


def test_bucket_counts_basic():
    records = make_records([3, 0, 5])
    assert bucket_counts(records, 1.0) == [3, 0, 5]
    assert bucket_counts([], 1.0) == []
    with pytest.raises(ValueError):
        bucket_counts(records, 0.0)


def test_utilization_line_full_is_peak():
    records = make_records([2, 4, 6, 8])
    line = utilization_line(bucket_counts(records, 1.0), 1.0, 1.0)
    assert line == pytest.approx(8.0, abs=0.1)


def test_utilization_line_half_traffic():
    counts = [10, 10, 10, 10]
    line = utilization_line(counts, 1.0, 0.5)
    assert line == pytest.approx(5.0, abs=0.1)


def test_overflow_line_quantile():
    counts = list(range(1, 101))  # rates 1..100
    line = overflow_line_for_fraction(counts, 1.0, 0.10)
    assert line == pytest.approx(90.0, abs=1.0)
    assert overflow_line_for_fraction(counts, 1.0, 0.0) == 100.0


def test_analysis_input_validation():
    with pytest.raises(ValueError):
        utilization_line([1], 1.0, 0.0)
    with pytest.raises(ValueError):
        overflow_line_for_fraction([1], 1.0, 1.5)
    with pytest.raises(ValueError):
        aggregate([1, 2], 0)


def test_burstiness_report_scales():
    records = TraceGenerator(seed=11, mean_rate_rps=6.0).generate(600.0)
    report = burstiness_report(records, scales_s=(120.0, 30.0, 1.0))
    assert set(report) == {120.0, 30.0, 1.0}
    for scale, stats in report.items():
        assert stats["peak_rps"] >= stats["avg_rps"]
        assert stats["buckets"] >= 1
