"""Tests for the trace-driven cache simulator."""

import pytest

from repro.cache.simulator import (
    CacheSimulator,
    simulate_hit_rate,
    sweep_cache_sizes,
)
from repro.sim.rng import RandomStreams


def zipf_trace(n_requests=5000, n_docs=500, seed=3):
    rng = RandomStreams(seed).stream("trace")
    return [
        (f"doc{rng.zipf_rank(n_docs)}", 1000) for _ in range(n_requests)
    ]


def test_repeated_key_hits_after_first_reference():
    sim = CacheSimulator(10_000)
    assert sim.reference("a", 100) is False
    assert sim.reference("a", 100) is True
    assert sim.hit_rate == 0.5


def test_byte_hit_rate_weighs_by_size():
    sim = CacheSimulator(10_000)
    sim.reference("small", 10)
    sim.reference("big", 1000)
    sim.reference("big", 1000)      # hit: 1000 bytes from cache
    assert sim.byte_hit_rate == pytest.approx(1000 / 2010)


def test_hit_rate_monotone_in_cache_size():
    trace = zipf_trace()
    sizes = [2_000, 10_000, 50_000, 200_000, 1_000_000]
    rates = sweep_cache_sizes(trace, sizes)
    values = [rates[s] for s in sizes]
    for smaller, bigger in zip(values, values[1:]):
        assert bigger >= smaller - 1e-9


def test_hit_rate_plateaus_once_working_set_fits():
    """Past the working-set size, more cache buys nothing — the paper's
    plateau observation."""
    trace = zipf_trace(n_requests=5000, n_docs=200)  # working set 200 KB
    rate_at_fit = simulate_hit_rate(trace, 200 * 1000)
    rate_at_10x = simulate_hit_rate(trace, 2000 * 1000)
    assert rate_at_10x == pytest.approx(rate_at_fit, abs=0.01)


def test_zero_requests_zero_rates():
    sim = CacheSimulator(1000)
    assert sim.hit_rate == 0.0
    assert sim.byte_hit_rate == 0.0
