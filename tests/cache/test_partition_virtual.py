"""Tests for partitioners, the virtual cache, and the latency model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.latency import HarvestLatencyModel
from repro.cache.partition import (
    ConsistentHashRing,
    ModHashPartitioner,
    PartitionError,
    remap_fraction,
    stable_hash,
)
from repro.cache.virtual_cache import VirtualCache
from repro.sim.rng import RandomStreams


KEYS = [f"http://host{i}/path{i}.gif" for i in range(2000)]
NODES = [f"cache{i}" for i in range(8)]


# -- partitioners -------------------------------------------------------------

def test_stable_hash_is_deterministic():
    assert stable_hash("abc") == stable_hash("abc")
    assert stable_hash("abc") != stable_hash("abd")


@pytest.mark.parametrize("factory", [ModHashPartitioner, ConsistentHashRing])
def test_locate_is_deterministic_and_in_membership(factory):
    partitioner = factory(NODES)
    for key in KEYS[:100]:
        owner = partitioner.locate(key)
        assert owner in NODES
        assert partitioner.locate(key) == owner


@pytest.mark.parametrize("factory", [ModHashPartitioner, ConsistentHashRing])
def test_membership_errors(factory):
    partitioner = factory(["a"])
    with pytest.raises(PartitionError):
        partitioner.add_node("a")
    with pytest.raises(PartitionError):
        partitioner.remove_node("zzz")
    partitioner.remove_node("a")
    with pytest.raises(PartitionError):
        partitioner.locate("key")


@pytest.mark.parametrize("factory", [ModHashPartitioner, ConsistentHashRing])
def test_load_is_roughly_balanced(factory):
    partitioner = factory(NODES)
    counts = {node: 0 for node in NODES}
    for key in KEYS:
        counts[partitioner.locate(key)] += 1
    expected = len(KEYS) / len(NODES)
    for node, count in counts.items():
        assert count > expected * 0.4, f"{node} starved: {count}"
        assert count < expected * 1.9, f"{node} overloaded: {count}"


def test_consistent_hashing_moves_far_fewer_keys_than_mod_hash():
    """The ablation headline: removing one of 8 nodes remaps ~85 % of
    surviving keys under mod-hash but only a few percent under
    consistent hashing."""
    mod_moved = remap_fraction(ModHashPartitioner, KEYS, NODES, "cache3")
    ring_moved = remap_fraction(ConsistentHashRing, KEYS, NODES, "cache3")
    assert mod_moved > 0.7
    assert ring_moved < 0.15
    assert ring_moved < mod_moved / 4


# -- virtual cache ----------------------------------------------------------------

def test_virtual_cache_put_get_routes_consistently():
    vcache = VirtualCache(node_capacity_bytes=10_000, nodes=NODES[:4])
    node = vcache.put("key1", "value1", 100)
    assert node in NODES[:4]
    assert vcache.get("key1") == "value1"
    assert vcache.hit_rate == 1.0


def test_virtual_cache_membership_change_loses_stranded_entries():
    vcache = VirtualCache(node_capacity_bytes=100_000, nodes=["c0", "c1"])
    for key in KEYS[:200]:
        vcache.put(key, key, 100)
    hits_before = sum(
        1 for key in KEYS[:200] if vcache.get(key) is not None)
    assert hits_before == 200
    vcache.add_node("c2")  # mod-hash: most keys remap
    hits_after = sum(
        1 for key in KEYS[:200] if vcache.get(key) is not None)
    assert hits_after < hits_before * 0.7


def test_virtual_cache_remove_node_drops_its_contents():
    vcache = VirtualCache(node_capacity_bytes=100_000, nodes=["c0", "c1"])
    for key in KEYS[:100]:
        vcache.put(key, key, 10)
    dropped = vcache.remove_node("c1")
    assert dropped > 0
    assert vcache.nodes == ["c0"]
    # every key now routes to c0
    assert vcache.store_for("anything")[0] == "c0"


def test_virtual_cache_aggregate_stats():
    vcache = VirtualCache(node_capacity_bytes=1000, nodes=["c0", "c1"])
    vcache.put("a", 1, 100)
    stats = vcache.node_stats()
    assert set(stats) == {"c0", "c1"}
    assert vcache.used_bytes == 100
    assert vcache.capacity_bytes == 2000
    vcache.flush()
    assert vcache.used_bytes == 0


def test_virtual_cache_invalidate():
    vcache = VirtualCache(node_capacity_bytes=1000, nodes=["c0"])
    vcache.put("a", 1, 10)
    assert vcache.invalidate("a") is True
    assert vcache.invalidate("a") is False


# -- latency model ---------------------------------------------------------------

def test_hit_time_statistics_match_paper():
    """Mean hit ~27 ms, P95 < 100 ms (Section 4.4)."""
    model = HarvestLatencyModel(RandomStreams(7).stream("cache"))
    samples = sorted(model.hit_time() for _ in range(20000))
    mean = sum(samples) / len(samples)
    p95 = samples[int(0.95 * len(samples))]
    assert mean == pytest.approx(0.027, rel=0.1)
    assert p95 < 0.100
    assert min(samples) >= 0.015  # TCP overhead floor


def test_miss_penalty_spans_paper_range():
    """Miss penalties run 100 ms to 100 s, heavy-tailed."""
    model = HarvestLatencyModel(RandomStreams(7).stream("cache"))
    samples = [model.miss_penalty() for _ in range(20000)]
    assert min(samples) >= 0.100
    assert max(samples) <= 100.0
    assert max(samples) > 10.0       # the tail is real
    median = sorted(samples)[len(samples) // 2]
    assert median < 0.5              # most fetches are sub-second


def test_max_hit_service_rate_is_37_per_second():
    model = HarvestLatencyModel(RandomStreams(7).stream("cache"))
    assert model.max_hit_service_rate() == pytest.approx(37.0, abs=0.1)


def test_latency_model_validates_parameters():
    rng = RandomStreams(7).stream("cache")
    with pytest.raises(ValueError):
        HarvestLatencyModel(rng, mean_hit_s=0.010, tcp_overhead_s=0.015)
