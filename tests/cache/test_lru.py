"""Tests for the byte-capacity LRU cache, including property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_get_miss_returns_none_and_counts():
    cache = LRUCache(100)
    assert cache.get("nope") is None
    assert cache.misses == 1
    assert cache.hit_rate == 0.0


def test_put_get_roundtrip():
    cache = LRUCache(100)
    cache.put("a", "value-a", 10)
    assert cache.get("a") == "value-a"
    assert cache.hits == 1
    assert cache.used_bytes == 10
    assert "a" in cache
    assert len(cache) == 1


def test_eviction_in_lru_order():
    cache = LRUCache(30)
    cache.put("a", 1, 10)
    cache.put("b", 2, 10)
    cache.put("c", 3, 10)
    cache.get("a")          # refresh a; b is now LRU
    cache.put("d", 4, 10)   # evicts b
    assert "b" not in cache
    assert "a" in cache and "c" in cache and "d" in cache
    assert cache.evictions == 1


def test_replace_updates_size_accounting():
    cache = LRUCache(100)
    cache.put("a", "small", 10)
    cache.put("a", "large", 60)
    assert cache.used_bytes == 60
    assert len(cache) == 1


def test_object_larger_than_cache_not_stored():
    cache = LRUCache(100)
    cache.put("huge", "x", 500)
    assert "huge" not in cache
    assert cache.used_bytes == 0


def test_oversize_replacement_removes_old_entry():
    cache = LRUCache(100)
    cache.put("a", "v", 10)
    cache.put("a", "huge", 500)
    assert "a" not in cache
    assert cache.used_bytes == 0


def test_peek_does_not_touch_recency_or_stats():
    cache = LRUCache(20)
    cache.put("a", 1, 10)
    cache.put("b", 2, 10)
    assert cache.peek("a") == 1
    assert cache.hits == 0
    cache.put("c", 3, 10)  # should evict a (peek didn't refresh it)
    assert "a" not in cache


def test_invalidate():
    cache = LRUCache(100)
    cache.put("a", 1, 10)
    assert cache.invalidate("a") is True
    assert cache.invalidate("a") is False
    assert cache.used_bytes == 0


def test_flush_clears_everything():
    cache = LRUCache(100)
    for index in range(5):
        cache.put(f"k{index}", index, 10)
    assert cache.flush() == 5
    assert len(cache) == 0
    assert cache.used_bytes == 0


def test_zero_size_entries_allowed():
    cache = LRUCache(10)
    cache.put("empty", "", 0)
    assert "empty" in cache
    with pytest.raises(ValueError):
        cache.put("neg", "", -1)


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 40)),
        max_size=200,
    ),
    capacity=st.integers(1, 200),
)
def test_lru_invariants_hold_under_any_workload(ops, capacity):
    """used_bytes never exceeds capacity and always equals the sum of
    resident entry sizes, for any put sequence."""
    cache = LRUCache(capacity)
    sizes = {}
    for key, size in ops:
        cache.put(key, f"v{key}", size)
        sizes[key] = size
    assert cache.used_bytes <= capacity
    resident = sum(sizes[key] for key in cache.keys())
    assert cache.used_bytes == resident


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 10), min_size=1, max_size=300))
def test_lru_smaller_cache_never_beats_bigger(keys):
    """Inclusion property of LRU: hit count is monotone in capacity
    (for uniform object sizes)."""
    references = [(f"k{key}", 10) for key in keys]

    def hits(capacity):
        cache = LRUCache(capacity)
        for key, size in references:
            if cache.get(key) is None:
                cache.put(key, True, size)
        return cache.hits

    assert hits(50) <= hits(100)
