"""Stub-level behavior of each injectable gray-failure mode.

These drive :class:`~repro.recovery.gray.GrayState` through a real
worker stub — submission, service, probes, drain — without any
supervisor in the loop, so each mode's mechanics are pinned down
independently of detection policy.
"""

import pytest

from repro.recovery import GrayState

from tests.recovery.conftest import boot_fabric, make_envelope


# -- GrayState math -------------------------------------------------------------


def test_healthy_state_is_identity():
    gray = GrayState()
    assert not gray.is_gray
    assert gray.inflation(100.0) == 1.0
    assert gray.describe() == "healthy"


def test_fail_slow_inflation_is_constant():
    gray = GrayState()
    gray.fail_slow(6.0, now=10.0)
    assert gray.is_gray
    assert gray.inflation(10.0) == 6.0
    assert gray.inflation(500.0) == 6.0
    assert gray.modes == ["fail-slow"]


def test_fail_slow_rejects_non_inflating_factor():
    with pytest.raises(ValueError):
        GrayState().fail_slow(1.0, now=0.0)


def test_leak_inflation_grows_linearly():
    gray = GrayState()
    gray.leak(0.5, now=10.0)
    assert gray.inflation(10.0) == pytest.approx(1.0)
    assert gray.inflation(14.0) == pytest.approx(1.0 + 0.5 * 4.0)
    with pytest.raises(ValueError):
        GrayState().leak(0.0, now=0.0)


def test_modes_compose_multiplicatively():
    gray = GrayState()
    gray.fail_slow(2.0, now=0.0)
    gray.leak(1.0, now=0.0)
    # slow factor 2 x leak (1 + 1*3) at t=3
    assert gray.inflation(3.0) == pytest.approx(8.0)
    assert gray.describe() == "fail-slow+leak"
    assert gray.injected_at == 0.0


# -- zombie: accept-and-drop while reporting ------------------------------------


def test_zombie_swallows_submissions_but_keeps_reporting():
    fabric = boot_fabric(workers=2)
    stub = fabric.workers["test-worker.1"]
    stub.gray.zombify(fabric.cluster.env.now)

    assert stub.submit(make_envelope(fabric)) is True
    assert stub.queue.length == 0
    assert stub.gray.dropped == 1
    served_before = stub.served

    fabric.cluster.run(until=6.0)
    # the report loop never stopped: the manager still trusts the zombie
    assert stub.alive
    assert stub.name in fabric.manager.workers
    assert stub.served == served_before


# -- hang: accept, then hold forever --------------------------------------------


def test_hung_worker_holds_the_head_request_forever():
    fabric = boot_fabric(workers=2)
    stub = fabric.workers["test-worker.1"]
    stub.gray.hang(fabric.cluster.env.now)

    envelope = make_envelope(fabric)
    assert stub.submit(envelope) is True
    fabric.cluster.run(until=10.0)

    assert stub.alive
    assert stub.busy            # wedged on the held request
    assert stub.gray.dropped == 1
    assert not envelope.reply.triggered
    assert stub.served == 0


# -- probes ----------------------------------------------------------------------


def test_probe_reply_healthy_matches_nominal():
    fabric = boot_fabric(workers=1)
    stub = fabric.workers["test-worker.1"]
    service_s, nominal_s, output_ok = stub.probe_reply()
    assert nominal_s > 0
    assert service_s == pytest.approx(nominal_s)
    assert output_ok


def test_probe_reply_reports_gray_inflation():
    fabric = boot_fabric(workers=1)
    stub = fabric.workers["test-worker.1"]
    stub.gray.fail_slow(6.0, fabric.cluster.env.now)
    service_s, nominal_s, output_ok = stub.probe_reply()
    assert service_s == pytest.approx(6.0 * nominal_s)
    assert output_ok


def test_probe_reply_flags_corrupt_output():
    fabric = boot_fabric(workers=1)
    stub = fabric.workers["test-worker.1"]
    stub.gray.corrupt_output(fabric.cluster.env.now)
    service_s, nominal_s, output_ok = stub.probe_reply()
    assert service_s == pytest.approx(nominal_s)
    assert not output_ok


def test_probe_reply_silent_for_hang_zombie_and_death():
    fabric = boot_fabric(workers=3)
    hung = fabric.workers["test-worker.1"]
    zombie = fabric.workers["test-worker.2"]
    dead = fabric.workers["test-worker.3"]
    hung.gray.hang(fabric.cluster.env.now)
    zombie.gray.zombify(fabric.cluster.env.now)
    dead.kill()
    assert hung.probe_reply() is None
    assert zombie.probe_reply() is None
    assert dead.probe_reply() is None


def test_probe_is_side_effect_free():
    fabric = boot_fabric(workers=1)
    stub = fabric.workers["test-worker.1"]
    for _ in range(10):
        stub.probe_reply()
    assert stub.queue.length == 0
    assert stub.load == 0
    assert stub.served == 0


# -- corrupt output ships to the client -----------------------------------------


def test_corrupt_result_fails_end_to_end_validation():
    fabric = boot_fabric(workers=1)
    stub = fabric.workers["test-worker.1"]
    stub.gray.corrupt_output(fabric.cluster.env.now)
    envelope = make_envelope(fabric)
    result = stub._execute(envelope)
    assert stub.worker.validate_result(result) is False
    # a healthy worker's output passes
    healthy = boot_fabric(workers=1, seed=8)
    clean = healthy.workers["test-worker.1"]._execute(
        make_envelope(healthy))
    assert clean.metadata.get("output_valid", True) is not False


# -- drain ------------------------------------------------------------------------


def test_drain_queue_empties_and_returns_in_order():
    fabric = boot_fabric(workers=1)
    stub = fabric.workers["test-worker.1"]
    envelopes = [make_envelope(fabric, request_id=i) for i in range(3)]
    for envelope in envelopes:
        assert stub.submit(envelope)
    drained = stub.drain_queue()
    # the head envelope was already handed to the service loop's pending
    # get(); the drain returns the still-queued tail, in order
    assert [e.request_id for e in drained] == [1, 2]
    assert stub.queue.length == 0
