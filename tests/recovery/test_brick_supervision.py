"""Supervisor coverage for profile bricks: the dead-brick scan, gray
detection via the write-read probe canary, restart-in-place to the same
slot, and heal = fully-authoritative-again."""

import pytest

from repro.chaos.campaign import chaos_config
from repro.experiments._harness import build_bench_fabric
from repro.recovery.ledger import RecoveryLedger
from repro.recovery.policy import RecoveryPolicy


def boot_supervised_dstore(seed=7):
    fabric = build_bench_fabric(n_nodes=8, seed=seed,
                                config=chaos_config(),
                                profile_backend="dstore")
    ledger = RecoveryLedger(fabric.cluster.env)
    fabric.profile_bricks.ledger = ledger
    fabric.boot(n_frontends=1, initial_workers={"jpeg-distiller": 2})
    supervisor = fabric.start_supervisor(RecoveryPolicy(),
                                         ledger=ledger)
    fabric.cluster.run(until=2.0)
    return fabric, supervisor, ledger


def run_for(fabric, seconds):
    env = fabric.cluster.env
    fabric.cluster.run(until=env.now + seconds)


def seed_profiles(fabric, count=12):
    store = fabric.profile_store
    for index in range(count):
        store.set(f"client{index}", "quality", 10 + index)
    return store


def test_dead_brick_noticed_and_respawned_to_same_slot():
    fabric, supervisor, ledger = boot_supervised_dstore()
    store = seed_profiles(fabric)
    victim = fabric.profile_bricks.brick_at(0)
    ledger.inject("brick-kill", victim.name)
    victim.kill()
    run_for(fabric, 15.0)
    replacement = fabric.profile_bricks.brick_at(0)
    assert replacement is not victim
    assert replacement.alive and replacement.slot == 0
    assert replacement.fully_authoritative
    case = ledger.cases[0]
    assert case.detector == "brick-dead"
    assert case.healed and case.heal_action == "brick-restart"
    assert case.replacement == replacement.name
    assert supervisor.restarts >= 1
    assert store.verify_committed() == []


def test_zombie_brick_caught_by_probe_canary():
    fabric, supervisor, ledger = boot_supervised_dstore()
    seed_profiles(fabric)
    victim = fabric.profile_bricks.brick_at(1)
    ledger.inject("zombie", victim.name)
    victim.gray.zombify(fabric.cluster.env.now)
    run_for(fabric, 15.0)
    case = ledger.cases[0]
    # a zombie beacons fine; only the end-to-end write-read canary
    # sees output_ok=False, and corruption is a one-strike signal
    assert case.detector == "probe-validate"
    assert case.healed
    assert fabric.profile_bricks.brick_at(1).fully_authoritative


@pytest.mark.parametrize("mode", ["fail-slow", "hang"])
def test_slow_and_hung_bricks_caught_by_probe(mode):
    fabric, supervisor, ledger = boot_supervised_dstore()
    seed_profiles(fabric)
    victim = fabric.profile_bricks.brick_at(2)
    ledger.inject(mode, victim.name)
    if mode == "fail-slow":
        victim.gray.fail_slow(8.0, fabric.cluster.env.now)
    else:
        victim.gray.hang(fabric.cluster.env.now)
    run_for(fabric, 20.0)
    case = ledger.cases[0]
    assert case.detector == "probe"
    assert case.healed
    assert fabric.profile_bricks.brick_at(2).fully_authoritative


def test_heal_means_fully_authoritative_so_mttr_includes_sync():
    fabric, supervisor, ledger = boot_supervised_dstore()
    seed_profiles(fabric, count=30)
    victim = fabric.profile_bricks.brick_at(0)
    ledger.inject("brick-kill", victim.name)
    victim.kill()
    run_for(fabric, 15.0)
    case = ledger.cases[0]
    record = ledger.rejoins[0]
    # the brick served again after the constant fork, but the heal was
    # only recorded once anti-entropy finished
    assert case.mttr >= record["sync_s"] > record["rejoin_s"] > 0


def test_healthy_bricks_never_restarted():
    fabric, supervisor, ledger = boot_supervised_dstore()
    seed_profiles(fabric)
    run_for(fabric, 15.0)
    assert supervisor.restarts == 0
    assert ledger.false_alarms == []
    names = sorted(fabric.profile_bricks.population())
    assert names == ["brick0.1", "brick1.1", "brick2.1"]
