"""The determinism contract: supervision enabled but no faults injected
must be byte-identical to no supervision at all — same request outcomes,
same counters, zero draws from the backoff RNG stream."""

from repro.chaos import Campaign, CampaignRunner
from repro.recovery import RecoveryPolicy
from repro.sim.rng import Stream, _derive_seed


def run_no_fault_campaign(recovery, seed=11):
    campaign = Campaign(
        name="no-faults",
        description="clean run for the determinism contract",
        duration_s=30.0,
        actions=[],
        rate_rps=12.0,
        n_nodes=8,
        n_frontends=2,
        initial_workers=2,
        client_timeout_s=10.0,
        settle_s=5.0,
        recovery=recovery,
    )
    runner = CampaignRunner(campaign, seed=seed)
    report = runner.run()
    outcomes = [(o.ok, o.latency, o.error) for o in runner.engine.outcomes]
    return runner, report, outcomes


def test_supervised_fault_free_run_matches_unsupervised():
    plain_runner, plain_report, plain = run_no_fault_campaign(None)
    sup_runner, sup_report, supervised = run_no_fault_campaign(
        RecoveryPolicy())

    assert supervised == plain
    assert sup_report.submitted == plain_report.submitted
    assert sup_report.series == plain_report.series
    assert sup_report.overall_yield == plain_report.overall_yield
    assert sup_report.latency == plain_report.latency

    supervisor = sup_runner.supervisor
    assert supervisor is not None and supervisor.alive
    assert supervisor.probes_sent > 0
    assert supervisor.probe_failures == 0
    assert supervisor.suspicions == 0
    assert supervisor.restarts == 0
    assert supervisor.ledger.false_alarms == []
    assert supervisor.alerts == []

    # shared counters agree except the supervisor-only additions
    shared = {key: value
              for key, value in sup_report.counters.items()
              if key in plain_report.counters}
    assert shared == plain_report.counters


def test_backoff_stream_never_drawn_without_faults():
    runner, _, _ = run_no_fault_campaign(RecoveryPolicy())
    streams = runner.cluster.streams
    drawn = streams.stream("recovery:backoff")._random.getstate()
    pristine = Stream(_derive_seed(streams.master_seed,
                                   "recovery:backoff"))._random.getstate()
    assert drawn == pristine


def test_supervised_runs_are_seed_reproducible():
    _, one, first = run_no_fault_campaign(RecoveryPolicy(), seed=23)
    _, two, second = run_no_fault_campaign(RecoveryPolicy(), seed=23)
    assert first == second
    assert one.counters == two.counters
    assert one.series == two.series
