"""Supervisor behavior: the three detectors, the restart executor's
guard rails (backoff, budget, flap quarantine), and rejuvenation."""

import pytest

from repro.core.fabric import FabricError
from repro.recovery import RecoveryPolicy
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record
from tests.recovery.conftest import boot_fabric


def boot_supervised(policy=None, workers=3, n_nodes=8, seed=7,
                    config=None):
    # reaping disabled: these tests watch the supervisor's restarts and
    # must not have the manager's idle-reap policy culling the workers
    fabric = make_fabric(n_nodes=n_nodes, seed=seed,
                         config=config or fast_config(
                             reap_after_s=100_000.0))
    fabric.start_manager()
    fabric.start_frontend()
    for _ in range(workers):
        fabric.spawn_worker("test-worker")
    supervisor = fabric.start_supervisor(policy)
    fabric.cluster.run(until=2.0)
    return fabric, supervisor


def drive_traffic(fabric, rate_rps, duration_s, timeout_s=10.0):
    env = fabric.cluster.env
    engine = PlaybackEngine(
        env, fabric.submit,
        rng=RandomStreams(fabric.cluster.streams.master_seed).stream(
            "test:playback"),
        timeout_s=timeout_s)
    env.process(engine.constant_rate(
        rate_rps, duration_s, [make_record(i) for i in range(10)]))
    return engine


def inject(supervisor, stub, kind):
    """Record the injection in the ledger, then flip the gray switch."""
    supervisor.ledger.inject(kind, stub.name)
    now = supervisor.env.now
    if kind == "hang":
        stub.gray.hang(now)
    elif kind == "zombie":
        stub.gray.zombify(now)
    elif kind == "fail-slow":
        stub.gray.fail_slow(6.0, now)
    elif kind == "corrupt-output":
        stub.gray.corrupt_output(now)
    else:
        raise AssertionError(kind)


def alive_on(fabric, node):
    return [stub for stub in fabric.alive_workers()
            if stub.node is node]


# -- detector 1: end-to-end probes -----------------------------------------------


def test_probe_detects_and_heals_hung_worker():
    fabric, supervisor = boot_supervised()
    victim = fabric.workers["test-worker.1"]
    inject(supervisor, victim, "hang")
    fabric.cluster.run(until=20.0)

    assert not victim.alive
    case = supervisor.ledger.cases[0]
    assert case.detector == "probe"
    assert case.healed, case
    assert case.mttd > 0
    assert case.replacement in fabric.manager.workers
    assert supervisor.restarts == 1
    assert supervisor.ledger.false_alarms == []


def test_probe_slow_ratio_catches_moderate_fail_slow():
    """x6 inflation keeps probe replies inside the 1s timeout; the
    relative-slowness check is what notices."""
    fabric, supervisor = boot_supervised()
    victim = fabric.workers["test-worker.1"]
    inject(supervisor, victim, "fail-slow")
    fabric.cluster.run(until=20.0)

    case = supervisor.ledger.cases[0]
    assert case.detector == "probe"
    assert "nominal" in case.detail
    assert case.healed, case
    assert not victim.alive


def test_corrupt_output_is_a_one_strike_probe_failure():
    fabric, supervisor = boot_supervised()
    victim = fabric.workers["test-worker.1"]
    inject(supervisor, victim, "corrupt-output")
    fabric.cluster.run(until=10.0)

    case = supervisor.ledger.cases[0]
    assert case.detector == "probe-validate"
    assert case.healed, case
    assert supervisor.suspicions == 1
    assert supervisor.restarts == 1


# -- detector 2: RPC-timeout reports ---------------------------------------------


def test_rpc_timeouts_trigger_restart_without_probes():
    policy = RecoveryPolicy(probe_interval_s=3600.0)
    fabric, supervisor = boot_supervised(policy)
    victim = fabric.workers["test-worker.1"]
    inject(supervisor, victim, "zombie")
    drive_traffic(fabric, rate_rps=10.0, duration_s=15.0)
    fabric.cluster.run(until=30.0)

    case = supervisor.ledger.cases[0]
    assert case.detector == "rpc-timeout"
    assert "dispatch timeouts" in case.detail
    assert case.healed, case
    assert not victim.alive


# -- detector 3: peer-relative load outliers -------------------------------------


def test_load_outlier_detection_spots_the_backed_up_queue():
    policy = RecoveryPolicy(probe_interval_s=3600.0,
                            rpc_timeout_confirmations=10_000)
    fabric, supervisor = boot_supervised(policy)
    victim = fabric.workers["test-worker.1"]
    inject(supervisor, victim, "hang")
    drive_traffic(fabric, rate_rps=12.0, duration_s=20.0)
    fabric.cluster.run(until=35.0)

    case = supervisor.ledger.cases[0]
    assert case.detector == "load-outlier"
    assert "median" in case.detail
    assert case.healed, case
    assert not victim.alive


# -- guard rails: backoff, flap quarantine, restart budget -----------------------


def test_repeated_restarts_back_off_then_quarantine_the_node():
    fabric, supervisor = boot_supervised()
    node = fabric.workers["test-worker.1"].node

    for _ in range(3):
        stub = alive_on(fabric, node)[0]
        inject(supervisor, stub, "corrupt-output")
        fabric.cluster.run(until=fabric.cluster.env.now + 10.0)

    # 2nd and 3rd restarts on the node waited out exponential backoff
    assert supervisor.backoff_waits == 2
    assert node.quarantined
    assert supervisor.quarantined_nodes == [node.name]
    assert any("quarantined" in alert.message
               for alert in supervisor.pages())
    # the final replacement had to land somewhere else
    assert alive_on(fabric, node) == []
    assert all(case.healed for case in supervisor.ledger.cases)
    # an operator reboot clears the quarantine
    node.restart()
    assert not node.quarantined


def test_quarantined_node_excluded_from_placement():
    fabric = boot_fabric(workers=1)
    free = fabric.cluster.free_node()
    free.quarantine()
    chosen = fabric._place(None)
    assert chosen is not free
    free.restart()


def test_restart_budget_exhaustion_pages_instead_of_healing():
    policy = RecoveryPolicy(restart_budget=2,
                            restart_budget_window_s=600.0,
                            flap_threshold=10, flap_window_s=0.5)
    fabric, supervisor = boot_supervised(policy, workers=4)

    for index in (1, 2, 3):
        stub = fabric.workers[f"test-worker.{index}"]
        inject(supervisor, stub, "corrupt-output")
        fabric.cluster.run(until=fabric.cluster.env.now + 8.0)

    assert supervisor.restarts == 2
    assert supervisor.budget_denials >= 1
    assert any("restart budget exhausted" in alert.message
               for alert in supervisor.pages())
    # the third victim is left alone (and still sick) for the operator
    third = fabric.workers["test-worker.3"]
    assert third.alive and third.gray.corrupt
    assert len(supervisor.ledger.detected) == 2


# -- rejuvenation -----------------------------------------------------------------


def test_rejuvenation_cycles_oldest_idle_workers():
    policy = RecoveryPolicy(rejuvenation_interval_s=5.0)
    fabric, supervisor = boot_supervised(policy)
    fabric.cluster.run(until=13.0)

    assert supervisor.rejuvenations == 2
    assert [target for _, target in supervisor.ledger.rejuvenations] == \
        ["test-worker.1", "test-worker.2"]
    # proactive restarts never open fault cases or false alarms
    assert supervisor.ledger.cases == []
    assert supervisor.ledger.false_alarms == []
    assert len(fabric.alive_workers()) == 3


# -- wiring and policy hygiene ----------------------------------------------------


def test_supervisor_shares_the_manager_node():
    fabric, supervisor = boot_supervised()
    assert supervisor.node is fabric.manager.node


def test_second_supervisor_rejected():
    fabric, supervisor = boot_supervised()
    with pytest.raises(FabricError):
        fabric.start_supervisor()


def test_new_frontends_get_the_rpc_timeout_hook():
    fabric, supervisor = boot_supervised()
    late = fabric.start_frontend()
    assert late.stub.on_worker_timeout == supervisor.note_rpc_timeout


@pytest.mark.parametrize("overrides", [
    dict(probe_interval_s=0.0),
    dict(probe_confirmations=0),
    dict(probe_slow_ratio=0.5),
    dict(outlier_min_peers=1),
    dict(restart_backoff_factor=0.5),
    dict(restart_backoff_jitter=2.0),
    dict(restart_budget=0),
    dict(flap_threshold=1),
    dict(rejuvenation_interval_s=-1.0),
    dict(heal_wait_periods=0),
])
def test_policy_validation_rejects_bad_knobs(overrides):
    with pytest.raises(ValueError):
        RecoveryPolicy(**overrides).validate()
