"""Shared assembly helpers for the recovery-layer tests."""

from repro.core.messages import WorkEnvelope
from repro.tacc.content import Content
from repro.tacc.worker import TACCRequest

from tests.core.conftest import TestWorker, fast_config, make_fabric


def boot_fabric(workers=3, n_nodes=8, seed=7, config=None):
    """Manager + one front end + ``workers`` test workers, settled."""
    fabric = make_fabric(n_nodes=n_nodes, seed=seed,
                         config=config or fast_config())
    fabric.start_manager()
    fabric.start_frontend()
    for _ in range(workers):
        fabric.spawn_worker("test-worker")
    fabric.cluster.run(until=2.0)
    return fabric


def make_envelope(fabric, request_id=1, size=2048):
    """One hand-crafted request for driving a worker stub directly."""
    content = Content(f"http://t/img{request_id}.jpg", "image/jpeg",
                      b"x" * size)
    request = TACCRequest(inputs=[content], params={}, user_id="client0")
    return WorkEnvelope(
        request_id=request_id,
        tacc_request=request,
        reply=fabric.cluster.env.event(),
        submitted_at=fabric.cluster.env.now,
        input_bytes=content.size,
        expected_cost_s=TestWorker.cost_s,
    )
