"""Accounting tests for the recovery ledger (MTTD/MTTR/availability)."""

import pytest

from repro.recovery import FaultCase, RecoveryLedger
from repro.sim.kernel import Environment


def make_env():
    return Environment()


def advance(env, until):
    def waiter():
        yield env.timeout(until - env.now)
    env.process(waiter())
    env.run(until=until)


def test_case_lifecycle_and_latencies():
    env = make_env()
    ledger = RecoveryLedger(env)
    advance(env, 10.0)
    case = ledger.inject("hang", "w.1")
    assert not case.detected and not case.healed
    assert case.mttd is None and case.mttr is None

    advance(env, 13.0)
    stamped = ledger.note_detected("w.1", "probe", "never answered")
    assert stamped is case
    assert case.mttd == pytest.approx(3.0)

    advance(env, 14.5)
    ledger.note_healed(case, "restart", replacement="w.2")
    assert case.mttr == pytest.approx(1.5)
    assert case.heal_action == "restart"
    assert ledger.healed == [case] and ledger.unhealed == []


def test_detection_matches_oldest_undetected_case():
    env = make_env()
    ledger = RecoveryLedger(env)
    first = ledger.inject("fail-slow", "w.1")
    second = ledger.inject("leak", "w.1")
    ledger.note_detected("w.1", "probe")
    assert first.detected and not second.detected


def test_unmatched_detection_is_a_false_alarm():
    env = make_env()
    ledger = RecoveryLedger(env)
    assert ledger.note_detected("healthy.worker", "probe") is None
    assert len(ledger.false_alarms) == 1
    assert ledger.summary(10.0, population=1)["false_alarms"] == 1


def test_outage_clamps_to_run_end_when_unhealed():
    env = make_env()
    ledger = RecoveryLedger(env)
    advance(env, 10.0)
    case = ledger.inject("zombie", "w.1")
    # never healed: outage runs to the end of the window
    assert case.outage_s(90.0) == pytest.approx(80.0)
    advance(env, 25.0)
    ledger.note_healed(case, "restart")
    assert case.outage_s(90.0) == pytest.approx(15.0)


def test_summary_availability_denominator_uses_population():
    env = make_env()
    ledger = RecoveryLedger(env)
    advance(env, 10.0)
    case = ledger.inject("hang", "w.1")
    advance(env, 19.0)
    ledger.note_detected("w.1", "probe")
    ledger.note_healed(case, "restart")
    summary = ledger.summary(90.0, population=3)
    # 9s of one worker out of three over a 90s run
    assert summary["availability"] == pytest.approx(1.0 - 9.0 / 270.0)
    assert summary["injected"] == 1
    assert summary["healed"] == 1
    assert summary["mttd_mean"] == pytest.approx(9.0)
    assert summary["mttr_mean"] == pytest.approx(0.0)


def test_render_marks_undetected_cases():
    env = make_env()
    ledger = RecoveryLedger(env)
    ledger.inject("zombie", "w.1")
    case = ledger.inject("hang", "w.2")
    ledger.note_detected("w.2", "rpc-timeout")
    ledger.note_healed(case, "restart", replacement="w.3")
    lines = ledger.render()
    assert len(lines) == 2
    assert "NOT DETECTED" in lines[0]
    assert "rpc-timeout" in lines[1] and "w.3" in lines[1]
    assert "NOT healed" in repr(ledger.cases[0]) or \
        "NOT detected" in repr(ledger.cases[0])
