"""Tests for multicast groups and reliable channels."""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.kernel import Environment
from repro.sim.multicast import MulticastBus, MulticastGroup
from repro.sim.network import Network
from repro.sim.rng import RandomStreams
from repro.sim.transport import Channel, ChannelClosed, endpoints


def make_group(bandwidth=1e9):
    env = Environment()
    network = Network(env, bandwidth_bps=bandwidth)
    rng = RandomStreams(1).stream("mcast")
    return env, network, MulticastGroup(env, network, "beacons", rng)


# -- multicast ---------------------------------------------------------------

def test_publish_reaches_all_subscribers():
    env, network, group = make_group()
    alpha = group.subscribe("alpha")
    beta = group.subscribe("beta")
    group.publish({"kind": "beacon"})

    def drain(env, sub):
        message = yield sub.get()
        return message

    got_a = env.process(drain(env, alpha))
    got_b = env.process(drain(env, beta))
    env.run()
    assert got_a.value == {"kind": "beacon"}
    assert got_b.value == {"kind": "beacon"}
    assert group.delivered == 2


def test_publish_without_subscribers_is_noop():
    env, network, group = make_group()
    group.publish("nobody home")
    env.run()
    assert group.delivered == 0


def test_cancelled_subscription_stops_delivery():
    env, network, group = make_group()
    sub = group.subscribe("quitter")
    sub.cancel()
    group.publish("late")
    env.run()
    assert group.delivered == 0


def test_saturated_san_drops_datagrams():
    env, network, group = make_group(bandwidth=1000.0)
    sub = group.subscribe("listener")
    delivered_count = []

    def hammer(env):
        # Saturate the SAN with data traffic, then beacon repeatedly.
        for _ in range(200):
            network.san.reserve(300)
            group.publish("beacon", size_bytes=50)
            yield env.timeout(0.05)

    env.process(hammer(env))
    env.run()
    assert group.dropped > 0
    assert group.loss_rate > 0.3


def test_idle_san_drops_nothing():
    env, network, group = make_group()
    sub = group.subscribe("listener")

    def beacons(env):
        for _ in range(100):
            group.publish("beacon", size_bytes=50)
            yield env.timeout(0.5)

    env.process(beacons(env))
    env.run()
    assert group.dropped == 0
    assert group.delivered == 100


def test_mailbox_overflow_counts_as_drop():
    env = Environment()
    network = Network(env, bandwidth_bps=1e9)
    rng = RandomStreams(1).stream("m")
    group = MulticastGroup(env, network, "g", rng, mailbox_capacity=2)
    group.subscribe("slow")  # never drains
    for _ in range(5):
        group.publish("x")
    env.run()
    assert group.delivered == 2
    assert group.dropped == 3


def test_bus_caches_groups():
    cluster = Cluster()
    bus = cluster.multicast
    assert bus.group("beacons") is bus.group("beacons")
    assert bus.group("beacons") is not bus.group("monitor")


# -- transport ------------------------------------------------------------------

def test_channel_round_trip():
    env = Environment()
    network = Network(env, bandwidth_bps=1e9)
    fe, mgr = endpoints(env, network, "fe0", "manager")
    log = []

    def manager(env):
        message = yield mgr.recv()
        log.append(message)
        mgr.send({"reply-to": message["id"]})

    def frontend(env):
        fe.send({"id": 7, "kind": "request"})
        reply = yield fe.recv()
        log.append(reply)

    env.process(manager(env))
    env.process(frontend(env))
    env.run()
    assert log == [{"id": 7, "kind": "request"}, {"reply-to": 7}]


def test_channel_messages_fifo():
    env = Environment()
    network = Network(env, bandwidth_bps=1e9)
    a, b = endpoints(env, network, "a", "b")
    got = []

    def receiver(env):
        for _ in range(3):
            got.append((yield b.recv()))

    def sender(env):
        for item in (1, 2, 3):
            a.send(item)
        yield env.timeout(0)

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert got == [1, 2, 3]


def test_close_fails_pending_recv():
    env = Environment()
    network = Network(env, bandwidth_bps=1e9)
    a, b = endpoints(env, network, "a", "b")
    outcome = []

    def receiver(env):
        try:
            yield b.recv()
        except ChannelClosed:
            outcome.append(("closed-at", env.now))

    def closer(env):
        yield env.timeout(3.0)
        a.channel.close()

    env.process(receiver(env))
    env.process(closer(env))
    env.run()
    assert outcome == [("closed-at", 3.0)]


def test_send_on_closed_channel_raises():
    env = Environment()
    network = Network(env, bandwidth_bps=1e9)
    a, b = endpoints(env, network, "a", "b")
    a.channel.close()
    with pytest.raises(ChannelClosed):
        a.send("too late")


def test_delivered_messages_drain_before_close_error():
    env = Environment()
    network = Network(env, bandwidth_bps=1e9)
    a, b = endpoints(env, network, "a", "b")
    got = []

    def scenario(env):
        a.send("last words")
        yield env.timeout(1.0)  # let it arrive
        a.channel.close()
        got.append((yield b.recv()))
        try:
            yield b.recv()
        except ChannelClosed:
            got.append("closed")

    env.process(scenario(env))
    env.run()
    assert got == ["last words", "closed"]


def test_in_flight_message_lost_on_close():
    env = Environment()
    network = Network(env, bandwidth_bps=100.0, latency_s=1.0)
    a, b = endpoints(env, network, "a", "b")
    got = []

    def scenario(env):
        a.send("doomed", size_bytes=100)  # ~2 s in flight
        a.channel.close()
        try:
            yield b.recv()
        except ChannelClosed:
            got.append("closed")

    env.process(scenario(env))
    env.run()
    assert got == ["closed"]


def test_connect_pays_setup_cost():
    env = Environment()
    network = Network(env, bandwidth_bps=1e9)

    def proc(env):
        channel = yield from Channel.connect(env, network, "a", "b")
        return (env.now, channel.open)

    when, is_open = env.run(until=env.process(proc(env)))
    assert when == pytest.approx(0.015)
    assert is_open


# -- cluster -------------------------------------------------------------------

def test_cluster_free_node_prefers_dedicated():
    cluster = Cluster()
    cluster.add_nodes(2, prefix="ded")
    cluster.add_nodes(2, prefix="ovf", overflow=True)
    cluster.node("ded0").attach("fe")
    free = cluster.free_node()
    assert free is cluster.node("ded1")
    cluster.node("ded1").attach("w")
    assert cluster.free_node() is None
    assert cluster.free_node(include_overflow=True).overflow


def test_cluster_duplicate_node_rejected():
    cluster = Cluster()
    cluster.add_node("n0")
    with pytest.raises(Exception):
        cluster.add_node("n0")


def test_cluster_least_loaded_node():
    cluster = Cluster()
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    a.attach("x")
    a.attach("y")
    b.attach("z")
    assert cluster.least_loaded_node() is b


def test_cluster_deterministic_given_seed():
    def run(seed):
        cluster = Cluster(seed=seed)
        stream = cluster.streams.stream("s")
        return [stream.random() for _ in range(5)]

    assert run(10) == run(10)
    assert run(10) != run(11)
