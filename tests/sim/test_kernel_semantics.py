"""Kernel edge-semantics regression tests.

Pins the behaviours the fast-path rewrite must preserve — and the three
event-semantics bugs it fixed: ``run(until=...)`` on an already-failed
processed event, stale queue getters surviving interrupts, and
``Timeout`` reporting ``triggered`` before its delay elapsed.
"""

import pytest

from repro.sim.kernel import (
    Environment,
    Interrupt,
    SimulationError,
)


# -- run(until=event) on a failed event ------------------------------------


def _run_to_failure(env):
    """Create, fail, and fully process a process event; return it."""

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("exploded")

    proc = env.process(bad(env))

    def watcher(env):
        try:
            yield proc
        except ValueError:
            pass

    env.process(watcher(env))
    env.run()
    assert proc.processed and not proc.ok
    return proc


def test_run_until_already_failed_event_raises():
    """A processed *failed* event must raise from run(), not be returned
    as if the exception object were a value (mirrors the StopSimulation
    path's _ok check)."""
    env = Environment()
    proc = _run_to_failure(env)
    with pytest.raises(ValueError, match="exploded"):
        env.run(until=proc)


def test_run_until_already_succeeded_event_returns_value():
    env = Environment()

    def good(env):
        yield env.timeout(1.0)
        return "fine"

    proc = env.process(good(env))
    env.run()
    assert env.run(until=proc) == "fine"


# -- stale getters pruned on interrupt -------------------------------------


def test_interrupted_getter_pruned_from_queue():
    env = Environment()
    queue = env.queue()

    def victim(env):
        try:
            yield queue.get()
        except Interrupt:
            pass

    proc = env.process(victim(env))

    def killer(env):
        yield env.timeout(1.0)
        proc.interrupt()

    env.process(killer(env))
    env.run()
    assert len(queue._getters) == 0


def test_getters_bounded_under_interrupt_heavy_campaign():
    """A chaos kill loop that repeatedly interrupts blocked consumers
    must not grow ``_getters`` without bound (no put ever arrives to
    lazily skip the stale entries)."""
    env = Environment()
    queue = env.queue()
    rounds = 200

    def victim(env):
        try:
            yield queue.get()
        except Interrupt:
            pass

    def kill_loop(env):
        for _ in range(rounds):
            proc = env.process(victim(env))
            yield env.timeout(1.0)
            proc.interrupt()
            yield env.timeout(1.0)

    env.process(kill_loop(env))
    env.run()
    assert len(queue._getters) <= 1

    # the queue still works after the campaign
    received = []

    def survivor(env):
        item = yield queue.get()
        received.append(item)

    env.process(survivor(env))
    queue.put_nowait("alive")
    env.run()
    assert received == ["alive"]


# -- Timeout pending/triggered distinction ---------------------------------


def test_timeout_is_pending_until_delay_elapses():
    env = Environment()
    timeout = env.timeout(5.0, value="payload")
    assert not timeout.triggered
    assert not timeout.processed
    with pytest.raises(SimulationError):
        _ = timeout.value  # not readable before the clock reaches it
    env.run(until=timeout)
    assert env.now == 5.0
    assert timeout.triggered
    assert timeout.processed
    assert timeout.value == "payload"


def test_timeout_cannot_be_triggered_manually():
    env = Environment()
    timeout = env.timeout(5.0)
    with pytest.raises(SimulationError):
        timeout.succeed("nope")
    with pytest.raises(SimulationError):
        timeout.fail(RuntimeError("nope"))
    # the manual attempts must not have corrupted the schedule
    fired = []

    def waiter(env):
        value = yield timeout
        fired.append((env.now, value))

    env.process(waiter(env))
    env.run()
    assert fired == [(5.0, None)]


def test_timeout_fix_preserves_scheduling_order():
    env = Environment()
    order = []

    def proc(env, tag, delay):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, "b", 2.0))
    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "a2", 1.0))
    env.run()
    assert order == ["a", "a2", "b"]


# -- URGENT vs NORMAL at the same timestamp --------------------------------


def test_urgent_interrupt_beats_earlier_normal_event():
    """An interrupt (URGENT) scheduled *after* a normal event at the
    same timestamp is still delivered first: priority outranks
    scheduling sequence within a timestamp."""
    env = Environment()
    log = []
    gate = env.event()

    def normal_waiter(env):
        yield gate
        log.append("normal")

    def sleeper(env):
        try:
            yield env.timeout(10.0)
        except Interrupt:
            log.append("interrupt")

    env.process(normal_waiter(env))
    sleeping = env.process(sleeper(env))

    def scenario(env):
        yield env.timeout(5.0)
        gate.succeed()        # NORMAL at t=5, scheduled first
        sleeping.interrupt()  # URGENT at t=5, scheduled second


    env.process(scenario(env))
    env.run()
    assert log == ["interrupt", "normal"]


# -- all_of with duplicate events ------------------------------------------


def test_all_of_with_duplicate_events_fires_once():
    env = Environment()

    def proc(env):
        timeout = env.timeout(1.0, value="x")
        result = yield env.all_of([timeout, timeout])
        return timeout, result

    timeout, result = env.run(until=env.process(proc(env)))
    assert env.now == 1.0
    assert result == {timeout: "x"}


# -- interrupt racing a queue hand-off -------------------------------------


def test_interrupt_racing_queue_handoff_loses_item_but_not_the_sim():
    """A put hands the item to a blocked getter; before the getter's
    process resumes, it is interrupted (URGENT beats the NORMAL
    hand-off).  The item is lost with the victim — SIGKILL semantics,
    the sender's timeout is the detector — and the simulation must
    neither crash nor resume the victim with the item."""
    env = Environment()
    queue = env.queue()
    log = []

    def victim(env):
        try:
            item = yield queue.get()
            log.append(("victim got", item))
        except Interrupt:
            log.append("interrupted")

    proc = env.process(victim(env))

    def scenario(env):
        yield env.timeout(1.0)
        queue.put_nowait("the-item")  # hand-off scheduled (NORMAL)
        proc.interrupt()              # interrupt scheduled (URGENT)

    env.process(scenario(env))
    env.run()
    assert log == ["interrupted"]
    assert queue.length == 0  # the in-flight hand-off died with the victim
    assert len(queue._getters) == 0
