"""Tests for seeded random streams."""

import math

import pytest

from repro.sim.rng import RandomStreams, Stream


def test_same_seed_same_sequence():
    a = RandomStreams(42).stream("workload")
    b = RandomStreams(42).stream("workload")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_names_independent():
    streams = RandomStreams(42)
    first = [streams.stream("one").random() for _ in range(10)]
    second = [streams.stream("two").random() for _ in range(10)]
    assert first != second


def test_stream_is_cached_per_name():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")
    assert streams["x"] is streams.stream("x")


def test_adding_stream_does_not_perturb_existing():
    """Draw order in one stream must be independent of other streams."""
    lone = RandomStreams(42)
    seq_alone = [lone.stream("target").random() for _ in range(10)]

    busy = RandomStreams(42)
    busy.stream("noise").random()
    seq_with_noise = [busy.stream("target").random() for _ in range(10)]
    assert seq_alone == seq_with_noise


def test_fork_derives_independent_factory():
    streams = RandomStreams(42)
    fork_a = streams.fork("run-a")
    fork_b = streams.fork("run-b")
    assert fork_a.stream("s").random() != fork_b.stream("s").random()
    # forks are themselves deterministic
    again = RandomStreams(42).fork("run-a")
    assert again.stream("s").random() == \
        RandomStreams(42).fork("run-a").stream("s").random()


def test_exponential_mean_roughly_correct():
    stream = RandomStreams(1).stream("exp")
    n = 20000
    mean = sum(stream.exponential(5.0) for _ in range(n)) / n
    assert mean == pytest.approx(5.0, rel=0.1)


def test_exponential_rejects_nonpositive_mean():
    stream = RandomStreams(1).stream("exp")
    with pytest.raises(ValueError):
        stream.exponential(0.0)


def test_lognormal_mean_targets_arithmetic_mean():
    stream = RandomStreams(1).stream("ln")
    n = 50000
    target = 3428.0  # the paper's mean GIF size
    mean = sum(stream.lognormal_mean(target, 1.2) for _ in range(n)) / n
    assert mean == pytest.approx(target, rel=0.1)


def test_pareto_bounded_below():
    stream = RandomStreams(1).stream("pareto")
    values = [stream.pareto(1.5, 0.1) for _ in range(1000)]
    assert min(values) >= 0.1


def test_zipf_rank_in_range_and_skewed():
    stream = RandomStreams(1).stream("zipf")
    n = 1000
    ranks = [stream.zipf_rank(n) for _ in range(20000)]
    assert all(0 <= r < n for r in ranks)
    # rank 0 must be much more popular than median ranks
    head = sum(1 for r in ranks if r < 10)
    tail = sum(1 for r in ranks if 490 <= r < 510)
    assert head > 5 * max(tail, 1)


def test_weighted_choice_respects_weights():
    stream = RandomStreams(1).stream("lottery")
    picks = [
        stream.weighted_choice(["a", "b"], [9.0, 1.0]) for _ in range(10000)
    ]
    share_a = picks.count("a") / len(picks)
    assert share_a == pytest.approx(0.9, abs=0.03)


def test_weighted_choice_validates_inputs():
    stream = RandomStreams(1).stream("lottery")
    with pytest.raises(ValueError):
        stream.weighted_choice(["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        stream.weighted_choice(["a", "b"], [0.0, 0.0])
