"""Tests for fault injection."""

import pytest

from repro.sim.failures import FaultInjector
from repro.sim.kernel import Environment, Interrupt
from repro.sim.node import Node
from repro.sim.rng import RandomStreams


class KillableStub:
    """Minimal object satisfying the killable protocol."""

    def __init__(self, env, name):
        self.env = env
        self.name = name
        self.killed_at = None
        self.process = env.process(self._loop())

    def _loop(self):
        try:
            while True:
                yield self.env.timeout(1.0)
        except Interrupt:
            pass

    def kill(self):
        self.killed_at = self.env.now
        if self.process.is_alive:
            self.process.interrupt("killed")


def test_kill_at_fires_at_requested_time():
    env = Environment()
    injector = FaultInjector(env)
    target = KillableStub(env, "distiller-1")
    injector.kill_at(42.0, target)
    env.run(until=100.0)
    assert target.killed_at == 42.0
    assert len(injector.log) == 1
    assert injector.log[0].kind == "kill"
    assert injector.log[0].target == "distiller-1"


def test_kill_in_the_past_rejected():
    env = Environment()
    injector = FaultInjector(env)
    target = KillableStub(env, "t")
    injector.kill_at(5.0, target)

    def late(env):
        yield env.timeout(10.0)
        injector.kill_at(7.0, KillableStub(env, "other"))

    env.process(late(env))
    with pytest.raises(ValueError):
        env.run(until=20.0)


def test_past_time_rejected_at_schedule_time():
    """Validation happens in the scheduling call itself — synchronously,
    where the caller can catch it — not later inside the spawned
    process."""
    env = Environment()
    injector = FaultInjector(env)
    env.run(until=10.0)
    with pytest.raises(ValueError):
        injector.kill_at(7.0, KillableStub(env, "k"))
    with pytest.raises(ValueError):
        injector.crash_node_at(3.0, Node(env, "n"))
    with pytest.raises(ValueError):
        injector.partition_at(9.9, KillableStub(env, "p"), 5.0)
    # nothing was scheduled: the clock can keep running cleanly
    env.run(until=20.0)
    assert injector.log == []


def test_degrade_node_slows_then_heals():
    env = Environment()
    injector = FaultInjector(env)
    node = Node(env, "n0")
    injector.degrade_node_at(5.0, node, factor=0.25, duration_s=10.0)
    env.run(until=6.0)
    assert node.is_straggling
    assert node.speed == pytest.approx(0.25 * node.base_speed)
    env.run(until=20.0)
    assert not node.is_straggling
    assert node.speed == node.base_speed
    assert [r.kind for r in injector.log] == ["straggle",
                                              "straggle-heal"]


def test_degrade_factor_validated():
    env = Environment()
    injector = FaultInjector(env)
    node = Node(env, "n0")
    for bad in (0.0, -0.5, 1.5):
        with pytest.raises(ValueError):
            injector.degrade_node_at(1.0, node, factor=bad)


def test_rolling_kills_round_robin():
    env = Environment()
    injector = FaultInjector(env)
    population = [KillableStub(env, f"w{i}") for i in range(10)]

    def provider():
        return [t for t in population if t.killed_at is None]

    injector.rolling_kills(provider, start=10.0, period_s=5.0,
                           stop_at=31.0)
    env.run(until=60.0)
    killed = [t.name for t in population if t.killed_at is not None]
    # kills at 15, 20, 25, 30 — deterministic, no RNG involved
    assert len(killed) == 4
    assert injector.rng is None


def test_rolling_kills_validates_period():
    env = Environment()
    injector = FaultInjector(env)
    with pytest.raises(ValueError):
        injector.rolling_kills(lambda: [], start=0.0, period_s=0.0,
                               stop_at=10.0)


def test_crash_node_kills_components_and_restarts():
    env = Environment()
    injector = FaultInjector(env)
    node = Node(env, "n0")
    hosted = KillableStub(env, "worker-on-n0")
    injector.crash_node_at(10.0, node, components=[hosted],
                           restart_after=5.0)
    env.run(until=12.0)
    assert not node.up
    assert hosted.killed_at == 10.0
    env.run(until=20.0)
    assert node.up
    kinds = [record.kind for record in injector.log]
    assert kinds == ["node-crash", "kill", "node-restart"]


def test_random_kills_hit_live_targets_only():
    env = Environment()
    rng = RandomStreams(3).stream("faults")
    injector = FaultInjector(env, rng)
    population = [KillableStub(env, f"w{i}") for i in range(5)]

    def provider():
        return [t for t in population if t.killed_at is None]

    injector.random_kills(provider, mtbf_s=10.0, stop_at=200.0)
    env.run(until=200.0)
    killed = [t for t in population if t.killed_at is not None]
    assert killed  # with mtbf 10 s over 200 s some faults land
    # no double kills
    assert len(injector.log) == len(killed)


def test_random_kills_require_rng():
    env = Environment()
    injector = FaultInjector(env)
    with pytest.raises(ValueError):
        injector.random_kills(lambda: [], mtbf_s=1.0, stop_at=10.0)


def test_faults_before_filters_by_time():
    env = Environment()
    injector = FaultInjector(env)
    first = KillableStub(env, "a")
    second = KillableStub(env, "b")
    injector.kill_at(5.0, first)
    injector.kill_at(15.0, second)
    env.run(until=20.0)
    assert [r.target for r in injector.faults_before(10.0)] == ["a"]
    assert [r.target for r in injector.faults_before(20.0)] == ["a", "b"]
