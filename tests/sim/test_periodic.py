"""Coalesced periodic timers (Environment.periodic).

The facility replaces per-component ``while True: yield timeout(T)``
maintenance loops with shared buckets — one heap entry per (period,
phase) per interval, no matter how many callbacks ride it.  These
tests pin the contract the conversion relies on: cadence, registration
order within a tick, equivalence with process loops, cancel/defer
semantics, and bucket sharing/death.
"""

import pytest

from repro.sim.kernel import Environment


def test_periodic_fires_on_cadence():
    env = Environment()
    times = []
    env.periodic(10.0, lambda: times.append(env.now))
    env.run(until=35.0)
    assert times == [10.0, 20.0, 30.0]


def test_first_delay_zero_fires_immediately_then_on_period():
    env = Environment()
    times = []
    env.periodic(5.0, lambda: times.append(env.now), first_delay=0)
    env.run(until=12.0)
    assert times == [0.0, 5.0, 10.0]


def test_explicit_first_delay_sets_phase():
    env = Environment()
    times = []
    env.periodic(10.0, lambda: times.append(env.now), first_delay=3.0)
    env.run(until=25.0)
    assert times == [3.0, 13.0, 23.0]


def test_matches_process_loop_cadence():
    """A periodic callback sees the exact tick times a sleep-first
    process loop would, including float accumulation (now + period
    each tick, not k * period)."""
    period = 0.3  # not exactly representable: accumulation matters

    env_a = Environment()
    loop_times = []

    def loop(env):
        while True:
            yield env.timeout(period)
            loop_times.append(env.now)

    env_a.process(loop(env_a))
    env_a.run(until=10.0)

    env_b = Environment()
    timer_times = []
    env_b.periodic(period, lambda: timer_times.append(env_b.now))
    env_b.run(until=10.0)

    assert timer_times == loop_times


def test_same_phase_callbacks_share_one_bucket():
    env = Environment()
    order = []
    env.periodic(10.0, lambda: order.append("a"))
    env.periodic(10.0, lambda: order.append("b"))
    env.periodic(10.0, lambda: order.append("c"))
    assert len(env._periodic) == 1  # one bucket, one heap entry
    env.run(until=25.0)
    # registration order within each tick
    assert order == ["a", "b", "c", "a", "b", "c"]


def test_different_phases_get_separate_buckets():
    env = Environment()
    fired = []
    env.periodic(10.0, lambda: fired.append(("early", env.now)),
                 first_delay=2.0)
    env.periodic(10.0, lambda: fired.append(("late", env.now)))
    assert len(env._periodic) == 2
    env.run(until=15.0)
    assert fired == [("early", 2.0), ("late", 10.0), ("early", 12.0)]


def test_body_first_joins_steady_bucket_ahead_of_sleep_first():
    """A body-first registration (first_delay=0) fires once at now and
    then shares the now+period bucket with a sleep-first registration
    made right after it — body-first first, the order the old process
    loops produced."""
    env = Environment()
    order = []
    env.periodic(5.0, lambda: order.append(("beacon", env.now)),
                 first_delay=0)
    env.periodic(5.0, lambda: order.append(("policy", env.now)))
    assert len(env._periodic) == 1
    env.run(until=11.0)
    assert order == [("beacon", 0.0),
                     ("beacon", 5.0), ("policy", 5.0),
                     ("beacon", 10.0), ("policy", 10.0)]


def test_cancel_stops_future_ticks():
    env = Environment()
    times = []
    handle = env.periodic(1.0, lambda: times.append(env.now))
    env.run(until=3.5)
    assert handle.active
    handle.cancel()
    assert not handle.active
    env.run(until=10.0)
    assert times == [1.0, 2.0, 3.0]


def test_cancel_from_inside_callback():
    env = Environment()
    times = []
    handle = None

    def tick():
        times.append(env.now)
        if len(times) == 2:
            handle.cancel()

    handle = env.periodic(1.0, tick)
    env.run(until=10.0)
    assert times == [1.0, 2.0]


def test_bucket_dies_when_all_handles_cancelled():
    env = Environment()
    a = env.periodic(1.0, lambda: None)
    b = env.periodic(1.0, lambda: None)
    a.cancel()
    b.cancel()
    env.run(until=5.0)
    assert env._periodic == {}
    assert env.peek() == float("inf")  # no zombie re-arms


def test_cancel_one_member_keeps_the_rest():
    env = Environment()
    order = []
    a = env.periodic(1.0, lambda: order.append("a"))
    env.periodic(1.0, lambda: order.append("b"))
    env.run(until=1.5)
    a.cancel()
    env.run(until=3.5)
    assert order == ["a", "b", "b", "b"]


def test_defer_skips_ticks_inside_window():
    """defer(d) suppresses ticks at times <= now + d; the cadence
    (phase) itself is untouched — the watchdog-restart pattern."""
    env = Environment()
    times = []
    handle = env.periodic(1.0, lambda: times.append(env.now))
    env.run(until=2.5)
    assert times == [1.0, 2.0]
    handle.defer(3.0)  # skip ticks at t <= 5.5: that is t=3, 4, 5
    env.run(until=8.5)
    assert times == [1.0, 2.0, 6.0, 7.0, 8.0]


def test_defer_matches_process_loop_restart_pattern():
    """The converted watchdog sleeps out tolerance = k * interval after
    acting; defer gives the identical next-check time when tolerance is
    a whole number of intervals."""
    interval, tolerance = 2.0, 6.0  # tolerance = 3 intervals
    trigger_at = 8.0

    def run_loop():
        env = Environment()
        checks = []

        def loop():
            while True:
                yield env.timeout(interval)
                checks.append(env.now)
                if env.now == trigger_at:
                    yield env.timeout(tolerance)

        env.process(loop())
        env.run(until=20.0)
        return checks

    env = Environment()
    timer_checks = []
    handle = None

    def check():
        timer_checks.append(env.now)
        if env.now == trigger_at:
            handle.defer(tolerance)

    handle = env.periodic(interval, check)
    env.run(until=20.0)
    assert timer_checks == run_loop()


def test_invalid_arguments():
    env = Environment()
    with pytest.raises(ValueError):
        env.periodic(0.0, lambda: None)
    with pytest.raises(ValueError):
        env.periodic(-1.0, lambda: None)
    with pytest.raises(ValueError):
        env.periodic(1.0, lambda: None, first_delay=-0.5)
    handle = env.periodic(1.0, lambda: None)
    with pytest.raises(ValueError):
        handle.defer(-1.0)


def test_registration_mid_run_phases_from_now():
    env = Environment()
    times = []
    env.run(until=7.0)
    env.periodic(10.0, lambda: times.append(env.now))
    env.run(until=30.0)
    assert times == [17.0, 27.0]


def test_callbacks_may_register_new_periodics():
    env = Environment()
    seen = []

    def parent():
        seen.append(("parent", env.now))
        if len(seen) == 1:
            env.periodic(1.0, lambda: seen.append(("child", env.now)))

    env.periodic(2.0, parent)
    env.run(until=4.5)
    assert seen == [("parent", 2.0), ("child", 3.0),
                    ("parent", 4.0), ("child", 4.0)]
