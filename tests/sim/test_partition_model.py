"""The declarative SAN-partition model (splits, one-way cuts, heal).

The paper's testbed treated the SAN as a perfect fabric; these tests
pin down the semantics of the fault class it never modelled: group
splits (symmetric), asymmetric one-way cuts, timed windows with
absolute heal times, instant heal-all, and how the message and
placement layers consult the model.
"""

from repro.sim.cluster import Cluster
from repro.sim.kernel import Environment
from repro.sim.network import Network, PartitionState


def test_split_blocks_across_groups_only():
    env = Environment()
    state = PartitionState(env)
    state.split({"node0": "a", "node1": "a", "node2": "b"})
    # within a group: fine; across groups: blocked both ways
    assert state.node_reachable("node0", "node1")
    assert not state.node_reachable("node0", "node2")
    assert not state.node_reachable("node2", "node0")
    # nodes absent from the map form the implicit default group
    assert state.node_reachable("node5", "node6")
    assert not state.node_reachable("node5", "node0")
    # local delivery never crosses the SAN
    assert state.node_reachable("node2", "node2")
    assert state.active()


def test_one_way_cut_is_asymmetric():
    env = Environment()
    state = PartitionState(env)
    state.one_way("node0", "node1")
    assert not state.node_reachable("node0", "node1")
    assert state.node_reachable("node1", "node0")  # reverse stays up


def test_windows_expire_at_their_declared_end():
    env = Environment()
    state = PartitionState(env)
    state.split({"node0": "x"}, duration_s=5.0)
    state.one_way("node1", "node2", duration_s=8.0)
    assert state.final_heal_time() == 8.0

    def probe():
        yield env.timeout(4.0)
        assert not state.node_reachable("node0", "node1")
        yield env.timeout(2.0)  # t=6: split healed, cut still active
        assert state.node_reachable("node0", "node1")
        assert not state.node_reachable("node1", "node2")
        yield env.timeout(3.0)  # t=9: everything healed
        assert state.node_reachable("node1", "node2")
        assert not state.active()

    env.process(probe())
    env.run(until=10.0)


def test_heal_ends_every_open_window_now():
    env = Environment()
    state = PartitionState(env)
    state.split({"node0": "x"})  # open-ended
    state.one_way("node1", "node2")
    assert state.final_heal_time() == float("inf")
    state.heal()
    assert state.node_reachable("node0", "node1")
    assert state.node_reachable("node1", "node2")
    assert not state.active()
    assert state.final_heal_time() == 0.0


def test_resolver_maps_components_and_unknowns_pass():
    env = Environment()
    homes = {"alice": "node0", "bob": "node1"}
    state = PartitionState(env, homes.get)
    state.split({"node1": "x"})
    assert not state.reachable("alice", "bob")
    assert state.reachable("alice", "alice")
    # unresolvable components are treated as reachable, not blocked
    assert state.reachable("alice", "stranger")


def test_install_partitions_is_idempotent_and_lazy():
    env = Environment()
    network = Network(env)
    assert network.partitions is None  # fault-free runs pay nothing
    state = network.install_partitions()
    assert network.install_partitions() is state
    resolver = {"c": "node0"}.get
    assert network.install_partitions(resolver) is state
    assert state._resolver is resolver  # late resolver still lands


def test_multicast_publish_counts_partitioned_subscribers():
    cluster = Cluster(seed=3)
    cluster.add_nodes(2)
    homes = {"alice": "node0", "bob": "node1", "carol": "node0"}
    state = cluster.network.install_partitions(homes.get)
    group = cluster.multicast.group("g")
    bob = group.subscribe("bob")
    carol = group.subscribe("carol")
    state.split({"node1": "cut"})
    group.publish("hello", sender="alice")
    cluster.run(until=0.5)
    assert group.partition_dropped == 1
    assert state.multicast_blocked == 1
    assert carol.queue.length == 1  # same-group subscriber delivered
    assert bob.queue.length == 0


def test_placement_excludes_quarantined_and_partitioned_nodes():
    """Satellite of the consensus work: spawn placement must never pick
    a node the placer cannot talk to (either direction) or one pulled
    from rotation by flap quarantine."""
    cluster = Cluster(seed=3)
    cluster.add_nodes(4)
    state = cluster.install_partitions()
    cluster.nodes["node1"].quarantine()
    state.split({"node2": "isolated"})
    # node3 answers, but the placer's traffic to it is blackholed: the
    # bidirectional rule excludes it too
    state.one_way("node0", "node3")
    picked = cluster.least_loaded_node(reachable_from="node0")
    assert picked.name == "node0"
    free = cluster.free_node(reachable_from="node0")
    assert free is not None and free.name == "node0"
    state.heal()
    # after the heal every up node is placeable again
    assert state.node_reachable("node0", "node2")
    assert state.node_reachable("node0", "node3")
