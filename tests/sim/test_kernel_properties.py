"""Property-based tests on kernel and network invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment, SimulationError
from repro.sim.network import Link
from repro.workload.trace import TraceRecord, iter_window


# -- kernel ordering invariants --------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1000.0),
                min_size=1, max_size=40))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    """For any set of timeouts, observed firing times are sorted."""
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
def test_queue_preserves_fifo_under_any_interleaving(items):
    """Items come out of a Queue in exactly the order they went in,
    regardless of producer/consumer timing."""
    env = Environment()
    queue = env.queue()
    received = []

    def producer(env):
        for index, item in enumerate(items):
            yield env.timeout(item % 3)  # irregular production
            queue.put_nowait(item)

    def consumer(env):
        for _ in items:
            value = yield queue.get()
            received.append(value)
            yield env.timeout(1)  # slow consumer

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == list(items)


def test_get_nowait_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.queue().get_nowait()


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_any_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        result = yield env.any_of([])
        return result

    assert env.run(until=env.process(proc(env))) == {}


# -- link invariants --------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 100_000), min_size=1, max_size=30),
    bandwidth=st.floats(min_value=100.0, max_value=1e9),
    latency=st.floats(min_value=0.0, max_value=1.0),
)
def test_link_delay_lower_bound(sizes, bandwidth, latency):
    """Every message's delay >= its own transmission time + latency,
    and delays never decrease for later messages at the same instant
    (FIFO pipe)."""
    env = Environment()
    link = Link(env, "l", bandwidth_bps=bandwidth, latency_s=latency)
    previous = 0.0
    for size in sizes:
        delay = link.reserve(size)
        assert delay >= size / bandwidth + latency - 1e-12
        assert delay >= previous - 1e-9 or True  # FIFO at same instant:
        previous = delay
    assert link.bytes_sent == sum(sizes)
    assert link.messages_sent == len(sizes)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, 10_000), min_size=2, max_size=20))
def test_link_same_instant_delays_monotone(sizes):
    """Messages reserved back-to-back queue behind each other."""
    env = Environment()
    link = Link(env, "l", bandwidth_bps=1000.0, latency_s=0.0)
    delays = [link.reserve(size) for size in sizes]
    for earlier, later in zip(delays, delays[1:]):
        assert later > earlier


# -- trace windowing ------------------------------------------------------------------------

def test_iter_window_selects_half_open_interval():
    records = [TraceRecord(float(t), "c", "u", "m", 1)
               for t in range(10)]
    window = list(iter_window(records, 3.0, 7.0))
    assert [record.timestamp for record in window] == [3.0, 4.0, 5.0,
                                                       6.0]
    assert list(iter_window(records, 20.0, 30.0)) == []
