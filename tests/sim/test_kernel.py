"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import (
    Environment,
    Event,
    Interrupt,
    Queue,
    QueueFull,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    times = []

    def proc(env):
        yield env.timeout(5.0)
        times.append(env.now)
        yield env.timeout(2.5)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [5.0, 7.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_and_sets_clock():
    env = Environment()
    ticks = []

    def ticker(env):
        while True:
            yield env.timeout(10.0)
            ticks.append(env.now)

    env.process(ticker(env))
    env.run(until=35.0)
    assert ticks == [10.0, 20.0, 30.0]
    assert env.now == 35.0


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)
        return "done"

    result = env.run(until=env.process(proc(env)))
    assert result == "done"
    assert env.now == 3.0


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3.0, "c"))
    env.process(proc(env, 1.0, "a"))
    env.process(proc(env, 2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_process_waits_on_another_process():
    env = Environment()

    def child(env):
        yield env.timeout(4.0)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        return value + 1

    assert env.run(until=env.process(parent(env))) == 43


def test_event_succeed_delivers_value():
    env = Environment()
    event = env.event()

    def waiter(env):
        value = yield event
        return value

    def firer(env):
        yield env.timeout(1.0)
        event.succeed("payload")

    env.process(firer(env))
    assert env.run(until=env.process(waiter(env))) == "payload"


def test_event_fail_raises_in_waiter():
    env = Environment()
    event = env.event()

    def waiter(env):
        try:
            yield event
        except RuntimeError as error:
            return f"caught {error}"

    def firer(env):
        yield env.timeout(1.0)
        event.fail(RuntimeError("boom"))

    env.process(firer(env))
    assert env.run(until=env.process(waiter(env))) == "caught boom"


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_process_exception_propagates_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("exploded")

    env.process(bad(env))
    with pytest.raises(ValueError, match="exploded"):
        env.run()


def test_waiting_parent_receives_child_exception():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("child error")

    def parent(env):
        try:
            yield env.process(bad(env))
        except ValueError:
            return "handled"

    assert env.run(until=env.process(parent(env))) == "handled"


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
            log.append("overslept")
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))

    proc = env.process(sleeper(env))

    def killer(env):
        yield env.timeout(5.0)
        proc.interrupt("crash")

    env.process(killer(env))
    env.run()
    assert log == [("interrupted", 5.0, "crash")]


def test_interrupted_process_not_resumed_by_stale_event():
    """After an interrupt, the originally awaited event must not resume
    the process a second time."""
    env = Environment()
    resumes = []

    def sleeper(env):
        try:
            yield env.timeout(10.0)
            resumes.append("timeout")
        except Interrupt:
            resumes.append("interrupt")
            yield env.timeout(50.0)
            resumes.append("after")

    proc = env.process(sleeper(env))

    def killer(env):
        yield env.timeout(5.0)
        proc.interrupt()

    env.process(killer(env))
    env.run()
    assert resumes == ["interrupt", "after"]


def test_cannot_interrupt_dead_process():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(9.0, value="slow")
        result = yield env.any_of([fast, slow])
        return list(result.values())

    assert env.run(until=env.process(proc(env))) == ["fast"]


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        first = env.timeout(1.0, value=1)
        second = env.timeout(2.0, value=2)
        result = yield env.all_of([first, second])
        return sorted(result.values())

    assert env.run(until=env.process(proc(env))) == [1, 2]
    assert env.now == 2.0


def test_queue_fifo_order():
    env = Environment()
    queue = env.queue()
    received = []

    def consumer(env):
        for _ in range(3):
            item = yield queue.get()
            received.append(item)

    def producer(env):
        yield env.timeout(1.0)
        for item in ("a", "b", "c"):
            queue.put_nowait(item)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert received == ["a", "b", "c"]


def test_queue_get_before_put_blocks():
    env = Environment()
    queue = env.queue()
    times = []

    def consumer(env):
        item = yield queue.get()
        times.append((env.now, item))

    def producer(env):
        yield env.timeout(7.0)
        queue.put_nowait("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [(7.0, "late")]


def test_queue_capacity_enforced():
    env = Environment()
    queue = env.queue(capacity=2)
    queue.put_nowait(1)
    queue.put_nowait(2)
    assert queue.is_full
    with pytest.raises(QueueFull):
        queue.put_nowait(3)
    assert queue.try_put(3) is False
    assert queue.length == 2


def test_queue_length_tracks_backlog():
    env = Environment()
    queue = env.queue()
    for item in range(5):
        queue.put_nowait(item)
    assert queue.length == 5
    assert len(queue) == 5
    queue.clear()
    assert queue.length == 0


def test_queue_item_not_lost_when_waiter_interrupted():
    """An item handed to a queue must survive the interruption of a
    process that was blocked on get()."""
    env = Environment()
    queue = env.queue()
    received = []

    def victim(env):
        try:
            yield queue.get()
            received.append("victim got item")
        except Interrupt:
            pass

    def survivor(env):
        item = yield queue.get()
        received.append(("survivor", item))

    victim_proc = env.process(victim(env))

    def scenario(env):
        yield env.timeout(1.0)
        victim_proc.interrupt()
        yield env.timeout(1.0)
        env.process(survivor(env))
        yield env.timeout(1.0)
        queue.put_nowait("the-item")

    env.process(scenario(env))
    env.run()
    assert received == [("survivor", "the-item")]


def test_yielding_non_event_raises_typeerror_in_process():
    env = Environment()

    def bad(env):
        try:
            yield "not an event"
        except TypeError:
            return "typed"

    assert env.run(until=env.process(bad(env))) == "typed"


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(12.0)
    assert env.peek() == 12.0
    env2 = Environment()
    assert env2.peek() == float("inf")
