"""Tests for node CPU model, SAN links, and utilization metering."""

import pytest

from repro.sim.kernel import Environment
from repro.sim.network import MBPS, Link, Network, UtilizationMeter
from repro.sim.node import Node, NodeDown


# -- Node -------------------------------------------------------------------

def test_compute_takes_work_over_speed():
    env = Environment()
    node = Node(env, "n0", speed=2.0)
    done = []

    def proc(env):
        yield from node.compute(4.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [2.0]  # 4 ref-seconds on a 2x node


def test_single_cpu_serializes_work():
    env = Environment()
    node = Node(env, "n0", cpus=1)
    finish = []

    def proc(env, tag):
        yield from node.compute(3.0)
        finish.append((tag, env.now))

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert finish == [("a", 3.0), ("b", 6.0)]


def test_dual_cpu_runs_two_in_parallel():
    env = Environment()
    node = Node(env, "n0", cpus=2)
    finish = []

    def proc(env, tag):
        yield from node.compute(3.0)
        finish.append((tag, env.now))

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert finish == [("a", 3.0), ("b", 3.0), ("c", 6.0)]


def test_compute_on_down_node_raises():
    env = Environment()
    node = Node(env, "n0")
    node.crash()

    def proc(env):
        try:
            yield from node.compute(1.0)
        except NodeDown:
            return "down"

    assert env.run(until=env.process(proc(env))) == "down"


def test_node_attach_detach_and_is_free():
    env = Environment()
    node = Node(env, "n0")
    assert node.is_free
    node.attach("distiller-1")
    assert not node.is_free
    node.detach("distiller-1")
    assert node.is_free
    node.crash()
    assert not node.is_free
    node.restart()
    assert node.is_free


def test_utilization_accounts_busy_time():
    env = Environment()
    node = Node(env, "n0")

    def proc(env):
        yield from node.compute(5.0)

    env.process(proc(env))
    env.run()
    assert node.utilization(10.0) == pytest.approx(0.5)
    assert node.utilization(0.0) == 0.0


def test_node_validates_parameters():
    env = Environment()
    with pytest.raises(ValueError):
        Node(env, "bad", cpus=0)
    with pytest.raises(ValueError):
        Node(env, "bad", speed=0.0)


# -- Link -------------------------------------------------------------------

def test_link_delay_is_latency_plus_transmission():
    env = Environment()
    link = Link(env, "l", bandwidth_bps=1000.0, latency_s=0.5)
    assert link.reserve(500) == pytest.approx(0.5 + 0.5)


def test_link_queues_behind_in_flight_traffic():
    env = Environment()
    link = Link(env, "l", bandwidth_bps=1000.0, latency_s=0.0)
    first = link.reserve(1000)   # occupies pipe for 1 s
    second = link.reserve(1000)  # must wait behind the first
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(2.0)
    assert link.backlog_s == pytest.approx(2.0)


def test_link_pipe_drains_over_time():
    env = Environment()
    link = Link(env, "l", bandwidth_bps=1000.0, latency_s=0.0)
    link.reserve(1000)

    def proc(env):
        yield env.timeout(5.0)
        return link.reserve(1000)

    delay = env.run(until=env.process(proc(env)))
    assert delay == pytest.approx(1.0)  # pipe idle again


def test_link_utilization_rises_with_offered_load():
    env = Environment()
    link = Link(env, "l", bandwidth_bps=1000.0, latency_s=0.0)

    def offered(env):
        for _ in range(50):
            link.reserve(100)  # 100 B each -> 5000 B over 5 s = full rate
            yield env.timeout(0.1)

    env.process(offered(env))
    env.run()
    assert link.utilization() == pytest.approx(1.0, rel=0.25)
    assert link.is_saturated(threshold=0.7)


def test_link_validates_parameters():
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, "l", bandwidth_bps=0.0)
    with pytest.raises(ValueError):
        Link(env, "l", bandwidth_bps=1.0, latency_s=-1.0)
    link = Link(env, "l", bandwidth_bps=1.0)
    with pytest.raises(ValueError):
        link.reserve(-5)


# -- Network ------------------------------------------------------------------

def test_network_access_link_adds_delay():
    env = Environment()
    network = Network(env, bandwidth_bps=1e9, latency_s=0.0)
    network.add_access_link("fe0", bandwidth_bps=1000.0, latency_s=0.0)
    interior_only = network.transfer_delay(1000)
    with_access = network.transfer_delay(1000, access_link="fe0")
    assert with_access > interior_only
    assert with_access == pytest.approx(interior_only + 1.0, abs=0.01)


def test_duplicate_access_link_rejected():
    env = Environment()
    network = Network(env)
    network.add_access_link("fe0", 1000.0)
    with pytest.raises(ValueError):
        network.add_access_link("fe0", 1000.0)


def test_multicast_drop_probability_zero_when_idle():
    env = Environment()
    network = Network(env, bandwidth_bps=100 * MBPS)
    assert network.multicast_drop_probability() == 0.0


def test_multicast_drop_probability_rises_under_saturation():
    env = Environment()
    network = Network(env, bandwidth_bps=1000.0)

    def hammer(env):
        for _ in range(100):
            network.san.reserve(200)
            yield env.timeout(0.05)

    env.process(hammer(env))
    env.run()
    assert network.san.utilization() > 1.0
    assert network.multicast_drop_probability() > 0.5


def test_saturated_elements_reports_hot_links():
    env = Environment()
    network = Network(env, bandwidth_bps=1e9)
    network.add_access_link("fe0", bandwidth_bps=1000.0)

    def hammer(env):
        for _ in range(100):
            network.transfer_delay(100, access_link="fe0")
            yield env.timeout(0.05)

    env.process(hammer(env))
    env.run()
    hot = network.saturated_elements(threshold=0.9)
    assert "fe0" in hot
    assert "SAN" not in hot


# -- UtilizationMeter ---------------------------------------------------------

def test_meter_window_expires_old_traffic():
    env = Environment()
    meter = UtilizationMeter(env, window=5.0, buckets=10)
    meter.record(5000)
    assert meter.rate() == pytest.approx(1000.0)

    def advance(env):
        yield env.timeout(20.0)

    env.run(until=env.process(advance(env)))
    meter.record(0)
    assert meter.rate() == 0.0
