"""Unit tests for passive outlier ejection (repro.balance.ejection)."""

import pytest

from repro.balance import OutlierEjector, build_policy
from repro.core.config import SNSConfig
from repro.core.manager_stub import AdvertState
from repro.core.messages import WorkerAdvert


def make_state(name, queue=0.0, now=0.0):
    advert = WorkerAdvert(
        worker_name=name, worker_type="test-worker", node_name="node0",
        stub=None, queue_avg=queue, last_report_at=0.0)
    return AdvertState(advert, now)


def make_ejector(**overrides):
    defaults = dict(
        outlier_latency_ratio=3.0,
        outlier_min_samples=4,
        outlier_min_peers=3,
        outlier_timeout_threshold=3,
        outlier_window_s=10.0,
        outlier_ejection_s=5.0,
        outlier_max_ejection_s=60.0,
    )
    defaults.update(overrides)
    config = SNSConfig(**defaults)
    policy = build_policy("round-robin+eject", config, None)
    assert isinstance(policy, OutlierEjector)
    return policy


def feed_latencies(policy, samples, now=0.0):
    """samples: {worker: latency} fed min_samples times each."""
    for _ in range(policy.min_samples):
        for name, latency in samples.items():
            policy.on_reply(name, now, latency)


def names_of(candidates):
    return [state.advert.worker_name for state in candidates]


# -- latency outliers ---------------------------------------------------------

def test_latency_outlier_is_ejected():
    policy = make_ejector()
    candidates = [make_state(f"w{i}") for i in range(4)]
    feed_latencies(policy, {"w0": 0.05, "w1": 0.05, "w2": 0.06,
                            "w3": 0.80})
    picks = {policy.select(candidates, 1.0).advert.worker_name
             for _ in range(8)}
    assert "w3" not in picks
    assert policy.ejections == 1
    assert policy.first_ejection_at == pytest.approx(1.0)
    assert policy.stats()["ejected_workers"] == {
        "w3": pytest.approx(1.0)}
    assert policy.stats()["ejection_times"] == {
        "w3": (pytest.approx(1.0),)}


def test_ejection_expires_and_readmits_on_probation():
    policy = make_ejector(outlier_ejection_s=5.0)
    candidates = [make_state(f"w{i}") for i in range(4)]
    feed_latencies(policy, {"w0": 0.05, "w1": 0.05, "w2": 0.06,
                            "w3": 0.80})
    policy.select(candidates, 1.0)
    assert policy.health["w3"].ejected_until == pytest.approx(6.0)
    # history cleared: after the window the worker re-enters clean and
    # needs fresh offending samples before it can be ejected again
    assert policy.health["w3"].samples == 0
    picks = {policy.select(candidates, 7.0).advert.worker_name
             for _ in range(8)}
    assert "w3" in picks
    assert policy.ejections == 1


def test_repeat_offender_ejection_doubles():
    policy = make_ejector(outlier_ejection_s=5.0, outlier_window_s=10.0)
    candidates = [make_state(f"w{i}") for i in range(4)]
    feed_latencies(policy, {"w0": 0.05, "w1": 0.05, "w2": 0.06,
                            "w3": 0.80})
    policy.select(candidates, 1.0)     # first ejection: 5 s
    # re-offends right after re-admission (inside the window)
    feed_latencies(policy, {"w0": 0.05, "w1": 0.05, "w2": 0.06,
                            "w3": 0.80}, now=7.0)
    policy.select(candidates, 7.0)
    record = policy.health["w3"]
    assert record.ejected_until == pytest.approx(7.0 + 10.0)  # doubled
    assert policy.ejections == 2


def test_long_clean_stretch_forgives_offence_count():
    policy = make_ejector(outlier_ejection_s=5.0, outlier_window_s=10.0)
    candidates = [make_state(f"w{i}") for i in range(4)]
    feed_latencies(policy, {"w0": 0.05, "w1": 0.05, "w2": 0.06,
                            "w3": 0.80})
    policy.select(candidates, 1.0)
    # clean for far longer than the window, then offends again
    feed_latencies(policy, {"w0": 0.05, "w1": 0.05, "w2": 0.06,
                            "w3": 0.80}, now=100.0)
    policy.select(candidates, 100.0)
    assert policy.health["w3"].ejected_until == pytest.approx(105.0)


def test_no_ejection_below_min_peers():
    policy = make_ejector(outlier_min_peers=3)
    candidates = [make_state("w0"), make_state("w1")]
    feed_latencies(policy, {"w0": 0.05, "w1": 5.0})
    picks = {policy.select(candidates, 1.0).advert.worker_name
             for _ in range(4)}
    assert picks == {"w0", "w1"}
    assert policy.ejections == 0


def test_cluster_wide_slowness_ejects_nobody():
    """Peer-relativity: when everyone is slow, nobody is an outlier."""
    policy = make_ejector()
    candidates = [make_state(f"w{i}") for i in range(4)]
    feed_latencies(policy, {f"w{i}": 2.0 for i in range(4)})
    policy.select(candidates, 1.0)
    assert policy.ejections == 0


# -- timeout outliers ---------------------------------------------------------

def test_timeout_offender_is_ejected():
    policy = make_ejector(outlier_timeout_threshold=3)
    candidates = [make_state(f"w{i}") for i in range(4)]
    for _ in range(3):
        policy.on_timeout("w3", 0.5)
    picks = {policy.select(candidates, 1.0).advert.worker_name
             for _ in range(8)}
    assert "w3" not in picks
    assert policy.ejections == 1


def test_timeout_window_expires_old_evidence():
    policy = make_ejector(outlier_timeout_threshold=3,
                          outlier_window_s=10.0)
    candidates = [make_state(f"w{i}") for i in range(4)]
    policy.on_timeout("w3", 0.0)
    policy.on_timeout("w3", 1.0)
    policy.on_timeout("w3", 50.0)  # the first two are long stale
    policy.select(candidates, 51.0)
    assert policy.ejections == 0


def test_majority_timeouts_guard_blocks_mass_ejection():
    """When half or more of the pool is timing out, ejection would only
    shrink an already-failing pool: nobody is ejected."""
    policy = make_ejector(outlier_timeout_threshold=2)
    candidates = [make_state(f"w{i}") for i in range(4)]
    for name in ("w0", "w1", "w2"):
        policy.on_timeout(name, 0.5)
        policy.on_timeout(name, 0.6)
    policy.select(candidates, 1.0)
    assert policy.ejections == 0


# -- fail-open ----------------------------------------------------------------

def test_fail_open_when_every_candidate_is_ejected():
    policy = make_ejector(outlier_timeout_threshold=2)
    candidates = [make_state(f"w{i}") for i in range(4)]
    # eject w3 legitimately ...
    policy.on_timeout("w3", 0.5)
    policy.on_timeout("w3", 0.6)
    policy.select(candidates, 1.0)
    assert policy.ejections == 1
    # ... then ask for a pick among ejected workers only
    only_ejected = [state for state in candidates
                    if state.advert.worker_name == "w3"]
    choice = policy.select(only_ejected, 1.5)
    assert choice.advert.worker_name == "w3"
    assert policy.fail_opens == 1


# -- plumbing -----------------------------------------------------------------

def test_hooks_forward_to_inner_policy():
    config = SNSConfig()
    policy = build_policy("least-outstanding+eject", config, None)
    policy.on_submit("w0", 0.0)
    assert policy.inner.outstanding == {"w0": 1}
    policy.on_reply("w0", 1.0, 0.5)
    assert policy.inner.outstanding == {}
    policy.on_submit("w1", 0.0)
    policy.on_worker_removed("w1")
    assert policy.inner.outstanding == {}


def test_stats_merge_inner_and_ejector_counters():
    policy = build_policy("least-outstanding+eject", SNSConfig(), None)
    stats = policy.stats()
    assert "outstanding" in stats          # inner
    assert stats["ejections"] == 0         # ejector
    assert stats["fail_opens"] == 0


def test_needs_key_follows_inner():
    assert build_policy("hash-bounded+eject", SNSConfig(),
                        None).needs_key
    assert not build_policy("ewma+eject", SNSConfig(), None).needs_key
