"""Unit tests for the pluggable routing policies (repro.balance)."""

import pytest

from repro.balance import (
    POLICIES,
    BoundedLoadHashPolicy,
    EwmaLatencyPolicy,
    LeastOutstandingPolicy,
    LotteryPolicy,
    OutlierEjector,
    PolicyError,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    WeightedCanaryPolicy,
    available_policies,
    build_policy,
    parse_policy_spec,
    request_key,
)
from repro.core.config import SNSConfig
from repro.core.manager_stub import AdvertState
from repro.core.messages import WorkerAdvert
from repro.sim.rng import RandomStreams


def make_state(name, queue=0.0, now=0.0, report_at=0.0,
               service_ewma=0.0, worker_type="test-worker"):
    advert = WorkerAdvert(
        worker_name=name, worker_type=worker_type, node_name="node0",
        stub=None, queue_avg=queue, last_report_at=report_at,
        service_ewma_s=service_ewma)
    return AdvertState(advert, now)


def lottery_stream(seed=7, owner="fe0"):
    return RandomStreams(seed).stream(f"lottery:{owner}")


# -- registry and spec parsing ------------------------------------------------

def test_registry_covers_every_policy_class():
    assert set(available_policies()) == set(POLICIES) == {
        "lottery", "round-robin", "least-outstanding", "p2c",
        "ewma", "weighted", "hash-bounded",
    }


def test_parse_policy_spec_base_and_wrappers():
    assert parse_policy_spec("lottery") == ("lottery", [])
    assert parse_policy_spec("ewma+eject") == ("ewma", ["eject"])
    assert parse_policy_spec(" p2c + eject ") == ("p2c", ["eject"])


def test_parse_policy_spec_rejects_unknowns():
    with pytest.raises(PolicyError, match="unknown routing policy"):
        parse_policy_spec("nonsense")
    with pytest.raises(PolicyError, match="unknown policy wrapper"):
        parse_policy_spec("lottery+nonsense")


def test_build_policy_instantiates_and_wraps():
    config = SNSConfig()
    rng = lottery_stream()
    assert isinstance(build_policy("p2c", config, rng),
                      PowerOfTwoPolicy)
    wrapped = build_policy("ewma+eject", config, rng)
    assert isinstance(wrapped, OutlierEjector)
    assert isinstance(wrapped.inner, EwmaLatencyPolicy)
    assert wrapped.name == "ewma+eject"


def test_config_validate_rejects_bad_policy_spec():
    with pytest.raises(ValueError):
        SNSConfig(routing_policy="nonsense").validate()
    SNSConfig(routing_policy="hash-bounded+eject").validate()


# -- lottery identity ---------------------------------------------------------

def test_lottery_matches_inline_formula_draw_for_draw():
    """The refactored LotteryPolicy must consume the stream exactly as
    the pre-refactor inline arithmetic did: same weights, same single
    weighted_choice per pick, same winners."""
    config = SNSConfig()
    policy = LotteryPolicy(config, lottery_stream(seed=11))
    reference = lottery_stream(seed=11)
    candidates = [make_state(f"w{i}", queue=float(i * 3)) for i in range(5)]
    for round_number in range(200):
        now = 0.1 * round_number
        expected_weights = [
            1.0 / (1.0 + state.effective_queue(
                now, config.estimate_queue_deltas))
            ** config.lottery_gamma
            for state in candidates
        ]
        expected = reference.weighted_choice(candidates,
                                             expected_weights)
        assert policy.select(candidates, now) is expected


# -- round-robin --------------------------------------------------------------

def test_round_robin_cycles_sorted_by_name():
    policy = RoundRobinPolicy(SNSConfig(), None)
    candidates = [make_state("w2"), make_state("w0"), make_state("w1")]
    picks = [policy.select(candidates, 0.0).advert.worker_name
             for _ in range(6)]
    assert picks == ["w0", "w1", "w2", "w0", "w1", "w2"]


def test_round_robin_stable_under_cache_reordering():
    policy = RoundRobinPolicy(SNSConfig(), None)
    a, b = make_state("a"), make_state("b")
    first = policy.select([b, a], 0.0)
    second = policy.select([a, b], 0.0)
    assert first.advert.worker_name == "a"
    assert second.advert.worker_name == "b"


# -- least-outstanding --------------------------------------------------------

def test_least_outstanding_tracks_in_flight():
    policy = LeastOutstandingPolicy(SNSConfig(), None)
    candidates = [make_state("w0"), make_state("w1")]
    policy.on_submit("w0", 0.0)
    policy.on_submit("w0", 0.0)
    policy.on_submit("w1", 0.0)
    assert policy.select(candidates, 1.0).advert.worker_name == "w1"
    policy.on_reply("w0", 1.0, 0.5)
    policy.on_reply("w0", 1.0, 0.5)
    assert policy.select(candidates, 1.0).advert.worker_name == "w0"
    assert policy.stats()["outstanding"] == {"w1": 1}


def test_least_outstanding_breaks_ties_by_queue_then_name():
    policy = LeastOutstandingPolicy(SNSConfig(), None)
    candidates = [make_state("w1", queue=4.0), make_state("w0", queue=4.0),
                  make_state("w2", queue=1.0)]
    assert policy.select(candidates, 0.0).advert.worker_name == "w2"
    candidates = [make_state("w1"), make_state("w0")]
    assert policy.select(candidates, 0.0).advert.worker_name == "w0"


def test_outstanding_settles_on_timeout_and_removal():
    policy = LeastOutstandingPolicy(SNSConfig(), None)
    policy.on_submit("w0", 0.0)
    policy.on_timeout("w0", 1.0)
    assert policy.stats()["outstanding"] == {}
    policy.on_submit("w1", 0.0)
    policy.on_worker_removed("w1")
    assert policy.stats()["outstanding"] == {}


# -- power of two choices -----------------------------------------------------

def test_p2c_single_candidate_draws_nothing():
    rng = lottery_stream(seed=5)
    reference = lottery_stream(seed=5)
    policy = PowerOfTwoPolicy(SNSConfig(), rng)
    only = make_state("w0")
    assert policy.select([only], 0.0) is only
    # the stream was untouched: the next draw matches a fresh twin
    assert rng.random() == reference.random()


def test_p2c_picks_lighter_of_two_distinct_probes():
    config = SNSConfig()
    policy = PowerOfTwoPolicy(config, lottery_stream(seed=5))
    reference = lottery_stream(seed=5)
    candidates = [make_state(f"w{i}", queue=float(i * 2))
                  for i in range(6)]
    for _ in range(300):
        i = reference.randint(0, 5)
        j = reference.randint(0, 4)
        if j >= i:
            j += 1
        assert i != j
        lighter = min((candidates[i], candidates[j]),
                      key=lambda state: state.effective_queue(
                          0.0, config.estimate_queue_deltas))
        # ties go to the first probe; queues here are all distinct
        assert policy.select(candidates, 0.0) is lighter


def test_p2c_deterministic_across_same_seed_streams():
    candidates = [make_state(f"w{i}", queue=float(i)) for i in range(4)]
    one = PowerOfTwoPolicy(SNSConfig(), lottery_stream(seed=9))
    two = PowerOfTwoPolicy(SNSConfig(), lottery_stream(seed=9))
    picks_one = [one.select(candidates, 0.0).advert.worker_name
                 for _ in range(50)]
    picks_two = [two.select(candidates, 0.0).advert.worker_name
                 for _ in range(50)]
    assert picks_one == picks_two


# -- EWMA latency -------------------------------------------------------------

def test_ewma_prefers_observed_faster_worker():
    policy = EwmaLatencyPolicy(SNSConfig(), None)
    candidates = [make_state("w0"), make_state("w1")]
    for _ in range(5):
        policy.on_reply("w0", 0.0, 0.050)
        policy.on_reply("w1", 0.0, 0.500)
    assert policy.select(candidates, 1.0).advert.worker_name == "w0"


def test_ewma_cold_start_uses_advertised_service_time():
    policy = EwmaLatencyPolicy(SNSConfig(), None)
    fast = make_state("w-fast", service_ewma=0.040)
    slow = make_state("w-slow", service_ewma=0.400)
    assert policy.select([slow, fast], 0.0) is fast


def test_ewma_timeout_counts_as_worst_case_sample():
    config = SNSConfig()
    policy = EwmaLatencyPolicy(config, None)
    policy.on_reply("w0", 0.0, 0.050)
    policy.on_reply("w1", 0.0, 0.050)
    policy.on_timeout("w1", 1.0)
    candidates = [make_state("w0"), make_state("w1")]
    assert policy.select(candidates, 1.0).advert.worker_name == "w0"
    assert policy.ewma["w1"] > policy.ewma["w0"]
    assert policy.ewma["w1"] == pytest.approx(
        config.policy_ewma_alpha * 2.0 * config.dispatch_timeout_s
        + (1 - config.policy_ewma_alpha) * 0.050)


def test_ewma_outstanding_penalizes_pileups():
    policy = EwmaLatencyPolicy(SNSConfig(), None)
    policy.on_reply("w0", 0.0, 0.100)
    policy.on_reply("w1", 0.0, 0.100)
    for _ in range(3):
        policy.on_submit("w0", 0.0)
    candidates = [make_state("w0"), make_state("w1")]
    assert policy.select(candidates, 1.0).advert.worker_name == "w1"


# -- weighted canary ----------------------------------------------------------

def test_weighted_canary_is_newest_spawn_and_gets_its_fraction():
    config = SNSConfig(policy_canary_fraction=0.1)
    policy = WeightedCanaryPolicy(config, lottery_stream(seed=13))
    candidates = [make_state("jpeg-distiller.3"),
                  make_state("jpeg-distiller.12"),
                  make_state("jpeg-distiller.5")]
    picks = [policy.select(candidates, 0.0).advert.worker_name
             for _ in range(2000)]
    canary_share = picks.count("jpeg-distiller.12") / len(picks)
    assert canary_share == pytest.approx(0.1, abs=0.03)
    others = {name: picks.count(name) / len(picks)
              for name in ("jpeg-distiller.3", "jpeg-distiller.5")}
    for share in others.values():
        assert share == pytest.approx(0.45, abs=0.05)


def test_weighted_single_candidate_short_circuits():
    policy = WeightedCanaryPolicy(SNSConfig(), lottery_stream())
    only = make_state("w0")
    assert policy.select([only], 0.0) is only


# -- bounded-load consistent hashing ------------------------------------------

def test_hash_bounded_gives_stable_affinity():
    policy = BoundedLoadHashPolicy(SNSConfig(), None)
    candidates = [make_state(f"w{i}") for i in range(5)]
    first = policy.select(candidates, 0.0, key="http://x/img1.jpg")
    for _ in range(10):
        again = policy.select(candidates, 0.0, key="http://x/img1.jpg")
        assert again is first
    # different keys spread across more than one worker
    names = {
        policy.select(candidates, 0.0,
                      key=f"http://x/img{i}.jpg").advert.worker_name
        for i in range(40)
    }
    assert len(names) > 1


def test_hash_bounded_overflow_walks_the_ring():
    policy = BoundedLoadHashPolicy(SNSConfig(policy_hash_bound=1.0),
                                   None)
    candidates = [make_state(f"w{i}") for i in range(4)]
    key = "http://x/hot.jpg"
    home = policy.select(candidates, 0.0, key=key).advert.worker_name
    # pile outstanding work onto the home worker until the bound trips
    for _ in range(8):
        policy.on_submit(home, 0.0)
    moved = policy.select(candidates, 0.0, key=key).advert.worker_name
    assert moved != home
    assert policy.stats()["overflow_hops"] >= 1


def test_hash_bounded_survives_membership_change():
    policy = BoundedLoadHashPolicy(SNSConfig(), None)
    candidates = [make_state(f"w{i}") for i in range(5)]
    keys = [f"http://x/img{i}.jpg" for i in range(30)]
    before = {key: policy.select(candidates, 0.0, key=key)
              .advert.worker_name for key in keys}
    survivors = [state for state in candidates
                 if state.advert.worker_name != "w2"]
    after = {key: policy.select(survivors, 0.0, key=key)
             .advert.worker_name for key in keys}
    # keys not homed on the removed worker overwhelmingly stay put
    stayed = sum(1 for key in keys
                 if before[key] != "w2" and after[key] == before[key])
    unaffected = sum(1 for key in keys if before[key] != "w2")
    assert unaffected > 0
    assert stayed / unaffected >= 0.9


def test_hash_bounded_handles_missing_key():
    policy = BoundedLoadHashPolicy(SNSConfig(), None)
    candidates = [make_state(f"w{i}") for i in range(3)]
    assert policy.select(candidates, 0.0, key=None) in candidates


# -- request keys -------------------------------------------------------------

def test_request_key_prefers_url_then_user():
    from repro.tacc.content import Content
    from repro.tacc.worker import TACCRequest

    content = Content("http://x/a.jpg", "image/jpeg", b"xx")
    with_url = TACCRequest(inputs=[content], params={}, user_id="u1")
    assert request_key(with_url) == "http://x/a.jpg"
    without_inputs = TACCRequest(inputs=[], params={}, user_id="u1")
    assert request_key(without_inputs) == "u1"
    anonymous = TACCRequest(inputs=[], params={}, user_id=None)
    assert request_key(anonymous) is None
