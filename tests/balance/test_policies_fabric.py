"""End-to-end: every policy spec routes real dispatches on a fabric."""

import pytest

from tests.core.conftest import fast_config, make_fabric, make_record

SPECS = ["lottery", "round-robin", "least-outstanding", "p2c", "ewma",
         "weighted", "hash-bounded", "lottery+eject", "ewma+eject",
         "hash-bounded+eject"]


@pytest.mark.parametrize("spec", SPECS)
def test_policy_serves_requests_end_to_end(spec):
    fabric = make_fabric(config=fast_config(routing_policy=spec))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 3})
    fabric.cluster.run(until=2.0)
    env = fabric.cluster.env
    replies = [fabric.submit(make_record(index)) for index in range(12)]
    for reply in replies:
        response = env.run(until=reply)
        assert response.status == "ok"
    stub = fabric.alive_frontends()[0].stub
    assert stub.policy.name == spec
    assert stub.dispatches == 12
    assert stub.timeouts == 0


def test_default_config_is_the_paper_lottery():
    fabric = make_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    stub = fabric.alive_frontends()[0].stub
    assert stub.policy.name == "lottery"
    assert not stub.policy.needs_key


def test_explicit_lottery_is_byte_identical_to_default():
    """routing_policy='lottery' and the default must produce the same
    simulation trajectory — same counters, same clock."""

    def run(config):
        fabric = make_fabric(config=config)
        fabric.boot(n_frontends=2, initial_workers={"test-worker": 2})
        fabric.cluster.run(until=2.0)
        env = fabric.cluster.env
        for index in range(30):
            env.run(until=fabric.submit(make_record(index)))
        stubs = [fe.stub for fe in fabric.alive_frontends()]
        return (env.now,
                sorted((stub.owner_name, stub.dispatches, stub.retries)
                       for stub in stubs),
                sorted((stub.name, stub.served)
                       for stub in fabric.alive_workers()))

    assert run(fast_config()) == \
        run(fast_config(routing_policy="lottery"))
