"""Attribution-sweep, critical-path, and report tests over hand-built
span trees (detached spans, explicit times)."""

import pytest

from repro.obs.attribution import (
    AttributionReport,
    attribute_trace,
    build_attribution_report,
    critical_path,
    find_root,
    render_span_tree,
)
from repro.obs.trace import (
    NETWORK,
    OTHER,
    QUEUEING,
    SERVICE,
    Span,
    Tracer,
)
from repro.sim.kernel import Environment


def span(span_id, parent_id, name, category, start, end,
         component="x", trace_id="t1"):
    return Span(None, trace_id, span_id, parent_id, name, category,
                component, start, end=end)


# -- the interval sweep ---------------------------------------------------------


def test_components_partition_the_root_interval():
    spans = [
        span(1, None, "request", OTHER, 0.0, 10.0),
        span(2, 1, "wait", QUEUEING, 2.0, 5.0),
        span(3, 2, "work", SERVICE, 3.0, 4.0),
    ]
    components = attribute_trace(spans)
    # deepest covering span wins: [3,4] is service even though the
    # queueing span also covers it
    assert components[SERVICE] == pytest.approx(1.0)
    assert components[QUEUEING] == pytest.approx(2.0)
    assert components[OTHER] == pytest.approx(7.0)
    assert sum(components.values()) == pytest.approx(10.0)


def test_root_only_time_is_other():
    spans = [span(1, None, "request", OTHER, 0.0, 4.0)]
    assert attribute_trace(spans) == {OTHER: pytest.approx(4.0)}


def test_unfinished_spans_are_ignored():
    spans = [
        span(1, None, "request", OTHER, 0.0, 6.0),
        span(2, 1, "hung", SERVICE, 1.0, None),
        span(3, 1, "net", NETWORK, 2.0, 3.0),
    ]
    components = attribute_trace(spans)
    assert SERVICE not in components
    assert components[NETWORK] == pytest.approx(1.0)


def test_child_clipped_to_root_interval():
    """A child that outlives the root (e.g. recorded with a late end)
    only contributes the overlap."""
    spans = [
        span(1, None, "request", OTHER, 0.0, 5.0),
        span(2, 1, "net", NETWORK, 4.0, 9.0),
    ]
    components = attribute_trace(spans)
    assert components[NETWORK] == pytest.approx(1.0)
    assert sum(components.values()) == pytest.approx(5.0)


def test_no_finished_root_yields_empty():
    assert attribute_trace([]) == {}
    assert attribute_trace(
        [span(1, None, "request", OTHER, 0.0, None)]) == {}


def test_sibling_overlap_resolves_deterministically():
    """Two siblings covering the same instant: the later-starting,
    higher-id one wins (documented tie-break)."""
    spans = [
        span(1, None, "request", OTHER, 0.0, 10.0),
        span(2, 1, "a", QUEUEING, 1.0, 6.0),
        span(3, 1, "b", SERVICE, 3.0, 8.0),
    ]
    components = attribute_trace(spans)
    assert components[QUEUEING] == pytest.approx(2.0)  # [1,3]
    assert components[SERVICE] == pytest.approx(5.0)   # [3,8]
    assert components[OTHER] == pytest.approx(3.0)
    assert sum(components.values()) == pytest.approx(10.0)


# -- critical path --------------------------------------------------------------


def test_critical_path_hands_off_to_latest_child():
    root = span(1, None, "request", OTHER, 0.0, 10.0)
    a = span(2, 1, "a", SERVICE, 1.0, 4.0)
    b = span(3, 1, "b", NETWORK, 6.0, 9.0)
    segments = critical_path([root, a, b])
    labels = [(seg.name, left, right) for seg, left, right in segments]
    assert labels == [
        ("request", 0.0, 1.0),
        ("a", 1.0, 4.0),
        ("request", 4.0, 6.0),
        ("b", 6.0, 9.0),
        ("request", 9.0, 10.0),
    ]
    total = sum(right - left for _, left, right in segments)
    assert total == pytest.approx(root.duration)


def test_critical_path_descends_into_grandchildren():
    root = span(1, None, "request", OTHER, 0.0, 8.0)
    mid = span(2, 1, "dispatch", QUEUEING, 1.0, 7.0)
    leaf = span(3, 2, "worker", SERVICE, 3.0, 6.0)
    segments = critical_path([root, mid, leaf])
    names = [seg.name for seg, _, _ in segments]
    assert names == ["request", "dispatch", "worker", "dispatch",
                     "request"]
    total = sum(right - left for _, left, right in segments)
    assert total == pytest.approx(8.0)


def test_critical_path_skips_zero_duration_children():
    """Regression: a zero-duration child at the cursor used to stall
    the backward walk forever."""
    root = span(1, None, "request", OTHER, 0.0, 5.0)
    instant = span(2, 1, "thread-wait", QUEUEING, 5.0, 5.0)
    real = span(3, 1, "work", SERVICE, 1.0, 2.0)
    segments = critical_path([root, instant, real])
    assert all(seg.name != "thread-wait" for seg, _, _ in segments)
    total = sum(right - left for _, left, right in segments)
    assert total == pytest.approx(5.0)


def test_critical_path_empty_without_root():
    assert critical_path([]) == []


# -- rendering ------------------------------------------------------------------


def test_render_span_tree_shows_hierarchy_and_annotations():
    root = span(1, None, "request", OTHER, 0.0, 2.0)
    root.annotations["url"] = "http://x/"
    child = span(2, 1, "net", NETWORK, 0.5, 1.5, component="fe0")
    text = render_span_tree([root, child])
    lines = text.splitlines()
    assert len(lines) == 2
    assert "request [other] @x" in lines[0]
    assert "url=http://x/" in lines[0]
    assert "net [network] @fe0" in lines[1]
    # the child line is indented under the root
    assert lines[1].index("net") > lines[0].index("request")


def test_render_span_tree_handles_unfinished_root():
    root = span(1, None, "request", OTHER, 0.0, None)
    text = render_span_tree([root])
    assert "unfinished" in text


def test_render_empty_trace():
    assert render_span_tree([]) == "(empty trace)"


# -- the aggregated report ------------------------------------------------------


def trace_of(trace_id, e2e, service_s):
    return [
        span(1, None, "request", OTHER, 0.0, e2e, trace_id=trace_id),
        span(2, 1, "work", SERVICE, 0.0, service_s,
             trace_id=trace_id),
    ]


def test_report_aggregates_and_bounds_residual():
    report = AttributionReport()
    assert report.add_trace("t1", trace_of("t1", 2.0, 0.5))
    assert report.add_trace("t2", trace_of("t2", 4.0, 1.5))
    assert report.n_traces == 2
    assert report.end_to_end.count == 2
    assert report.by_category[SERVICE].total == pytest.approx(2.0)
    assert report.worst_residual <= 1e-9
    text = report.render()
    assert "2 sampled request(s)" in text
    assert "service" in text
    assert "slowest     t2" in text


def test_report_rejects_traces_without_roots():
    report = AttributionReport()
    assert not report.add_trace("t1", [])
    assert report.n_traces == 0
    assert report.render() == "latency attribution: no sampled traces"


def test_report_merge_pools_both_arms():
    one = AttributionReport()
    one.add_trace("t1", trace_of("t1", 2.0, 0.5))
    two = AttributionReport()
    two.add_trace("t2", trace_of("t2", 6.0, 3.0))
    one.merge(two)
    assert one.n_traces == 2
    assert one.end_to_end.maximum == pytest.approx(6.0)
    assert one._slowest[0][1] == "t2"


def test_build_attribution_report_accepts_tracer_or_list():
    env = Environment()
    tracer = Tracer(env)
    root = tracer.open_trace("request")
    env._now = 1.0
    root.finish()
    single = build_attribution_report(tracer)
    many = build_attribution_report([tracer])
    assert single.n_traces == many.n_traces == 1
