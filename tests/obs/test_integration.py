"""End-to-end tracing tests: the capture hook, zero perturbation, and
the 1%-sum acceptance criterion over a real experiment run."""

import pytest

from repro.experiments import run_endtoend
from repro.obs import capture_traces, tracing_settings
from repro.obs.attribution import (
    attribute_trace,
    build_attribution_report,
    critical_path,
    find_root,
)
from repro.sim.cluster import Cluster


N_REQUESTS = 40
SEED = 1997


def test_clusters_are_untraced_by_default():
    assert tracing_settings() is None
    cluster = Cluster(seed=1)
    assert cluster.env.tracer is None


def test_capture_traces_arms_every_new_cluster():
    with capture_traces(sample_every=3) as tracers:
        assert tracing_settings() == {"sample_every": 3,
                                      "max_traces": None}
        first = Cluster(seed=1)
        second = Cluster(seed=2)
    assert len(tracers) == 2
    assert first.env.tracer is tracers[0]
    assert second.env.tracer is tracers[1]
    assert tracers[0].label == "cluster-1"
    assert tracers[1].label == "cluster-2"
    assert tracing_settings() is None  # disarmed on exit


def test_capture_traces_rejects_nesting_and_bad_rate():
    with capture_traces():
        with pytest.raises(RuntimeError):
            with capture_traces():
                pass
    with pytest.raises(ValueError):
        with capture_traces(sample_every=0):
            pass


def test_tracing_does_not_perturb_the_experiment():
    """The zero-perturbation guarantee, measured where it matters: the
    same seed renders the identical result with tracing on and off."""
    untraced = run_endtoend(n_requests=N_REQUESTS, seed=SEED).render()
    with capture_traces() as tracers:
        traced = run_endtoend(n_requests=N_REQUESTS, seed=SEED).render()
    assert traced == untraced
    assert any(tracer.requests_sampled for tracer in tracers)


def test_sampled_components_sum_within_one_percent():
    """The acceptance criterion: per sampled request, the category
    components sum to the measured end-to-end latency within 1%."""
    with capture_traces(sample_every=2) as tracers:
        run_endtoend(n_requests=N_REQUESTS, seed=SEED)
    checked = 0
    for tracer in tracers:
        for trace_id, spans in tracer.finished_traces().items():
            root = find_root(spans)
            components = attribute_trace(spans)
            if root is None or not components or root.duration == 0:
                continue
            residual = abs(sum(components.values()) - root.duration)
            assert residual <= 0.01 * root.duration, trace_id
            checked += 1
    assert checked >= 10


def test_traces_cover_the_request_path_hops():
    with capture_traces() as tracers:
        run_endtoend(n_requests=N_REQUESTS, seed=SEED)
    names = {span.name for tracer in tracers
             for span in tracer.all_spans()}
    for expected in ("request", "frontend", "netstack", "service",
                     "cache-lookup", "origin-fetch", "dispatch",
                     "san-transfer", "worker-service", "modem"):
        assert expected in names, expected
    categories = {span.category for tracer in tracers
                  for span in tracer.all_spans()}
    assert {"queueing", "service", "network", "cache", "origin",
            "client"} <= categories


def test_critical_path_terminates_and_partitions_every_trace():
    with capture_traces(sample_every=4) as tracers:
        run_endtoend(n_requests=N_REQUESTS, seed=SEED)
    checked = 0
    for tracer in tracers:
        for trace_id, spans in tracer.finished_traces().items():
            root = find_root(spans)
            if root is None or root.duration == 0:
                continue
            segments = critical_path(spans)
            total = sum(right - left for _, left, right in segments)
            assert total == pytest.approx(root.duration), trace_id
            checked += 1
    assert checked >= 5


def test_report_over_both_arms():
    with capture_traces(sample_every=2) as tracers:
        run_endtoend(n_requests=N_REQUESTS, seed=SEED)
    report = build_attribution_report(tracers)
    assert report.n_traces >= 10
    assert report.worst_residual <= 0.01
    text = report.render()
    assert "end-to-end" in text
    assert "components sum to e2e" in text


def test_sampling_reduces_stored_traces_not_results():
    with capture_traces(sample_every=1) as full:
        everything = run_endtoend(n_requests=N_REQUESTS,
                                  seed=SEED).render()
    with capture_traces(sample_every=10) as sparse:
        sampled = run_endtoend(n_requests=N_REQUESTS,
                               seed=SEED).render()
    assert everything == sampled  # sampling never changes the sim
    stored_full = sum(len(t.trace_ids()) for t in full)
    stored_sparse = sum(len(t.trace_ids()) for t in sparse)
    assert 0 < stored_sparse < stored_full
