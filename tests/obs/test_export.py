"""Chrome trace_event export/import round-trip tests."""

import io
import json

import pytest

from repro.obs.attribution import attribute_trace
from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    load_chrome_trace,
)
from repro.obs.trace import NETWORK, SERVICE, Tracer
from repro.sim.kernel import Environment


def build_tracer(label="arm", offset=0.0):
    env = Environment(initial_time=offset)
    tracer = Tracer(env, label=label)
    root = tracer.open_trace("request", url="http://x/")
    env._now = offset + 0.010
    child = root.child("net", NETWORK, component="fe0")
    env._now = offset + 0.030
    child.annotate(bytes=512).finish()
    env._now = offset + 0.100
    root.finish()
    return tracer


def test_events_carry_timestamps_in_microseconds():
    tracer = build_tracer()
    events = chrome_trace_events(tracer)
    complete = [event for event in events if event["ph"] == "X"]
    assert len(complete) == 2
    root_event = next(e for e in complete if e["name"] == "request")
    assert root_event["ts"] == 0.0
    assert root_event["dur"] == 100_000.0  # 0.1s in us
    child_event = next(e for e in complete if e["name"] == "net")
    assert child_event["ts"] == 10_000.0
    assert child_event["args"]["bytes"] == 512


def test_metadata_names_processes_and_threads():
    tracer = build_tracer(label="cluster-1")
    events = chrome_trace_events(tracer)
    metas = [event for event in events if event["ph"] == "M"]
    names = {(event["name"], event["args"]["name"]) for event in metas}
    assert ("process_name", "cluster-1") in names
    assert ("thread_name", "client") in names
    assert ("thread_name", "fe0") in names


def test_unfinished_spans_skipped_unless_requested():
    env = Environment()
    tracer = Tracer(env)
    root = tracer.open_trace("request")
    root.child("hung", SERVICE)
    env._now = 1.0
    root.finish()
    assert sum(1 for e in chrome_trace_events(tracer)
               if e["ph"] == "X") == 1
    assert sum(1 for e in chrome_trace_events(
        tracer, include_unfinished=True) if e["ph"] == "X") == 2


def test_export_returns_event_count_and_writes_valid_json():
    tracer = build_tracer()
    buffer = io.StringIO()
    count = export_chrome_trace(tracer, buffer)
    assert count == 2
    document = json.loads(buffer.getvalue())
    assert document["displayTimeUnit"] == "ms"
    assert document["otherData"]["producer"] == "repro.obs"
    assert len(document["traceEvents"]) >= count


def test_round_trip_preserves_tree_and_annotations():
    tracer = build_tracer()
    buffer = io.StringIO()
    export_chrome_trace(tracer, buffer)
    buffer.seek(0)
    traces = load_chrome_trace(buffer)
    assert len(traces) == 1
    spans = next(iter(traces.values()))
    by_name = {span.name: span for span in spans}
    root, child = by_name["request"], by_name["net"]
    assert child.parent_id == root.span_id
    assert root.annotations == {"url": "http://x/"}
    assert child.annotations == {"bytes": 512}
    assert child.component == "fe0"
    assert child.start == pytest.approx(0.010)
    assert child.duration == pytest.approx(0.020)
    # a reloaded trace attributes identically to the live one
    live = attribute_trace(tracer.trace(root.trace_id))
    reloaded = attribute_trace(spans)
    assert set(live) == set(reloaded)
    for category, seconds in live.items():
        assert abs(reloaded[category] - seconds) < 1e-9


def test_colliding_trace_ids_across_tracers_stay_separate():
    """Trace ids are per-tracer counters, so two experiment arms both
    emit t0000000; the loader must not merge them into one tree."""
    arms = [build_tracer(label="cluster-1"),
            build_tracer(label="cluster-2", offset=5.0)]
    buffer = io.StringIO()
    export_chrome_trace(arms, buffer)
    buffer.seek(0)
    traces = load_chrome_trace(buffer)
    assert len(traces) == 2
    assert set(traces) == {"t0000000@cluster-1",
                           "t0000000@cluster-2"}
    for spans in traces.values():
        assert len(spans) == 2  # each arm's own root + child, unmixed


def test_export_to_file_path(tmp_path):
    tracer = build_tracer()
    path = tmp_path / "trace.json"
    count = export_chrome_trace(tracer, str(path))
    assert count == 2
    traces = load_chrome_trace(str(path))
    assert len(traces) == 1
