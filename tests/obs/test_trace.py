"""Unit tests for spans, the tracer, sampling, and the hand-off
protocol."""

import pytest

from repro.obs.trace import (
    OTHER,
    QUEUEING,
    SERVICE,
    Span,
    Tracer,
    install_tracer,
)
from repro.sim.cluster import Cluster
from repro.sim.kernel import Environment


def make_tracer(**kwargs):
    env = Environment()
    return env, Tracer(env, **kwargs)


# -- span basics ----------------------------------------------------------------


def test_root_and_children_share_a_trace():
    env, tracer = make_tracer()
    root = tracer.open_trace("request")
    child = root.child("dispatch", QUEUEING, component="fe0")
    grandchild = child.child("worker", SERVICE)
    assert root.trace_id == child.trace_id == grandchild.trace_id
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id
    # child() inherits the parent's component unless overridden
    assert grandchild.component == "fe0"
    assert len(tracer.trace(root.trace_id)) == 3


def test_span_times_come_from_the_sim_clock():
    env, tracer = make_tracer()
    root = tracer.open_trace("request")
    env._now = 2.5
    child = root.child("hop", SERVICE)
    env._now = 4.0
    child.finish()
    root.finish()
    assert child.start == 2.5
    assert child.end == 4.0
    assert child.duration == 1.5
    assert root.duration == 4.0


def test_finish_is_idempotent():
    env, tracer = make_tracer()
    root = tracer.open_trace("request")
    env._now = 1.0
    root.finish()
    env._now = 9.0
    root.finish()
    assert root.end == 1.0


def test_record_captures_an_elapsed_child_in_one_call():
    env, tracer = make_tracer()
    root = tracer.open_trace("request")
    env._now = 3.0
    span = root.record("wait", QUEUEING, start=1.0, bytes=42)
    assert span.start == 1.0
    assert span.end == 3.0  # default end: now
    assert span.annotations == {"bytes": 42}
    explicit = root.record("xfer", QUEUEING, start=1.0, end=2.0)
    assert explicit.end == 2.0


def test_annotate_chains_and_merges():
    env, tracer = make_tracer()
    root = tracer.open_trace("request", url="http://x/")
    assert root.annotate(status="ok") is root
    assert root.annotations == {"url": "http://x/", "status": "ok"}


# -- sampling -------------------------------------------------------------------


def test_head_sampling_keeps_every_nth_request():
    env, tracer = make_tracer(sample_every=3)
    roots = [tracer.open_trace("request") for _ in range(9)]
    sampled = [root for root in roots if root is not None]
    assert len(sampled) == 3
    assert [roots.index(root) for root in sampled] == [0, 3, 6]
    assert tracer.requests_seen == 9
    assert tracer.requests_sampled == 3


def test_sampling_is_deterministic_not_random():
    """No RNG draw: two tracers over the same request stream sample the
    same indices."""
    _, one = make_tracer(sample_every=4)
    _, two = make_tracer(sample_every=4)
    picks_one = [one.open_trace("r") is not None for _ in range(12)]
    picks_two = [two.open_trace("r") is not None for _ in range(12)]
    assert picks_one == picks_two


def test_trace_ids_encode_the_request_index():
    env, tracer = make_tracer(sample_every=2)
    first = tracer.open_trace("request")
    tracer.open_trace("request")
    third = tracer.open_trace("request")
    assert first.trace_id == "t0000000"
    assert third.trace_id == "t0000002"


def test_max_traces_bounds_memory():
    env, tracer = make_tracer(max_traces=2)
    roots = [tracer.open_trace("request") for _ in range(5)]
    assert sum(1 for root in roots if root is not None) == 2
    assert len(tracer.trace_ids()) == 2


def test_sample_every_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Tracer(env, sample_every=0)


# -- the hand-off protocol ------------------------------------------------------


def test_hand_off_take_pending_round_trip():
    env, tracer = make_tracer()
    root = tracer.open_trace("request")
    tracer.hand_off(root)
    pending = tracer.take_pending()
    assert Tracer.was_handed_off(pending)
    assert pending is root
    # consumed: the next take sees no hand-off
    assert not Tracer.was_handed_off(tracer.take_pending())


def test_hand_off_of_unsampled_context_is_distinguishable():
    """Handing off None (request sampled out) is not the same as no
    hand-off at all — downstream must not open its own root."""
    env, tracer = make_tracer()
    tracer.hand_off(None)
    pending = tracer.take_pending()
    assert Tracer.was_handed_off(pending)
    assert pending is None


def test_peek_pending_does_not_consume():
    env, tracer = make_tracer()
    root = tracer.open_trace("request")
    tracer.hand_off(root)
    assert tracer.peek_pending() is root
    assert tracer.take_pending() is root  # still there for the consumer


def test_drop_pending_clears_unconsumed_hand_off():
    env, tracer = make_tracer()
    tracer.hand_off(tracer.open_trace("request"))
    tracer.drop_pending()
    assert not Tracer.was_handed_off(tracer.take_pending())


# -- queries and installation ---------------------------------------------------


def test_finished_traces_excludes_open_roots():
    env, tracer = make_tracer()
    done = tracer.open_trace("request")
    done.finish()
    tracer.open_trace("request")  # never finished
    finished = tracer.finished_traces()
    assert list(finished) == [done.trace_id]


def test_all_spans_iterates_every_trace():
    env, tracer = make_tracer()
    first = tracer.open_trace("request")
    first.child("hop", SERVICE)
    tracer.open_trace("request")
    assert len(list(tracer.all_spans())) == 3


def test_install_tracer_on_cluster_sets_env_hook():
    cluster = Cluster(seed=5)
    assert cluster.env.tracer is None  # strictly opt-in
    tracer = install_tracer(cluster, sample_every=7, label="arm")
    assert cluster.env.tracer is tracer
    assert tracer.sample_every == 7
    assert tracer.label == "arm"
