"""Tests for the corpus, inverted index, and partitioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hotbot.documents import Corpus, Document
from repro.hotbot.index import InvertedIndex, merge_hits
from repro.hotbot.partition import PartitionMap
from repro.sim.rng import RandomStreams


@pytest.fixture(scope="module")
def corpus():
    return Corpus(n_docs=300, vocabulary_size=500, seed=5)


@pytest.fixture(scope="module")
def index(corpus):
    return InvertedIndex(total_corpus_size=len(corpus)).add_all(corpus)


# -- corpus -------------------------------------------------------------------

def test_corpus_deterministic():
    first = Corpus(n_docs=20, seed=9)
    second = Corpus(n_docs=20, seed=9)
    assert [d.terms for d in first] == [d.terms for d in second]
    third = Corpus(n_docs=20, seed=10)
    assert [d.terms for d in first] != [d.terms for d in third]


def test_corpus_term_skew(corpus):
    """Zipf vocabulary: w0 appears in far more documents than w400."""
    def document_frequency(term):
        return sum(1 for doc in corpus if doc.tf(term) > 0)

    assert document_frequency("w0") > 5 * max(1, document_frequency("w400"))


def test_corpus_validates():
    with pytest.raises(ValueError):
        Corpus(n_docs=0)


# -- index ---------------------------------------------------------------------

def test_query_returns_relevant_docs(index, corpus):
    # pick a mid-frequency term; all returned docs must contain it
    hits = index.query(["w50"], k=5)
    assert hits
    docs_by_id = {doc.doc_id: doc for doc in corpus}
    for hit in hits:
        assert docs_by_id[hit.doc_id].tf("w50") > 0


def test_query_scores_sorted_descending(index):
    hits = index.query(["w10", "w20"], k=20)
    scores = [hit.score for hit in hits]
    assert scores == sorted(scores, reverse=True)


def test_query_unknown_term_empty(index):
    assert index.query(["nonexistent-term"], k=5) == []


def test_query_k_validated(index):
    with pytest.raises(ValueError):
        index.query(["w1"], k=0)


def test_rare_terms_outweigh_common(index, corpus):
    """idf: a doc matching a rare term scores above one matching only a
    stopword-like common term."""
    # find a rare and a common term
    from collections import Counter
    df = Counter()
    for doc in corpus:
        for term, _ in doc.terms:
            df[term] += 1
    common = df.most_common(1)[0][0]
    rare = min((t for t in df if df[t] >= 2), key=lambda t: df[t])
    both = index.query([common, rare], k=len(corpus))
    rare_docs = {hit.doc_id for hit in index.query([rare], k=50)}
    # top hit for the combined query should involve the rare term
    assert both[0].doc_id in rare_docs


def test_duplicate_add_rejected(index, corpus):
    with pytest.raises(ValueError):
        index.add(corpus.documents[0])


def test_remove_document():
    corpus = Corpus(n_docs=10, seed=2)
    index = InvertedIndex(total_corpus_size=10).add_all(corpus)
    target = corpus.documents[0]
    assert index.remove(target.doc_id)
    assert not index.remove(target.doc_id)
    assert index.n_documents == 9
    for hits in [index.query([t], k=10) for t, _ in target.terms[:3]]:
        assert all(hit.doc_id != target.doc_id for hit in hits)


def test_postings_scanned_counts(index):
    assert index.postings_scanned(["w0"]) > 0
    assert index.postings_scanned(["missing"]) == 0


# -- partition + merge: the key distributed-correctness property ------------------

def test_partitioned_query_equals_global_query(corpus):
    """Scatter-gather over partitions must return the same top-k as one
    big index (this is what makes collation correct)."""
    rng = RandomStreams(3).stream("pm")
    partition_map = PartitionMap(corpus, [1.0] * 4, rng)
    partials = [
        partition_map.build_index(partition).query(["w5", "w17"], k=10)
        for partition in range(4)
    ]
    merged = merge_hits(partials, k=10)
    global_index = InvertedIndex(total_corpus_size=len(corpus)).add_all(
        corpus)
    expected = global_index.query(["w5", "w17"], k=10)
    assert [h.doc_id for h in merged] == [h.doc_id for h in expected]


def test_partition_sizes_follow_weights(corpus):
    rng = RandomStreams(3).stream("pm")
    partition_map = PartitionMap(corpus, [3.0, 1.0], rng)
    big, small = partition_map.partition_sizes()
    assert big + small == len(corpus)
    assert big > 1.8 * small  # proportional to CPU power


def test_coverage_without_failed_partitions(corpus):
    rng = RandomStreams(3).stream("pm")
    partition_map = PartitionMap(corpus, [1.0] * 26, rng)
    coverage = partition_map.coverage_without([0])
    # 26 nodes, lose 1: 54M -> ~51M, i.e. ~96% coverage
    assert coverage == pytest.approx(25 / 26, abs=0.02)
    assert partition_map.coverage_without([]) == 1.0


def test_partition_map_validates(corpus):
    rng = RandomStreams(3).stream("pm")
    with pytest.raises(ValueError):
        PartitionMap(corpus, [], rng)
    with pytest.raises(ValueError):
        PartitionMap(corpus, [1.0, -1.0], rng)


@settings(max_examples=20, deadline=None)
@given(n_partitions=st.integers(1, 8), seed=st.integers(0, 100))
def test_merge_invariant_any_partitioning(n_partitions, seed):
    """Property: for any random partitioning, merged scatter-gather
    equals the global answer."""
    corpus = Corpus(n_docs=60, vocabulary_size=100, seed=7)
    rng = RandomStreams(seed).stream("pm")
    partition_map = PartitionMap(corpus, [1.0] * n_partitions, rng)
    terms = ["w3", "w8"]
    partials = [partition_map.build_index(p).query(terms, k=8)
                for p in range(n_partitions)]
    merged = merge_hits(partials, k=8)
    global_index = InvertedIndex(total_corpus_size=60).add_all(corpus)
    expected = global_index.query(terms, k=8)
    assert [h.doc_id for h in merged] == [h.doc_id for h in expected]
