"""Tests for the HotBot cluster service: scatter-gather, degradation,
fast restart, cross-mounting, and the ACID database."""

import pytest

from repro.hotbot.service import HotBot, HotBotConfig


def make_hotbot(**config_overrides):
    defaults = dict(n_workers=4, n_docs=400, gather_timeout_s=1.0,
                    fast_restart_s=5.0)
    defaults.update(config_overrides)
    return HotBot(config=HotBotConfig(**defaults), seed=21)


def ask(hotbot, terms=("w3", "w7"), user="u1"):
    return hotbot.run_until(hotbot.submit(list(terms), user))


def test_query_consults_all_partitions():
    hotbot = make_hotbot()
    result = ask(hotbot)
    assert result.partitions_answered == 4
    assert result.coverage == 1.0
    assert not result.partial
    assert result.hits
    scores = [hit.score for hit in result.hits]
    assert scores == sorted(scores, reverse=True)


def test_query_matches_single_index_answer():
    from repro.hotbot.index import InvertedIndex
    hotbot = make_hotbot()
    result = ask(hotbot, terms=("w2", "w9"))
    global_index = InvertedIndex(
        total_corpus_size=len(hotbot.corpus)).add_all(hotbot.corpus)
    expected = global_index.query(["w2", "w9"], k=hotbot.config.top_k)
    assert [h.doc_id for h in result.hits] == \
        [h.doc_id for h in expected]


def test_node_loss_gives_partial_answers_fast_restart():
    """Fast-restart mode: a down node's partition is simply missing —
    '(the database) dropping from 54M to about 51M documents' — and the
    service stays up with partial coverage."""
    hotbot = make_hotbot(failure_mode="fast-restart", fast_restart_s=30.0)
    hotbot.crash_worker(0)
    result = ask(hotbot)
    assert result.partial
    assert result.partitions_answered == 3
    assert 0.6 < result.coverage < 0.95
    assert result.hits  # still useful


def test_fast_restart_restores_full_coverage():
    hotbot = make_hotbot(failure_mode="fast-restart", fast_restart_s=5.0)
    hotbot.crash_worker(1)
    degraded = ask(hotbot)
    assert degraded.partial
    hotbot.run(until=hotbot.cluster.env.now + 10.0)
    recovered = ask(hotbot)
    assert not recovered.partial
    assert recovered.coverage == 1.0


def test_cross_mount_keeps_full_data_availability():
    """Original Inktomi mode: 'when a node went down, other nodes would
    automatically take over responsibility for that data, maintaining
    100% data availability with graceful degradation in performance.'"""
    hotbot = make_hotbot(failure_mode="cross-mount")
    hotbot.crash_worker(0, auto_restart=False)
    result = ask(hotbot)
    assert not result.partial
    assert result.coverage == 1.0
    assert result.served_by_replica == 1
    # the replica-serving peer did extra work
    assert any(worker.replica_queries_served > 0
               for worker in hotbot.workers if worker.alive)


def test_cluster_move_half_at_a_time_stays_up():
    """The February 1997 move: 'HotBot was physically moved ... without
    ever being down, by moving half of the cluster at a time.'"""
    hotbot = make_hotbot(n_workers=6, failure_mode="fast-restart",
                         fast_restart_s=1e9)  # trucks are slow
    # first half leaves
    for partition in (0, 1, 2):
        hotbot.crash_worker(partition, auto_restart=False)
    mid_move = ask(hotbot)
    assert mid_move.partial and mid_move.hits
    assert mid_move.coverage > 0.3
    # first half arrives and restarts; second half leaves
    for partition in (0, 1, 2):
        hotbot.cluster.env.process(hotbot._fast_restart(partition))
    hotbot.config.fast_restart_s = 1.0
    hotbot.run(until=hotbot.cluster.env.now + 5.0)
    # note: the _fast_restart scheduled above used the old huge delay;
    # redo with quick restarts for test brevity
    hotbot2 = make_hotbot(n_workers=6, fast_restart_s=2.0)
    for partition in (0, 1, 2):
        hotbot2.crash_worker(partition)
    hotbot2.run(until=hotbot2.cluster.env.now + 5.0)
    for partition in (3, 4, 5):
        hotbot2.crash_worker(partition)
    moved = ask(hotbot2)
    assert moved.hits  # never fully down
    hotbot2.run(until=hotbot2.cluster.env.now + 10.0)
    final = ask(hotbot2)
    assert not final.partial


def test_informix_serializes_at_capacity():
    """The ACID database serves ~400 requests/second; a burst above
    that queues rather than degrading."""
    hotbot = make_hotbot(db_capacity_rps=100.0)
    env = hotbot.cluster.env

    def burst(env):
        start = env.now
        events = [hotbot.submit(["w1"], f"user{i}") for i in range(50)]
        yield env.all_of(events)
        return env.now - start

    elapsed = hotbot.run_until(env.process(burst(env)))
    # 50 DB requests at 100/s => at least ~0.5 s serialized at the DB
    assert elapsed >= 0.45
    assert hotbot.database.requests == 50


def test_informix_failover_blocks_then_recovers():
    """ACID never gives approximate answers: during failover queries
    wait, then complete."""
    hotbot = make_hotbot(db_failover_s=3.0)
    env = hotbot.cluster.env
    hotbot.database.fail_primary()
    reply = hotbot.submit(["w1"])
    result = hotbot.run_until(reply)
    assert result.hits is not None
    assert env.now >= 3.0  # had to wait out the failover
    assert hotbot.database.failovers == 1


def test_weighted_partitions_match_node_speeds():
    hotbot = HotBot(config=HotBotConfig(n_workers=2, n_docs=600),
                    node_speeds=[2.0, 1.0], seed=8)
    sizes = hotbot.partition_map.partition_sizes()
    assert sizes[0] > 1.5 * sizes[1]
    # faster node's bigger partition still answers in similar time:
    # work scales with postings but speed divides it
    result = ask(hotbot, terms=("w1",))
    assert result.partitions_answered == 2


def test_node_speed_mismatch_validated():
    with pytest.raises(ValueError):
        HotBot(config=HotBotConfig(n_workers=3), node_speeds=[1.0])
