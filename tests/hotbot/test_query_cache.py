"""Tests for HotBot's recent-searches cache and incremental delivery."""

import pytest

from repro.hotbot.index import SearchHit
from repro.hotbot.query_cache import QueryCache, normalize_query
from repro.hotbot.service import HotBot, HotBotConfig


def hits(n):
    return [SearchHit(i, f"http://d/{i}", float(100 - i))
            for i in range(n)]


# -- unit: the cache itself --------------------------------------------------

def test_normalize_query_canonicalizes():
    assert normalize_query(["B", "a", "b"]) == ("a", "b")
    assert normalize_query(["a", "b"]) == normalize_query(["b", "A"])


def test_miss_then_hit():
    cache = QueryCache()
    assert cache.get_page(["a"], 0, 10) is None
    cache.store(["a"], hits(50))
    page = cache.get_page(["a"], 0, 10)
    assert [hit.doc_id for hit in page] == list(range(10))


def test_incremental_delivery_pages_from_one_fetch():
    cache = QueryCache(depth=50)
    cache.store(["a"], hits(50))
    page2 = cache.get_page(["a"], 10, 10)
    assert [hit.doc_id for hit in page2] == list(range(10, 20))
    assert cache.incremental_hits == 1


def test_shallow_cached_list_misses_deep_pages():
    cache = QueryCache(depth=100)
    cache.store(["a"], hits(100))
    # asking past the cached depth cannot be served
    assert cache.get_page(["a"], 95, 10) is None


def test_exhausted_result_list_serves_any_page():
    """A query with only 7 total results: page 2 is validly empty."""
    cache = QueryCache(depth=100)
    cache.store(["rare"], hits(7))
    assert cache.get_page(["rare"], 0, 10) == hits(7)[:10]
    assert cache.get_page(["rare"], 10, 10) == []


def test_validation_and_flush():
    cache = QueryCache()
    with pytest.raises(ValueError):
        QueryCache(depth=0)
    with pytest.raises(ValueError):
        cache.get_page(["a"], -1, 10)
    cache.store(["a"], hits(5))
    assert cache.entries == 1
    assert cache.flush() == 1
    assert cache.get_page(["a"], 0, 5) is None


def test_lru_eviction_by_bytes():
    cache = QueryCache(capacity_bytes=96 * 60)  # room for ~60 hits
    cache.store(["a"], hits(50))
    cache.store(["b"], hits(50))  # evicts a
    assert cache.get_page(["a"], 0, 10) is None
    assert cache.get_page(["b"], 0, 10) is not None


# -- integrated: through the HotBot front end --------------------------------------

def make_hotbot(**overrides):
    defaults = dict(n_workers=4, n_docs=400, gather_timeout_s=1.0)
    defaults.update(overrides)
    return HotBot(config=HotBotConfig(**defaults), seed=21)


def test_repeated_query_served_from_cache():
    hotbot = make_hotbot()
    first = hotbot.run_until(hotbot.submit(["w3", "w7"]))
    assert not first.from_cache
    before = sum(worker.queries_served for worker in hotbot.workers)
    second = hotbot.run_until(hotbot.submit(["w3", "w7"]))
    assert second.from_cache
    assert [h.doc_id for h in second.hits] == \
        [h.doc_id for h in first.hits]
    after = sum(worker.queries_served for worker in hotbot.workers)
    assert after == before  # partitions untouched
    assert hotbot.cache_served == 1


def test_page_two_is_incremental_delivery():
    hotbot = make_hotbot()
    page1 = hotbot.run_until(hotbot.submit(["w3"], offset=0))
    page2 = hotbot.run_until(hotbot.submit(["w3"], offset=10))
    assert page2.from_cache
    ids1 = {hit.doc_id for hit in page1.hits}
    ids2 = {hit.doc_id for hit in page2.hits}
    assert not ids1 & ids2  # disjoint pages
    if page2.hits:
        assert min(hit.score for hit in page1.hits) >= \
            max(hit.score for hit in page2.hits)


def test_partial_answers_are_not_cached():
    hotbot = make_hotbot(fast_restart_s=1e9)
    hotbot.crash_worker(0, auto_restart=False)
    degraded = hotbot.run_until(hotbot.submit(["w3"]))
    assert degraded.partial
    again = hotbot.run_until(hotbot.submit(["w3"]))
    assert not again.from_cache  # never serves a degraded snapshot


def test_query_term_order_irrelevant_for_cache():
    hotbot = make_hotbot()
    hotbot.run_until(hotbot.submit(["w3", "w7"]))
    reordered = hotbot.run_until(hotbot.submit(["w7", "w3"]))
    assert reordered.from_cache
