"""Tests for the hardened request path: exponential backoff with
deterministic jitter, per-request deadline propagation, worker-side
expired-request shedding, admission control, and the structured
spawn-failure log."""

import pytest

from repro.core.manager_stub import DispatchError, ManagerStub
from repro.core.messages import WorkEnvelope
from repro.core.worker_stub import WorkerStub
from repro.sim.cluster import Cluster

from tests.core.conftest import fast_config, make_fabric, make_record


def make_stub(config=None, owner="fe0", seed=7):
    cluster = Cluster(seed=seed)
    return ManagerStub(cluster, config or fast_config(), owner,
                       cluster.streams.stream(f"lottery:{owner}"))


# -- backoff ------------------------------------------------------------------

def test_backoff_grows_exponentially_and_caps():
    config = fast_config(dispatch_backoff_base_s=0.1,
                         dispatch_backoff_factor=2.0,
                         dispatch_backoff_cap_s=0.5,
                         dispatch_backoff_jitter=0.0)
    stub = make_stub(config)
    delays = [stub._backoff_delay(n) for n in range(1, 6)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_backoff_jitter_bounded_and_deterministic():
    config = fast_config(dispatch_backoff_base_s=0.1,
                         dispatch_backoff_jitter=0.5)
    one = make_stub(config, seed=3)
    two = make_stub(config, seed=3)
    delays_one = [one._backoff_delay(1) for _ in range(20)]
    delays_two = [two._backoff_delay(1) for _ in range(20)]
    assert delays_one == delays_two  # same seed, same owner => identical
    for delay in delays_one:
        assert 0.075 <= delay <= 0.125  # base * (1 ± jitter/2)
    assert len(set(delays_one)) > 1  # it actually jitters


def test_backoff_streams_differ_across_frontends():
    config = fast_config(dispatch_backoff_jitter=0.5)
    fe0 = make_stub(config, owner="fe0", seed=3)
    fe1 = make_stub(config, owner="fe1", seed=3)
    assert [fe0._backoff_delay(1) for _ in range(5)] != \
        [fe1._backoff_delay(1) for _ in range(5)]


# -- deadline propagation -----------------------------------------------------

def test_envelope_carries_deadline(monkeypatch):
    captured = []
    original = WorkerStub.submit

    def capture(self, envelope):
        captured.append(envelope)
        return original(self, envelope)

    monkeypatch.setattr(WorkerStub, "submit", capture)
    fabric = make_fabric(config=fast_config(dispatch_deadline_s=4.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    start = fabric.cluster.env.now
    reply = fabric.submit(make_record())
    fabric.cluster.env.run(until=reply)
    assert captured
    deadline_at = captured[0].deadline_at
    assert deadline_at is not None
    assert deadline_at <= start + 4.0 + 0.5  # submit overheads only


def test_default_deadline_is_full_attempt_budget(monkeypatch):
    """With no explicit deadline the behavior matches the seed: the
    budget is attempts x timeout, so the first attempt's timer is the
    plain dispatch timeout."""
    captured = []
    original = WorkerStub.submit

    def capture(self, envelope):
        captured.append(envelope)
        return original(self, envelope)

    monkeypatch.setattr(WorkerStub, "submit", capture)
    fabric = make_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    config = fabric.config
    reply = fabric.submit(make_record())
    fabric.cluster.env.run(until=reply)
    budget = config.dispatch_attempts * config.dispatch_timeout_s
    assert captured[0].deadline_at == pytest.approx(
        captured[0].submitted_at + budget, abs=budget)


def test_deadline_exhaustion_fails_fast():
    """Every worker swallows requests (partitioned): a 4 s deadline must
    end the dispatch well before the 2 x 3 s attempt budget would."""
    fabric = make_fabric(config=fast_config(dispatch_deadline_s=4.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    for stub in fabric.alive_workers():
        stub.partition(60.0)
    frontend = fabric.alive_frontends()[0]
    start = fabric.cluster.env.now
    reply = fabric.submit(make_record())
    response = fabric.cluster.env.run(until=reply)
    elapsed = fabric.cluster.env.now - start
    assert response.status == "fallback"  # BASE approximate answer
    assert elapsed <= 4.0 + 1.0
    assert frontend.stub.deadline_expiries + frontend.stub.timeouts >= 1


def test_retries_wait_backoff_between_attempts():
    fabric = make_fabric(config=fast_config(
        dispatch_deadline_s=5.0, dispatch_timeout_s=1.0,
        dispatch_backoff_base_s=0.2, dispatch_backoff_jitter=0.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    for stub in fabric.alive_workers():
        stub.partition(60.0)
    reply = fabric.submit(make_record())
    fabric.cluster.env.run(until=reply)
    frontend = fabric.alive_frontends()[0]
    assert frontend.stub.retries >= 1
    assert frontend.stub.backoff_waits >= 1


# -- worker-side shedding -----------------------------------------------------

def envelope_with_deadline(fabric, deadline_at):
    env = fabric.cluster.env
    record = make_record()
    from repro.tacc.content import Content
    from repro.tacc.worker import TACCRequest
    content = Content(record.url, record.mime, b"x" * record.size_bytes)
    return WorkEnvelope(
        request_id=1,
        tacc_request=TACCRequest(inputs=[content], params={},
                                 user_id="c"),
        reply=env.event(), submitted_at=env.now, input_bytes=100,
        expected_cost_s=0.04, deadline_at=deadline_at)


def test_worker_sheds_expired_requests_when_enabled():
    fabric = make_fabric(config=fast_config(shed_expired_requests=True))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    worker = fabric.alive_workers()[0]
    env = fabric.cluster.env
    expired = envelope_with_deadline(fabric, env.now - 1.0)
    assert worker.submit(expired)
    fabric.cluster.run(until=env.now + 2.0)
    assert worker.expired == 1
    assert not expired.reply.triggered
    live = envelope_with_deadline(fabric, env.now + 30.0)
    assert worker.submit(live)
    fabric.cluster.run(until=env.now + 2.0)
    assert live.reply.triggered


def test_worker_serves_expired_requests_by_default():
    """The seed behavior is preserved: without the opt-in flag, a stale
    deadline is ignored."""
    fabric = make_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    worker = fabric.alive_workers()[0]
    env = fabric.cluster.env
    stale = envelope_with_deadline(fabric, env.now - 1.0)
    assert worker.submit(stale)
    fabric.cluster.run(until=env.now + 2.0)
    assert worker.expired == 0
    assert stale.reply.triggered


# -- admission control --------------------------------------------------------

def test_frontend_sheds_when_netstack_backlogged():
    fabric = make_fabric(config=fast_config(
        admission_max_backlog_s=0.5))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    frontend = fabric.alive_frontends()[0]
    # exhaust the thread pool and pile seconds of work on the netstack
    while frontend.threads.length:
        frontend.threads.get_nowait()
    frontend.netstack._busy_until = fabric.cluster.env.now + 5.0
    reply = fabric.submit(make_record())
    assert reply.triggered
    response = fabric.cluster.env.run(until=reply)
    assert response.status == "error"
    assert response.path == "shed"
    assert frontend.shed == 1


def test_frontend_admits_when_threads_free():
    fabric = make_fabric(config=fast_config(
        admission_max_backlog_s=0.5))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    frontend = fabric.alive_frontends()[0]
    frontend.netstack._busy_until = fabric.cluster.env.now + 5.0
    reply = fabric.submit(make_record())  # threads free => admitted
    response = fabric.cluster.env.run(until=reply)
    assert response.status in ("ok", "fallback")
    assert frontend.shed == 0


def test_admission_control_off_by_default():
    fabric = make_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    frontend = fabric.alive_frontends()[0]
    while frontend.threads.length:
        frontend.threads.get_nowait()
    frontend.netstack._busy_until = fabric.cluster.env.now + 100.0
    assert not frontend._should_shed()


# -- spawn-failure log --------------------------------------------------------

def test_spawn_failure_log_records_exception_context(monkeypatch):
    fabric = make_fabric(config=fast_config(spawn_damping_s=0.5))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)

    def broken_spawn(worker_type, node=None, **kwargs):
        raise RuntimeError("no binary for test-worker on this node")

    monkeypatch.setattr(fabric, "spawn_worker", broken_spawn)
    manager = fabric.manager
    fabric.alive_workers()[0].kill()
    # demand triggers an on-demand spawn, which hits the broken exec
    reply = fabric.submit(make_record())
    fabric.cluster.env.run(until=reply)
    assert manager.spawn_failures >= 1
    assert manager.spawn_failure_log
    failure = manager.spawn_failure_log[0]
    assert failure.reason == "RuntimeError"
    assert "no binary" in failure.detail
    assert failure.worker_type == "test-worker"
    assert failure.node_name
    assert "RuntimeError" in repr(failure)
    assert manager.spawn_failures == len(manager.spawn_failure_log)


def test_spawn_failure_log_records_node_down():
    fabric = make_fabric(config=fast_config(spawn_damping_s=0.5))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    manager = fabric.manager
    # crash the chosen node inside the SPAWN_DELAY window
    target = fabric.cluster.free_node()
    manager.spawn(manager._spawn_after_delay("test-worker", target))
    target.crash()
    fabric.cluster.run(until=fabric.cluster.env.now + 3.0)
    assert manager.spawn_failure_log
    failure = manager.spawn_failure_log[0]
    assert failure.reason == "node-down"
    assert failure.node_name == target.name
