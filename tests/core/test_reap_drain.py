"""Reap must not drop accepted work: victim preference and queue drain.

Regression tests for the reap path — previously ``_reap_one`` killed
its victim outright, silently dropping every queued (already accepted)
request.  Now it prefers empty-queue victims, and a busy victim is
taken out of rotation, drained to same-type peers, and only then
killed."""

from repro.core.messages import RegisterWorker, WorkEnvelope
from repro.tacc.content import Content
from repro.tacc.worker import TACCRequest

from tests.core.conftest import TestWorker, fast_config, make_fabric


def boot(workers=2, config=None, seed=7):
    fabric = make_fabric(config=config or fast_config(), seed=seed)
    fabric.start_manager()
    fabric.start_frontend()
    for _ in range(workers):
        fabric.spawn_worker("test-worker")
    fabric.cluster.run(until=2.0)
    return fabric


def make_envelope(fabric, request_id=1):
    content = Content(f"http://t/img{request_id}.jpg", "image/jpeg",
                      b"x" * 2048)
    request = TACCRequest(inputs=[content], params={}, user_id="client0")
    return WorkEnvelope(
        request_id=request_id,
        tacc_request=request,
        reply=fabric.cluster.env.event(),
        submitted_at=fabric.cluster.env.now,
        input_bytes=content.size,
        expected_cost_s=TestWorker.cost_s,
    )


def test_reap_prefers_the_idle_victim():
    fabric = boot(workers=2)
    manager = fabric.manager
    busy = fabric.workers["test-worker.1"]
    idle = fabric.workers["test-worker.2"]
    # two envelopes: the first goes straight to the service loop's
    # pending get(), the second actually queues
    for index in range(2):
        assert busy.submit(make_envelope(fabric, request_id=index))

    manager._reap_one(manager.workers_of_type("test-worker"))

    assert not idle.alive          # the empty queue was the cheap kill
    assert busy.alive
    assert manager.reaps == 1
    assert manager.reap_drops == 0


def test_busy_victim_is_drained_to_peers_not_dropped():
    fabric = boot(workers=2)
    manager = fabric.manager
    victim = fabric.workers["test-worker.1"]
    peer = fabric.workers["test-worker.2"]
    envelopes = [make_envelope(fabric, request_id=i) for i in range(3)]
    for envelope in envelopes:
        assert victim.submit(envelope)

    # force the loaded worker to be the victim: it is the only candidate
    manager._reap_one([manager.workers[victim.name]])
    fabric.cluster.run(until=fabric.cluster.env.now + 5.0)

    assert not victim.alive
    assert manager.reap_drops == 0
    assert manager.reap_redispatches >= 2
    # every accepted request was answered, none lost to the reap
    assert all(envelope.reply.triggered for envelope in envelopes)
    assert peer.served >= 2


def test_drain_blocks_victim_reregistration():
    fabric = boot(workers=2)
    manager = fabric.manager
    victim = fabric.workers["test-worker.1"]
    for index in range(2):
        assert victim.submit(make_envelope(fabric, request_id=index))

    manager._reap_one([manager.workers[victim.name]])
    assert victim.name in manager._reaping
    registration = RegisterWorker(
        worker_name=victim.name, worker_type=victim.worker_type,
        node_name=victim.node.name, stub=victim)
    # the victim's stub re-registering mid-drain must be refused, or
    # the next beacon would undo the reap
    assert manager.accept_worker(registration, endpoint=None) is False

    fabric.cluster.run(until=fabric.cluster.env.now + 5.0)
    assert victim.name not in manager.workers
    assert victim.name not in manager._reaping
    assert not victim.alive


def test_drain_deadline_bounds_a_wedged_victim():
    config = fast_config(reap_drain_timeout_s=1.0)
    fabric = boot(workers=1, config=config)
    manager = fabric.manager
    victim = fabric.workers["test-worker.1"]
    victim.gray.hang(fabric.cluster.env.now)
    for index in range(3):
        assert victim.submit(make_envelope(fabric, request_id=index))
    fabric.cluster.run(until=fabric.cluster.env.now + 0.1)  # wedge it

    # no peers to drain to and the head is held forever: the deadline
    # fires, leftover work is counted dropped, and the victim still dies
    manager._reap_one([manager.workers[victim.name]])
    fabric.cluster.run(until=fabric.cluster.env.now + 5.0)

    assert not victim.alive
    assert manager.reap_drops >= 1
    assert victim.name not in manager._reaping
