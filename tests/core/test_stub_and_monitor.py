"""Unit tests for the manager stub's hint cache and the monitor."""

import pytest

from repro.core.config import SNSConfig
from repro.core.manager_stub import AdvertState, ManagerStub
from repro.core.messages import ManagerBeacon, WorkerAdvert
from repro.core.monitor import Monitor
from repro.sim.cluster import Cluster
from repro.sim.failures import FaultInjector
from repro.sim.rng import RandomStreams

from tests.core.conftest import fast_config, make_fabric, make_record


def advert(name="w1", worker_type="test-worker", queue_avg=0.0,
           report_at=0.0, stub=None):
    return WorkerAdvert(
        worker_name=name, worker_type=worker_type, node_name="n0",
        stub=stub, queue_avg=queue_avg, last_report_at=report_at)


def beacon(adverts, incarnation=1, at=0.0):
    return ManagerBeacon(
        manager_id="manager.1", incarnation=incarnation,
        manager=None, sent_at=at,
        adverts={a.worker_name: a for a in adverts})


def make_stub(config=None):
    cluster = Cluster(seed=3)
    stub = ManagerStub(cluster, config or fast_config(), "fe0",
                       cluster.streams.stream("lottery"))
    return cluster, stub


# -- beacon cache ----------------------------------------------------------------

def test_observe_beacon_caches_adverts():
    cluster, stub = make_stub()
    is_new = stub.observe_beacon(beacon([advert("w1"), advert("w2")]))
    assert is_new
    assert set(stub.adverts) == {"w1", "w2"}
    assert not stub.observe_beacon(beacon([advert("w1")]))


def test_beacon_removes_dead_workers_from_cache():
    """'The manager reports distiller failures to the manager stubs,
    which update their caches.'"""
    cluster, stub = make_stub()
    stub.observe_beacon(beacon([advert("w1"), advert("w2")]))
    stub.observe_beacon(beacon([advert("w2")]))
    assert set(stub.adverts) == {"w2"}


def test_new_incarnation_detected():
    cluster, stub = make_stub()
    assert stub.observe_beacon(beacon([], incarnation=1))
    assert not stub.observe_beacon(beacon([], incarnation=1))
    assert stub.observe_beacon(beacon([], incarnation=2))


def test_beacon_age_tracks_staleness():
    cluster, stub = make_stub()
    assert stub.beacon_age() == float("inf")
    stub.observe_beacon(beacon([]))

    def advance(env):
        yield env.timeout(4.0)

    cluster.env.run(until=cluster.env.process(advance(cluster.env)))
    assert stub.beacon_age() == pytest.approx(4.0)


# -- delta estimation (the Section 4.5 oscillation fix) --------------------------------

def test_effective_queue_extrapolates_growth():
    state = AdvertState(advert(queue_avg=4.0, report_at=0.0), now=0.0)
    state.refresh(advert(queue_avg=8.0, report_at=1.0), now=1.0)
    # slope = 4 per second; 0.5 s later the estimate should be ~10
    assert state.effective_queue(1.5, estimate_deltas=True) == \
        pytest.approx(10.0)
    # without estimation, the stale value is used as-is
    assert state.effective_queue(1.5, estimate_deltas=False) == \
        pytest.approx(8.0)


def test_effective_queue_counts_local_dispatches():
    state = AdvertState(advert(queue_avg=2.0), now=0.0)
    state.sent_since_report = 3
    assert state.effective_queue(0.0, estimate_deltas=True) == \
        pytest.approx(5.0)


def test_effective_queue_never_negative():
    state = AdvertState(advert(queue_avg=6.0, report_at=0.0), now=0.0)
    state.refresh(advert(queue_avg=1.0, report_at=1.0), now=1.0)
    assert state.effective_queue(10.0, estimate_deltas=True) == 0.0


def test_refresh_without_new_report_keeps_slope_window():
    state = AdvertState(advert(queue_avg=4.0, report_at=0.0), now=0.0)
    state.sent_since_report = 2
    # same report re-broadcast: not a new sample
    state.refresh(advert(queue_avg=4.0, report_at=0.0), now=0.5)
    assert state.sent_since_report == 2
    assert state.prev_queue_avg is None


# -- lottery -----------------------------------------------------------------------------

def test_lottery_prefers_short_queues():
    cluster, stub = make_stub()
    stub.observe_beacon(beacon([
        advert("idle", queue_avg=0.0),
        advert("busy", queue_avg=9.0),
    ]))
    picks = [stub.pick("test-worker").advert.worker_name
             for _ in range(2000)]
    idle_share = picks.count("idle") / len(picks)
    assert idle_share > 0.9


def test_lottery_still_spreads_over_equal_queues():
    cluster, stub = make_stub()
    stub.observe_beacon(beacon([
        advert("a", queue_avg=2.0),
        advert("b", queue_avg=2.0),
    ]))
    picks = [stub.pick("test-worker").advert.worker_name
             for _ in range(2000)]
    assert 0.4 < picks.count("a") / len(picks) < 0.6


def test_pick_returns_none_for_unknown_type():
    cluster, stub = make_stub()
    stub.observe_beacon(beacon([advert("w1")]))
    assert stub.pick("nonexistent-type") is None


# -- oscillation ablation ------------------------------------------------------------------

def queue_oscillation(estimate_deltas, seed=11):
    """Run 2 workers near saturation and measure queue-length swing."""
    from repro.sim.rng import RandomStreams
    from repro.workload.playback import PlaybackEngine

    fabric = make_fabric(
        n_nodes=8, seed=seed,
        config=fast_config(estimate_queue_deltas=estimate_deltas,
                           spawn_threshold=1e9,   # fix the worker count
                           report_interval_s=1.0,
                           beacon_interval_s=1.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(fabric.cluster.env, fabric.submit,
                            rng=RandomStreams(seed).stream("pb"),
                            timeout_s=60.0)
    pool = [make_record(i) for i in range(30)]
    fabric.cluster.env.process(engine.constant_rate(45.0, 60.0, pool))
    # sample each worker's instantaneous queue every 0.5 s
    samples = {stub.name: [] for stub in fabric.alive_workers()}

    def sampler(env):
        while env.now < 60.0:
            yield env.timeout(0.5)
            for stub in fabric.alive_workers():
                samples[stub.name].append(stub.load)

    fabric.cluster.env.process(sampler(fabric.cluster.env))
    fabric.cluster.run(until=70.0)
    # swing = mean absolute sample-to-sample change, averaged over workers
    swings = []
    for series in samples.values():
        diffs = [abs(b - a) for a, b in zip(series, series[1:])]
        if diffs:
            swings.append(sum(diffs) / len(diffs))
    return sum(swings) / len(swings)


def test_delta_estimation_damps_queue_oscillation():
    """Section 4.5: stale-only hints cause 'rapid oscillations in queue
    lengths'; the running-estimate fix eliminates them."""
    stale = queue_oscillation(estimate_deltas=False)
    estimated = queue_oscillation(estimate_deltas=True)
    assert estimated < stale * 0.8, (stale, estimated)


# -- monitor -----------------------------------------------------------------------------------

def test_monitor_records_queue_series(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=5.0)
    monitor = fabric.monitor
    assert monitor.beacons_heard >= 8
    names = monitor.worker_names()
    assert len(names) == 1
    series = monitor.queue_series_for(names[0])
    assert len(series) >= 5
    times = [t for t, _ in series]
    assert times == sorted(times)


def test_monitor_pages_on_silent_component(fabric):
    """'The monitor can page or email the system operator ... if it
    stops receiving reports from some component.'"""
    pages = []
    fabric.boot(n_frontends=0, initial_workers={"test-worker": 1},
                with_monitor=False)
    fabric.start_monitor(on_alert=pages.append)
    fabric.cluster.run(until=3.0)
    # kill the manager; with no front ends, nobody restarts it
    fabric.manager.kill()
    fabric.cluster.run(until=20.0)
    page_components = {alert.component for alert in fabric.monitor.pages()}
    assert fabric.manager.name in page_components
    assert pages  # callback fired


def test_monitor_render_mentions_components(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=3.0)
    panel = fabric.monitor.render()
    assert "manager.1" in panel
    assert "test-worker.1" in panel
    assert "SNS monitor" in panel
