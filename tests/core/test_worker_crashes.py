"""Tests for undisciplined worker-code crashes (Section 2.2.5).

"The minimal restrictions on worker code allow worker authors to focus
instead on the content of the service, even using off-the-shelf code ...
[worker code] can, in fact, crash without taking the system down."
"""

import pytest

from repro.core.fabric import SNSFabric
from repro.sim.cluster import Cluster
from repro.tacc.registry import WorkerRegistry
from repro.tacc.worker import Transformer

from tests.core.conftest import DispatchService, fast_config, make_record


class BuggyWorker(Transformer):
    """Off-the-shelf code with a latent crash bug."""

    worker_type = "test-worker"  # same type the DispatchService uses

    def work_estimate(self, request):
        return 0.02

    def transform(self, content, request):
        if b"crashme" in request.content.url.encode() or \
                "crashme" in request.content.url:
            raise ZeroDivisionError("segfault stand-in")
        return content.derive(content.data[: max(1, content.size // 2)],
                              worker=self.worker_type)

    def simulate(self, request):
        return self.transform(request.content, request)


def make_buggy_fabric():
    cluster = Cluster(seed=12)
    cluster.add_nodes(8)
    registry = WorkerRegistry()
    registry.register_class(BuggyWorker)
    fabric = SNSFabric(cluster, registry,
                       fast_config(spawn_damping_s=2.0),
                       DispatchService())
    return fabric


def crash_record():
    from repro.workload.trace import TraceRecord
    return TraceRecord(0.0, "c", "http://site/crashme.jpg",
                       "image/jpeg", 4096)


def test_worker_code_crash_kills_worker_not_system():
    fabric = make_buggy_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    victim_pool = fabric.alive_workers("test-worker")
    assert len(victim_pool) == 2
    # the poisoned request crashes whichever worker draws it — and the
    # front end's timeout retry feeds it to the second worker too (the
    # paper saw exactly this: its HTML distiller "had been restarted
    # several times over a period of hours" by pathological pages)
    reply = fabric.submit(crash_record())
    fabric.cluster.run(until=20.0)
    dead = sum(1 for stub in victim_pool if not stub.alive)
    assert 1 <= dead <= 2
    # the manager noticed through the broken connections
    assert fabric.manager.worker_failures_detected >= 1
    # the client got an answer (timeout -> retry -> fallback)
    assert reply.triggered
    # a clean request triggers on-demand respawn and gets served
    ok = fabric.cluster.env.run(until=fabric.submit(make_record()))
    assert ok.status in ("ok", "fallback")
    assert fabric.alive_workers("test-worker")


def test_repeated_poison_requests_do_not_wedge_the_service():
    """A crash-inducing URL arriving repeatedly kills workers as fast as
    they touch it, but on-demand respawn keeps the class alive and
    clean requests keep flowing."""
    fabric = make_buggy_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)

    def mixed_load(env):
        for index in range(15):
            yield env.timeout(2.0)
            if index % 3 == 0:
                fabric.submit(crash_record())
            else:
                fabric.submit(make_record(index))

    fabric.cluster.env.process(mixed_load(fabric.cluster.env))
    fabric.cluster.run(until=80.0)
    # workers were killed repeatedly and respawned repeatedly
    assert fabric.manager.spawns >= 3
    assert fabric.manager.worker_failures_detected >= 3
    # clean requests were answered throughout (served or fallback)
    frontend = next(iter(fabric.frontends.values()))
    assert frontend.responses_sent >= 14
    # once the poison stops, the next clean request restores the class
    ok = fabric.cluster.env.run(until=fabric.submit(make_record()))
    assert ok.status == "ok"
    assert fabric.alive_workers("test-worker")
