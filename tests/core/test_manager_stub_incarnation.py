"""Stale-incarnation beacon rejection (the healed-zombie-manager bug).

A manager that was partitioned away — not killed — keeps beaconing its
old incarnation after the heal.  Before this guard, such a beacon would
roll every stub's view back to the deposed manager's stale worker
table: resurrected dead hints at the front ends, and workers
re-registering with a manager that no longer owns the pool.  Stubs now
reject any beacon whose incarnation is below the highest they have
seen.
"""

from repro.core.messages import BEACON_GROUP, ManagerBeacon

from tests.core.conftest import fast_config, make_fabric


def _booted_fabric():
    fabric = make_fabric(config=fast_config())
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=3.0)
    return fabric


def _beacon(manager, incarnation, sent_at, adverts=None):
    return ManagerBeacon(manager_id=manager.name,
                         incarnation=incarnation, manager=manager,
                         sent_at=sent_at, adverts=adverts or {})


def test_manager_stub_rejects_lower_incarnation_beacon():
    fabric = _booted_fabric()
    stub = fabric.alive_frontends()[0].stub
    manager = fabric.manager
    current = stub.manager_incarnation
    adverts_before = dict(stub.adverts)
    seen_at = stub.last_beacon_at

    stale = _beacon(manager, current - 1, fabric.cluster.env.now)
    assert stub.observe_beacon(stale) is False
    # nothing moved: not the incarnation, not the hints, not liveness
    assert stub.manager_incarnation == current
    assert stub.last_beacon_at == seen_at
    assert set(stub.adverts) == set(adverts_before)
    assert stub.stale_beacons_rejected == 1


def test_manager_stub_accepts_equal_and_higher_incarnations():
    fabric = _booted_fabric()
    stub = fabric.alive_frontends()[0].stub
    manager = fabric.manager
    current = stub.manager_incarnation
    now = fabric.cluster.env.now

    # the same incarnation refreshes liveness without re-registration
    assert stub.observe_beacon(_beacon(manager, current, now)) is False
    assert stub.last_beacon_at == now
    # a successor's higher incarnation is a new manager: re-register
    assert stub.observe_beacon(_beacon(manager, current + 1, now)) is True
    assert stub.manager_incarnation == current + 1
    assert stub.stale_beacons_rejected == 0
    # and now the old incarnation is the stale one
    assert stub.observe_beacon(_beacon(manager, current, now)) is False
    assert stub.stale_beacons_rejected == 1


def test_worker_stub_ignores_stale_beacons_on_the_wire():
    """End to end through the multicast group: a deposed manager's
    lower-incarnation beacon must not make workers re-register with
    it."""
    fabric = _booted_fabric()
    manager = fabric.manager
    worker = fabric.alive_workers()[0]
    assert worker._highest_incarnation == manager.incarnation

    zombie = _beacon(manager, manager.incarnation - 1,
                     fabric.cluster.env.now)
    fabric.cluster.multicast.group(BEACON_GROUP).publish(
        zombie, sender=manager.name)
    fabric.cluster.run(until=fabric.cluster.env.now + 1.0)
    assert worker.stale_beacons_ignored >= 1
    assert worker._highest_incarnation == manager.incarnation
    # the real manager still owns the registration
    assert worker.name in manager.workers


def test_lease_bound_rides_the_beacon():
    """Soft managers promise no staleness bound (lease_until None);
    a lease-carrying beacon installs the bound the stub stalls on."""
    fabric = _booted_fabric()
    stub = fabric.alive_frontends()[0].stub
    manager = fabric.manager
    now = fabric.cluster.env.now
    assert stub.lease_until is None
    assert stub.hints_usable(now + 1e9)  # soft state: no bound

    leased = ManagerBeacon(manager_id=manager.name,
                           incarnation=stub.manager_incarnation,
                           manager=manager, sent_at=now, adverts={},
                           lease_until=now + 2.0)
    stub.observe_beacon(leased)
    assert stub.lease_until == now + 2.0
    assert stub.hints_usable(now + 1.9)
    assert not stub.hints_usable(now + 2.1)
