"""Self-tuning tests: spawn threshold H, damping D, reaping, overflow
(Sections 2.2.3 and 4.5)."""

import pytest

from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


def drive(fabric, rate, duration, seed=1):
    engine = PlaybackEngine(fabric.cluster.env, fabric.submit,
                            rng=RandomStreams(seed).stream("pb"),
                            timeout_s=30.0)
    pool = [make_record(i) for i in range(30)]
    fabric.cluster.env.process(engine.constant_rate(rate, duration, pool))
    return engine


def test_overload_triggers_spawn(fabric):
    """Offered load beyond one worker's capacity grows its queue past H
    and the manager spawns another worker."""
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    drive(fabric, rate=45.0, duration=60.0)  # ~25/s per worker capacity
    fabric.cluster.run(until=70.0)
    assert fabric.manager.spawns >= 1
    assert len(fabric.alive_workers("test-worker")) >= 2


def test_spawn_damping_limits_spawn_rate():
    """With damping D, spawns are at least D seconds apart per type."""
    fabric = make_fabric(n_nodes=12,
                         config=fast_config(spawn_damping_s=8.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    drive(fabric, rate=100.0, duration=40.0)
    spawn_times = []

    original = fabric.spawn_worker

    def recording_spawn(worker_type, node=None, execute_real=None):
        spawn_times.append(fabric.cluster.env.now)
        return original(worker_type, node, execute_real)

    fabric.spawn_worker = recording_spawn
    fabric.cluster.run(until=60.0)
    assert len(spawn_times) >= 2
    gaps = [b - a for a, b in zip(spawn_times, spawn_times[1:])]
    # SPAWN_DELAY adds 1s slack around the D=8s damping window
    assert all(gap >= 7.0 for gap in gaps), gaps


def test_queue_rebalances_after_spawn(fabric):
    """Figure 8(a): a new distiller 'reduced the queue length of the
    first distiller and balanced the load across both distillers within
    five seconds.'"""
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    drive(fabric, rate=40.0, duration=120.0)
    fabric.cluster.run(until=120.0)
    workers = fabric.alive_workers("test-worker")
    assert len(workers) >= 2
    loads = sorted(stub.load for stub in workers)
    # balanced: no worker holds the entire backlog
    assert loads[-1] <= fabric.config.spawn_threshold * 3 + 5


def test_reaping_after_load_subsides():
    fabric = make_fabric(
        n_nodes=10,
        config=fast_config(reap_after_s=6.0, reap_threshold=0.5))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 3})
    fabric.cluster.run(until=2.0)
    # brief load so queues register, then silence
    drive(fabric, rate=10.0, duration=5.0)
    fabric.cluster.run(until=60.0)
    assert fabric.manager.reaps >= 1
    survivors = len(fabric.alive_workers("test-worker"))
    assert survivors >= fabric.config.min_workers_per_type
    assert survivors < 3


def test_overflow_pool_recruited_when_dedicated_exhausted():
    """Section 2.2.3: 'the manager can spawn workers on the overflow
    machines on demand when unexpected load bursts arrive.'"""
    fabric = make_fabric(n_nodes=3, n_overflow=4)
    # nodes: manager+monitor share one, FE one, worker one -> dedicated full
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    drive(fabric, rate=80.0, duration=60.0)
    fabric.cluster.run(until=80.0)
    overflow_workers = [stub for stub in fabric.alive_workers()
                        if stub.node.overflow]
    assert overflow_workers, "burst should recruit overflow nodes"


def test_overflow_disabled_keeps_work_on_dedicated_nodes():
    fabric = make_fabric(n_nodes=3, n_overflow=4,
                         config=fast_config(use_overflow_pool=False))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    drive(fabric, rate=80.0, duration=40.0)
    fabric.cluster.run(until=60.0)
    assert all(not stub.node.overflow for stub in fabric.alive_workers())


def test_reap_prefers_overflow_nodes():
    """'Once the burst subsides, the distillers may be reaped' — and the
    overflow machines are released first."""
    fabric = make_fabric(
        n_nodes=3, n_overflow=2,
        config=fast_config(reap_after_s=5.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    # force a worker onto an overflow node
    overflow_node = fabric.cluster.overflow_nodes[0]
    fabric.spawn_worker("test-worker", overflow_node)
    fabric.cluster.run(until=4.0)
    assert len(fabric.alive_workers("test-worker")) == 2
    # no load at all: reap timer runs out
    fabric.cluster.run(until=40.0)
    survivors = fabric.alive_workers("test-worker")
    assert len(survivors) == 1
    assert not survivors[0].node.overflow


def test_spawn_uses_free_nodes_before_colocating(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    drive(fabric, rate=60.0, duration=60.0)
    fabric.cluster.run(until=70.0)
    workers = fabric.alive_workers("test-worker")
    assert len(workers) >= 2
    nodes = [stub.node.name for stub in workers]
    assert len(set(nodes)) == len(nodes), "workers should spread out"
