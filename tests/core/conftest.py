"""Shared fixtures for SNS-layer tests: a tiny service and test workers."""

import pytest

from repro.core.config import SNSConfig
from repro.core.fabric import SNSFabric
from repro.core.frontend import Response
from repro.core.manager_stub import DispatchError
from repro.sim.cluster import Cluster
from repro.tacc.content import Content
from repro.tacc.registry import WorkerRegistry
from repro.tacc.worker import TACCRequest, Transformer, WorkerError


class TestWorker(Transformer):
    """CPU-bound worker with a fixed 40 ms cost (=> ~25 req/s each)."""

    __test__ = False  # not a pytest class
    worker_type = "test-worker"
    cost_s = 0.040

    def work_estimate(self, request):
        return self.cost_s

    def transform(self, content, request):
        if content.data.startswith(b"PATHOLOGICAL"):
            raise WorkerError(f"cannot process {content.url}")
        return content.derive(content.data[: max(1, content.size // 2)],
                              worker=self.worker_type)

    def simulate(self, request):
        return self.transform(request.content, request)


class DispatchService:
    """Minimal service logic: push every request through one worker type
    and fall back to the original content on dispatch failure (the BASE
    approximate-answer pattern)."""

    worker_type = "test-worker"

    def handle(self, frontend, record):
        content = Content(record.url, record.mime, b"x" * record.size_bytes)
        request = TACCRequest(inputs=[content], params={},
                              user_id=record.client_id)
        try:
            result = yield from frontend.stub.dispatch(
                request, self.worker_type, content.size,
                expected_cost_s=TestWorker.cost_s)
        except (DispatchError, WorkerError):
            return Response(status="fallback", path="original",
                            content=content, size_bytes=content.size)
        return Response(status="ok", path="distilled", content=result,
                        size_bytes=result.size)


def fast_config(**overrides) -> SNSConfig:
    """Config tuned so tests converge in a few simulated seconds."""
    defaults = dict(
        beacon_interval_s=0.5,
        report_interval_s=0.5,
        spawn_threshold=6.0,
        spawn_damping_s=4.0,
        reap_threshold=0.5,
        reap_after_s=10.0,
        dispatch_timeout_s=3.0,
        worker_timeout_s=3.0,
        frontend_connection_overhead_s=0.001,
    )
    defaults.update(overrides)
    return SNSConfig(**defaults)


def make_registry() -> WorkerRegistry:
    registry = WorkerRegistry()
    registry.register_class(TestWorker)
    return registry


def make_fabric(n_nodes=8, n_overflow=0, config=None, seed=7,
                **fabric_kwargs):
    cluster = Cluster(seed=seed)
    cluster.add_nodes(n_nodes)
    if n_overflow:
        cluster.add_nodes(n_overflow, prefix="ovf", overflow=True)
    fabric = SNSFabric(cluster, make_registry(),
                       config or fast_config(), DispatchService(),
                       **fabric_kwargs)
    return fabric


@pytest.fixture
def fabric():
    return make_fabric()


def make_record(index=0, size=10240, mime="image/jpeg"):
    from repro.workload.trace import TraceRecord
    return TraceRecord(
        timestamp=0.0,
        client_id=f"client{index % 50}",
        url=f"http://bench/img{index}.jpg",
        mime=mime,
        size_bytes=size,
    )
