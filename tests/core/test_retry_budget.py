"""The per-front-end retry budget on the dispatch path: retries capped
to a fraction of fresh traffic, legacy unlimited behaviour preserved.

The cluster is built from workers that accept every envelope and never
answer within the dispatch timeout, so every attempt times out and the
retry path is exercised deterministically — including the on-demand
spawns the manager performs mid-dispatch, which produce more equally
stuck workers.
"""

from repro.core.fabric import SNSFabric
from repro.degrade.guards import RetryBudget
from repro.sim.cluster import Cluster
from repro.tacc.registry import WorkerRegistry

from tests.core.conftest import (
    DispatchService,
    TestWorker,
    fast_config,
    make_fabric,
    make_record,
)


class StuckWorker(TestWorker):
    """Accepts everything, answers nothing the dispatcher will wait
    for (a 300 s compute against a 1 s dispatch timeout)."""

    __test__ = False
    worker_type = "test-worker"
    cost_s = 300.0


def budget_config(**overrides):
    defaults = dict(
        dispatch_deadline_s=8.0, dispatch_timeout_s=1.0,
        dispatch_backoff_base_s=0.05, dispatch_backoff_jitter=0.0,
    )
    defaults.update(overrides)
    return fast_config(**defaults)


def make_stuck_fabric(config):
    cluster = Cluster(seed=7)
    cluster.add_nodes(8)
    registry = WorkerRegistry()
    registry.register_class(StuckWorker)
    fabric = SNSFabric(cluster, registry, config, DispatchService())
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    cluster.run(until=2.0)
    return fabric


def test_no_budget_configured_means_legacy_unlimited_retries():
    fabric = make_stuck_fabric(budget_config())
    frontend = fabric.alive_frontends()[0]
    assert frontend.stub.retry_budget is None
    response = fabric.cluster.env.run(until=fabric.submit(make_record()))
    assert response.status == "fallback"
    assert frontend.stub.retries >= 1  # retried without a budget check
    assert frontend.stub.retry_budget_denials == 0


def test_budget_wired_from_config():
    fabric = make_fabric(config=budget_config(retry_budget_ratio=0.1,
                                              retry_budget_cap=5.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    stub = fabric.alive_frontends()[0].stub
    assert isinstance(stub.retry_budget, RetryBudget)
    assert stub.retry_budget.ratio == 0.1
    assert stub.retry_budget.cap == 5.0


def test_exhausted_budget_denies_the_retry_and_fails_over():
    """Ratio 0 with cap 1: one retry ever.  Once it is spent, a failed
    first attempt must fail over instead of re-offering load to a
    cluster that is already saturated."""
    fabric = make_stuck_fabric(
        budget_config(retry_budget_ratio=0.0, retry_budget_cap=1.0,
                      dispatch_attempts=2))
    frontend = fabric.alive_frontends()[0]
    env = fabric.cluster.env
    first = env.run(until=fabric.submit(make_record()))
    assert first.status == "fallback"
    assert frontend.stub.retries == 1  # spent the only token
    start = env.now
    second = env.run(until=fabric.submit(make_record(index=1)))
    assert second.status == "fallback"
    assert frontend.stub.retries == 1  # no second retry happened
    assert frontend.stub.retry_budget.denials == 1
    assert frontend.stub.retry_budget_denials == 1
    # denied retry = one timed-out attempt, no backoff-and-retry cycle
    assert env.now - start < 2.0


def test_generous_budget_never_denies():
    fabric = make_stuck_fabric(
        budget_config(retry_budget_ratio=1.0, retry_budget_cap=10.0))
    frontend = fabric.alive_frontends()[0]
    env = fabric.cluster.env
    for index in range(3):
        response = env.run(until=fabric.submit(make_record(index=index)))
        assert response.status == "fallback"
    assert frontend.stub.retries == 3  # one retry per dispatch
    assert frontend.stub.retry_budget.denials == 0
