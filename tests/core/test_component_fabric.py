"""Unit tests for Component life cycle, SNSFabric edges, FrontEnd
mechanics, and SNSConfig validation."""

import pytest

from repro.core.config import SNSConfig
from repro.core.component import Component
from repro.core.fabric import FabricError
from repro.core.frontend import Response
from repro.core.messages import ManagerBeacon, WorkerAdvert
from repro.sim.cluster import Cluster

from tests.core.conftest import fast_config, make_fabric, make_record


class TickerComponent(Component):
    """Minimal concrete component for life-cycle tests."""

    kind = "ticker"

    def __init__(self, cluster, node, name):
        super().__init__(cluster, node, name)
        self.ticks = 0

    def _start_processes(self):
        self.spawn(self._tick())

    def _tick(self):
        while True:
            yield self.env.timeout(1.0)
            self.ticks += 1


def make_component():
    cluster = Cluster(seed=1)
    node = cluster.add_node("n0")
    return cluster, TickerComponent(cluster, node, "ticker-1")


# -- component life cycle ----------------------------------------------------

def test_start_attaches_and_runs():
    cluster, component = make_component()
    component.start()
    assert component.alive
    assert "ticker-1" in component.node.components
    cluster.run(until=5.5)
    assert component.ticks == 5


def test_double_start_rejected():
    cluster, component = make_component()
    component.start()
    with pytest.raises(RuntimeError):
        component.start()


def test_kill_detaches_stops_and_is_idempotent():
    cluster, component = make_component()
    component.start()
    cluster.run(until=3.5)
    component.kill()
    assert not component.alive
    assert component.killed_at == 3.5
    assert "ticker-1" not in component.node.components
    ticks_at_death = component.ticks
    cluster.run(until=10.0)
    assert component.ticks == ticks_at_death
    component.kill()  # second kill is a no-op
    assert component.killed_at == 3.5


def test_on_death_callbacks_fire():
    cluster, component = make_component()
    deaths = []
    component.on_death(deaths.append)
    component.start()
    component.kill()
    assert deaths == [component]


def test_spawn_prunes_dead_processes():
    cluster, component = make_component()
    component.start()

    def one_shot(env):
        yield env.timeout(0.1)

    for _ in range(200):
        component.spawn(one_shot(cluster.env))
        cluster.run(until=cluster.env.now + 0.2)
    assert len(component._procs) < 100


# -- fabric edges -----------------------------------------------------------------

def test_fabric_double_manager_rejected(fabric):
    fabric.start_manager()
    with pytest.raises(FabricError):
        fabric.start_manager()


def test_fabric_unknown_worker_type_rejected(fabric):
    with pytest.raises(FabricError):
        fabric.spawn_worker("no-such-type")


def test_fabric_placement_on_down_node_rejected(fabric):
    node = fabric.cluster.node("node0")
    node.crash()
    with pytest.raises(FabricError):
        fabric.start_frontend(node=node)


def test_fabric_submit_with_no_frontends_never_fires(fabric):
    reply = fabric.submit(make_record())
    fabric.cluster.run(until=5.0)
    assert not reply.triggered


def test_fabric_restart_manager_noop_when_alive(fabric):
    fabric.start_manager()
    assert fabric.restart_manager() is False
    assert fabric.manager_restarts == 0


def test_fabric_worker_names_are_unique(fabric):
    fabric.boot(n_frontends=0, initial_workers={"test-worker": 3},
                with_monitor=False)
    names = list(fabric.workers)
    assert len(names) == len(set(names))
    assert all(name.startswith("test-worker.") for name in names)


# -- front end mechanics -------------------------------------------------------------

def test_dead_frontend_swallows_requests(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    frontend = next(iter(fabric.frontends.values()))
    frontend.kill()
    reply = frontend.submit(make_record())
    fabric.cluster.run(until=10.0)
    assert not reply.triggered


def test_thread_pool_bounds_concurrency():
    fabric = make_fabric(config=fast_config(frontend_threads=2,
                                            dispatch_timeout_s=30.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    frontend = next(iter(fabric.frontends.values()))
    for index in range(10):
        frontend.submit(make_record(index))
    fabric.cluster.run(until=fabric.cluster.env.now + 0.2)
    assert frontend.active_requests <= 2


def test_response_ok_property():
    assert Response(status="ok", path="x").ok
    assert Response(status="fallback", path="x").ok
    assert not Response(status="error", path="x").ok


# -- config validation ------------------------------------------------------------------

@pytest.mark.parametrize("overrides", [
    {"beacon_interval_s": 0.0},
    {"spawn_threshold": 0.0},
    {"spawn_damping_s": -1.0},
    {"load_ewma_alpha": 0.0},
    {"load_ewma_alpha": 1.5},
    {"dispatch_attempts": 0},
    {"frontend_threads": 0},
])
def test_config_validation_rejects_bad_values(overrides):
    with pytest.raises(ValueError):
        SNSConfig(**overrides).validate()


def test_config_validate_returns_self():
    config = SNSConfig()
    assert config.validate() is config


# -- messages ---------------------------------------------------------------------------

def test_beacon_adverts_of_type():
    adverts = {
        "a": WorkerAdvert("a", "type-1", "n0", None, 0.0, 0.0),
        "b": WorkerAdvert("b", "type-2", "n0", None, 0.0, 0.0),
        "c": WorkerAdvert("c", "type-1", "n1", None, 0.0, 0.0),
    }
    beacon = ManagerBeacon("m", 1, None, 0.0, adverts)
    selected = beacon.adverts_of_type("type-1")
    assert set(selected) == {"a", "c"}
