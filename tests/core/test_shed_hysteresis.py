"""Front-end admission control: hysteresis for the binary shed switch
and the degradation ladder's top-rung sheds (priority, deadline).

The legacy single-threshold ``_should_shed`` flips on and off as each
shed relieves exactly the backlog that caused it; the
``admission_exit_backlog_s`` band is the regression target here.
"""

from types import SimpleNamespace

from repro.workload.trace import TraceRecord

from tests.core.conftest import fast_config, make_fabric, make_record


def make_frontend(**config_overrides):
    fabric = make_fabric(config=fast_config(**config_overrides))
    fabric.boot(n_frontends=1)
    fabric.cluster.run(until=2.0)
    frontend = fabric.alive_frontends()[0]
    # drive _should_shed directly: replace the inputs it reads
    frontend.netstack = SimpleNamespace(backlog_s=0.0)
    frontend.threads = SimpleNamespace(length=0)
    return frontend


def decisions(frontend, backlogs):
    out = []
    for backlog in backlogs:
        frontend.netstack.backlog_s = backlog
        out.append(frontend._should_shed())
    return out


def transitions(sequence):
    return sum(1 for a, b in zip(sequence, sequence[1:]) if a != b)


#: a backlog sawtooth around the 2.0 s threshold: each shed relieves
#: just enough load to dip below it, then the queue builds right back
OSCILLATION = [2.5, 1.9] * 5


def test_single_threshold_switch_oscillates():
    frontend = make_frontend(admission_max_backlog_s=2.0)
    shed = decisions(frontend, OSCILLATION)
    assert shed[0] is True and shed[1] is False
    assert transitions(shed) == 9  # flips on every single sample


def test_hysteresis_band_sheds_once_per_episode():
    frontend = make_frontend(admission_max_backlog_s=2.0,
                             admission_exit_backlog_s=1.0)
    shed = decisions(frontend, OSCILLATION)
    assert all(shed)  # 1.9 s is above the exit: the episode continues
    assert transitions(shed) == 0
    # only a real recovery ends the episode
    assert decisions(frontend, [0.8]) == [False]
    assert decisions(frontend, [1.5]) == [False]  # below enter: admit


def test_free_thread_always_admits():
    frontend = make_frontend(admission_max_backlog_s=2.0,
                             admission_exit_backlog_s=1.0)
    frontend.threads.length = 3
    assert decisions(frontend, [50.0]) == [False]


def test_admission_disabled_by_default():
    frontend = make_frontend()
    assert decisions(frontend, [100.0]) == [False]


# -- ladder sheds (levels 4 and 5) --------------------------------------------

def batch_record():
    return TraceRecord(0.0, "crawler", "http://bench/batch.jpg",
                       "image/jpeg", 10240, priority="batch")


def ladder_stub(priority=False, deadline=False):
    return SimpleNamespace(priority_admission_active=priority,
                           deadline_shed_active=deadline)


def test_no_controller_admits_everything():
    frontend = make_frontend()
    assert frontend._ladder_shed(batch_record()) is None


def test_priority_admission_sheds_batch_only():
    frontend = make_frontend()
    frontend.degradation = ladder_stub(priority=True)
    assert frontend._ladder_shed(batch_record()) == "shed-priority"
    assert frontend._ladder_shed(make_record()) is None
    assert frontend.shed_priority == 1


def test_deadline_shed_refuses_doomed_requests():
    frontend = make_frontend(degrade_deadline_s=8.0)
    frontend.degradation = ladder_stub(deadline=True)
    # idle: wait estimate is zero, everything is admitted
    assert frontend._ladder_shed(make_record()) is None
    # 10 s of backlog and no free thread: excess 10 s over an 8 s
    # deadline => shed probability 1.0, deterministically refused
    frontend.netstack.backlog_s = 10.0
    frontend.threads.length = 0
    assert frontend._ladder_shed(make_record()) == "shed-deadline"
    assert frontend.shed_deadline == 1


def test_shed_reply_is_immediate_and_counted():
    fabric = make_fabric()
    fabric.boot(n_frontends=1)
    fabric.cluster.run(until=2.0)
    frontend = fabric.alive_frontends()[0]
    frontend.degradation = ladder_stub(priority=True)
    reply = frontend.submit(batch_record())
    assert reply.triggered  # no thread, no netstack: refused at the door
    response = reply.value
    assert response.status == "error"
    assert response.path == "shed-priority"
    assert frontend.shed == 1 and frontend.errors == 1
