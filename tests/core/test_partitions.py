"""Tests for SAN-partition faults (Section 2.2.4).

"If the condition that caused the timeout can be automatically resolved
(e.g., if workers lost because of a SAN partition can be restarted on
still-visible nodes), the manager performs the necessary actions."
"""

import pytest

from repro.sim.failures import FaultInjector
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


def test_partitioned_worker_is_unreachable_then_returns(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    victim = fabric.alive_workers()[0]
    victim.partition(10.0)
    assert victim.is_partitioned
    assert victim.alive  # alive, just unreachable
    fabric.cluster.run(until=4.0)
    # the manager saw the broken connection and dropped it
    assert victim.name not in fabric.manager.workers
    # after the heal, the worker re-registers off the next beacon
    fabric.cluster.run(until=20.0)
    assert not victim.is_partitioned
    assert victim.name in fabric.manager.workers


def test_manager_replaces_partitioned_worker_under_load():
    """The paper's scenario: load continues, the manager restarts the
    lost class on still-visible nodes."""
    fabric = make_fabric(n_nodes=10,
                         config=fast_config(spawn_damping_s=3.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(
        fabric.cluster.env, fabric.submit,
        rng=RandomStreams(9).stream("pb"), timeout_s=20.0)
    pool = [make_record(i) for i in range(20)]
    fabric.cluster.env.process(engine.constant_rate(15.0, 40.0, pool))
    victim = fabric.alive_workers()[0]
    injector = FaultInjector(fabric.cluster.env)
    injector.partition_at(10.0, victim, duration_s=20.0)
    fabric.cluster.run(until=60.0)
    assert any(record.kind == "partition" for record in injector.log)
    # a replacement was spawned on a reachable node during the partition
    assert fabric.manager.spawns >= 1
    # service availability held
    assert len(engine.completed()) > 0.9 * len(engine.outcomes)
    # after healing, both the victim and its replacement are registered
    names = set(fabric.manager.workers)
    assert victim.name in names
    assert len(names) >= 2


def test_requests_to_partitioned_worker_time_out(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    victim = fabric.alive_workers()[0]
    served_before = victim.served
    victim.partition(30.0)
    reply = fabric.submit(make_record())
    response = fabric.cluster.env.run(until=reply)
    # the FE retried / fell back; the partitioned worker served nothing
    assert victim.served == served_before
    assert response is not None


def test_partition_extends_not_shrinks(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    victim = fabric.alive_workers()[0]
    victim.partition(30.0)
    victim.partition(5.0)  # shorter request must not shorten the cut
    fabric.cluster.run(until=10.0)
    assert victim.is_partitioned
