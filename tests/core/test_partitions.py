"""Tests for SAN-partition faults (Section 2.2.4).

"If the condition that caused the timeout can be automatically resolved
(e.g., if workers lost because of a SAN partition can be restarted on
still-visible nodes), the manager performs the necessary actions."
"""

import pytest

from repro.sim.failures import FaultInjector
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


def test_partitioned_worker_is_unreachable_then_returns(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    victim = fabric.alive_workers()[0]
    victim.partition(10.0)
    assert victim.is_partitioned
    assert victim.alive  # alive, just unreachable
    fabric.cluster.run(until=4.0)
    # the manager saw the broken connection and dropped it
    assert victim.name not in fabric.manager.workers
    # after the heal, the worker re-registers off the next beacon
    fabric.cluster.run(until=20.0)
    assert not victim.is_partitioned
    assert victim.name in fabric.manager.workers


def test_manager_replaces_partitioned_worker_under_load():
    """The paper's scenario: load continues, the manager restarts the
    lost class on still-visible nodes."""
    fabric = make_fabric(n_nodes=10,
                         config=fast_config(spawn_damping_s=3.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(
        fabric.cluster.env, fabric.submit,
        rng=RandomStreams(9).stream("pb"), timeout_s=20.0)
    pool = [make_record(i) for i in range(20)]
    fabric.cluster.env.process(engine.constant_rate(15.0, 40.0, pool))
    victim = fabric.alive_workers()[0]
    injector = FaultInjector(fabric.cluster.env)
    injector.partition_at(10.0, victim, duration_s=20.0)
    fabric.cluster.run(until=60.0)
    assert any(record.kind == "partition" for record in injector.log)
    # a replacement was spawned on a reachable node during the partition
    assert fabric.manager.spawns >= 1
    # service availability held
    assert len(engine.completed()) > 0.9 * len(engine.outcomes)
    # after healing, both the victim and its replacement are registered
    names = set(fabric.manager.workers)
    assert victim.name in names
    assert len(names) >= 2


def test_requests_to_partitioned_worker_time_out(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    victim = fabric.alive_workers()[0]
    served_before = victim.served
    victim.partition(30.0)
    reply = fabric.submit(make_record())
    response = fabric.cluster.env.run(until=reply)
    # the FE retried / fell back; the partitioned worker served nothing
    assert victim.served == served_before
    assert response is not None


def _reregistration_delay(fabric, victim, heal_at, budget_s):
    """Run until the victim is back in the manager's view; return the
    delay past ``heal_at`` (fails the test if the budget expires)."""
    env = fabric.cluster.env
    interval = fabric.config.beacon_interval_s
    while env.now < heal_at + budget_s:
        fabric.cluster.run(until=env.now + interval)
        if victim.name in fabric.manager.workers:
            return env.now - heal_at
    pytest.fail(
        f"{victim.name} not re-registered within {budget_s}s of heal")


def test_heal_reregisters_within_beacon_loss_tolerance(fabric):
    """Soft state's promise, quantified: after a partition heals the
    worker must be back in the manager's view within
    ``beacon_loss_tolerance`` beacon periods."""
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    victim = fabric.alive_workers()[0]
    victim.partition(6.0)
    heal_at = fabric.cluster.env.now + 6.0
    fabric.cluster.run(until=4.0)
    assert victim.name not in fabric.manager.workers
    budget = (fabric.config.beacon_loss_tolerance
              * fabric.config.beacon_interval_s)
    delay = _reregistration_delay(fabric, victim, heal_at, budget)
    assert delay <= budget


def test_heal_reregisters_under_lossy_multicast(fabric):
    """Same bound with the lossy-SAN fault model dropping 30% of
    beacons across the heal: re-registration rides the first beacon
    that survives, still inside the tolerance window."""
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    faults = fabric.cluster.network.install_faults(
        fabric.cluster.streams.stream("test:netfaults"))
    victim = fabric.alive_workers()[0]
    victim.partition(6.0)
    heal_at = fabric.cluster.env.now + 6.0
    from repro.core.messages import BEACON_GROUP
    faults.impose(scope=BEACON_GROUP, loss=0.3,
                  start=heal_at - 2.0, duration_s=10.0)
    fabric.cluster.run(until=4.0)
    assert victim.name not in fabric.manager.workers
    budget = (fabric.config.beacon_loss_tolerance
              * fabric.config.beacon_interval_s)
    delay = _reregistration_delay(fabric, victim, heal_at, budget)
    assert delay <= budget
    assert faults.datagrams_lost > 0  # the window really dropped beacons


def test_partition_extends_not_shrinks(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    victim = fabric.alive_workers()[0]
    victim.partition(30.0)
    victim.partition(5.0)  # shorter request must not shorten the cut
    fabric.cluster.run(until=10.0)
    assert victim.is_partitioned
