"""Chaos soak test: random faults against every component class while
invariants are checked continuously.

This is the property the whole architecture exists for: "when a
component fails, one of its peers restarts it ... while cached stale
state carries the surviving components through the failure."  Under a
random kill process (workers, front ends, the manager) the system must

* keep answering the overwhelming majority of requests,
* converge back to a live manager + live front ends + live workers,
* never crash the simulation (no unhandled exceptions anywhere), and
* never leak node attachments (dead components detach from nodes).
"""

import pytest

from repro.sim.failures import FaultInjector
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


def run_chaos(seed, mtbf_s=15.0, duration_s=180.0, rate_rps=12.0):
    fabric = make_fabric(n_nodes=12, seed=seed,
                         config=fast_config(spawn_damping_s=3.0))
    fabric.boot(n_frontends=2, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)

    engine = PlaybackEngine(
        fabric.cluster.env, fabric.submit,
        rng=RandomStreams(seed).stream("chaos-playback"),
        timeout_s=25.0)
    pool = [make_record(i) for i in range(30)]
    fabric.cluster.env.process(
        engine.constant_rate(rate_rps, duration_s, pool))

    injector = FaultInjector(fabric.cluster.env,
                             RandomStreams(seed).stream("chaos-faults"))

    def victims():
        population = list(fabric.alive_workers())
        population.extend(fabric.alive_frontends())
        if fabric.manager is not None and fabric.manager.alive:
            population.append(fabric.manager)
        # keep at least one FE alive so someone can restart the manager
        if len(fabric.alive_frontends()) <= 1:
            population = [component for component in population
                          if component.kind != "frontend"]
        return population

    injector.random_kills(victims, mtbf_s=mtbf_s,
                          stop_at=duration_s - 30.0)
    fabric.cluster.run(until=duration_s + 60.0)
    return fabric, engine, injector


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_chaos_system_survives_and_converges(seed):
    fabric, engine, injector = run_chaos(seed)
    # faults actually happened
    assert len(injector.log) >= 3, injector.log
    # convergence: full stack alive at the end
    assert fabric.manager is not None and fabric.manager.alive
    assert fabric.alive_frontends()
    assert fabric.alive_workers("test-worker")
    # availability through the ordeal
    total = len(engine.outcomes)
    assert total > 0
    ok = len(engine.completed())
    assert ok > 0.85 * total, (ok, total, injector.log)
    # no node attachment leaks: every attached component is alive
    live_names = {c.name for c in fabric.alive_workers()}
    live_names |= {fe.name for fe in fabric.alive_frontends()}
    if fabric.manager and fabric.manager.alive:
        live_names.add(fabric.manager.name)
    if fabric.monitor and fabric.monitor.alive:
        live_names.add(fabric.monitor.name)
    for node in fabric.cluster.nodes.values():
        for attached in node.components:
            assert attached in live_names, (
                f"{attached} still attached to {node.name} but dead")


def test_chaos_deterministic_given_seed():
    first = run_chaos(404, duration_s=90.0)
    second = run_chaos(404, duration_s=90.0)
    assert len(first[1].outcomes) == len(second[1].outcomes)
    assert [(r.time, r.target) for r in first[2].log] == \
        [(r.time, r.target) for r in second[2].log]
