"""Unit tests for AdvertState.effective_queue — the Section 4.5
oscillation fix (queue-slope extrapolation between beacons plus the
count of requests this front end itself sent since the last report)."""

import pytest

from repro.core.manager_stub import AdvertState
from repro.core.messages import WorkerAdvert


def make_advert(queue_avg, report_at):
    return WorkerAdvert(
        worker_name="w0", worker_type="test-worker", node_name="node0",
        stub=None, queue_avg=queue_avg, last_report_at=report_at)


def test_single_report_returns_raw_queue():
    state = AdvertState(make_advert(3.0, report_at=0.0), now=0.0)
    assert state.effective_queue(5.0, estimate_deltas=True) == 3.0
    assert state.effective_queue(5.0, estimate_deltas=False) == 3.0


def test_slope_extrapolates_between_reports():
    state = AdvertState(make_advert(2.0, report_at=0.0), now=0.0)
    state.refresh(make_advert(4.0, report_at=1.0), now=1.0)
    # slope = (4 - 2) / (1 - 0) = 2/s; one second past the last report
    assert state.effective_queue(2.0, estimate_deltas=True) == \
        pytest.approx(6.0)
    # the ablation switch ignores the slope entirely
    assert state.effective_queue(2.0, estimate_deltas=False) == 4.0


def test_negative_slope_clamps_at_zero():
    state = AdvertState(make_advert(6.0, report_at=0.0), now=0.0)
    state.refresh(make_advert(2.0, report_at=1.0), now=1.0)
    # slope -4/s: two seconds out the raw estimate is 2 - 8 = -6
    assert state.effective_queue(3.0, estimate_deltas=True) == 0.0


def test_sent_since_report_adds_local_dispatches():
    state = AdvertState(make_advert(1.0, report_at=0.0), now=0.0)
    state.sent_since_report = 3
    assert state.effective_queue(0.5, estimate_deltas=True) == 4.0
    # ...but only when delta estimation is on (the paper's pre-fix shape)
    assert state.effective_queue(0.5, estimate_deltas=False) == 1.0


def test_newer_report_resets_sent_counter():
    state = AdvertState(make_advert(1.0, report_at=0.0), now=0.0)
    state.sent_since_report = 3
    state.refresh(make_advert(2.0, report_at=1.0), now=1.0)
    assert state.sent_since_report == 0
    assert state.prev_queue_avg == 1.0


def test_duplicate_beacon_keeps_sent_counter_and_slope_basis():
    """The same load report re-broadcast in the next beacon must not
    reset the local-dispatch count or shift the slope window."""
    state = AdvertState(make_advert(1.0, report_at=0.0), now=0.0)
    state.sent_since_report = 3
    duplicate = make_advert(1.0, report_at=0.0)  # same last_report_at
    state.refresh(duplicate, now=0.5)
    assert state.sent_since_report == 3
    assert state.received_at == 0.0      # slope basis unchanged
    assert state.advert is duplicate     # but the advert is refreshed
