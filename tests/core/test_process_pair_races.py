"""Races in the manager-recovery paths: several recovery mechanisms
(front-end watchdogs, the process-pair secondary) can all notice the
same silence — exactly one manager must come out the other side."""

from repro.core.manager import SPAWN_DELAY_S

from tests.core.conftest import make_fabric


def boot_pair(fabric, workers=2):
    fabric.start_manager(process_pair=True)
    fabric.start_monitor(node=fabric.manager.node)
    fabric.start_frontend()
    for _ in range(workers):
        fabric.spawn_worker("test-worker")
    fabric.cluster.run(until=2.0)
    return fabric


def alive_managers(fabric):
    """Primary-manager component names still attached to any node
    (kill() detaches, so attached == alive)."""
    return [name
            for node in fabric.cluster.nodes.values()
            for name in node.components
            if name.startswith("manager.")
            and not name.endswith(".secondary")]


def test_promote_with_primary_alive_is_a_noop():
    fabric = make_fabric()
    boot_pair(fabric)
    primary = fabric.manager
    assert primary.alive
    result = fabric.promote_secondary(fabric.secondary.node, {})
    assert result is primary
    assert fabric.manager is primary
    assert fabric.manager_restarts == 0


def test_promote_relocates_when_the_secondarys_node_is_down():
    fabric = make_fabric()
    boot_pair(fabric)
    secondary = fabric.secondary
    state = dict(secondary.mirror)
    downed = secondary.node
    # primary and the secondary's host die together; the promotion
    # must land the new primary somewhere that is still up
    fabric.manager.kill()
    secondary.kill()
    downed.crash()
    promoted = fabric.promote_secondary(downed, state)
    assert promoted.alive
    assert promoted.node.up
    assert promoted.node is not downed
    assert fabric.manager is promoted
    assert fabric.manager_restarts == 1
    fabric.cluster.run(until=fabric.cluster.env.now + 5.0)
    assert len(alive_managers(fabric)) == 1
    assert len(fabric.manager.workers) == 2  # workers re-registered


def test_concurrent_restart_manager_calls_are_idempotent():
    fabric = make_fabric()
    fabric.start_manager()
    fabric.start_frontend()
    fabric.start_frontend()
    for _ in range(2):
        fabric.spawn_worker("test-worker")
    fabric.cluster.run(until=2.0)
    fabric.manager.kill()

    # two front ends notice the silence in the same instant: "one of
    # its peers restarts it" — exactly one restart happens
    assert fabric.restart_manager("fe0") is True
    assert fabric.restart_manager("fe1") is False
    assert fabric.manager_restarts == 1

    fabric.cluster.run(until=fabric.cluster.env.now + 5.0)
    assert fabric.manager.alive
    assert fabric.manager.incarnation == 2
    assert len(alive_managers(fabric)) == 1


def test_promotion_racing_a_watchdog_restart_yields_one_manager():
    fabric = make_fabric()
    boot_pair(fabric)
    secondary = fabric.secondary
    state = dict(secondary.mirror)
    fabric.manager.kill()
    secondary.kill()  # keep the secondary's own watchdog out of it

    # a front-end watchdog schedules a restart (fires after the spawn
    # delay)...
    assert fabric.restart_manager("fe0") is True
    # ...and the promotion wins the race before the delay elapses
    promoted = fabric.promote_secondary(secondary.node, state)
    assert fabric.manager is promoted

    fabric.cluster.run(
        until=fabric.cluster.env.now + SPAWN_DELAY_S + 5.0)
    # the delayed watchdog restart must notice it lost and stand down
    assert fabric.manager is promoted
    assert promoted.alive
    assert len(alive_managers(fabric)) == 1
