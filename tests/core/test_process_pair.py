"""Tests for the process-pair manager (the Section 3.1.3 prototype
design) and its comparison against soft-state recovery."""

import pytest

from repro.core.process_pair import MirroredManager, SecondaryManager
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


def boot_pair(fabric, workers=2):
    fabric.start_manager(process_pair=True)
    fabric.start_monitor(node=fabric.manager.node)
    fabric.start_frontend()
    for _ in range(workers):
        fabric.spawn_worker("test-worker")
    fabric.cluster.run(until=2.0)
    return fabric


def test_secondary_mirrors_primary_state(fabric):
    boot_pair(fabric)
    fabric.cluster.run(until=5.0)
    secondary = fabric.secondary
    assert isinstance(fabric.manager, MirroredManager)
    assert isinstance(secondary, SecondaryManager)
    assert secondary.snapshots_received >= 5
    assert set(secondary.mirror) == set(fabric.manager.workers)
    assert fabric.manager.mirror_messages >= 5
    assert fabric.manager.mirror_bytes > 0


def test_secondary_takes_over_on_primary_crash(fabric):
    boot_pair(fabric)
    old = fabric.manager
    old_incarnation = old.incarnation
    old.kill()
    # promotion detection: 3 beacon intervals = 1.5 s, well before the
    # FE watchdog's 3 s tolerance
    fabric.cluster.run(until=fabric.cluster.env.now + 2.5)
    assert fabric.manager is not old
    assert fabric.manager.alive
    assert fabric.manager.incarnation > old_incarnation
    assert fabric.secondary.alive       # a fresh standby re-paired
    assert fabric.secondary is not None
    # takeover inherited the worker table (before any re-registration
    # could possibly have completed, the new manager already knows them)
    assert len(fabric.manager.workers) == 2


def test_workers_reconnect_to_promoted_manager(fabric):
    boot_pair(fabric)
    fabric.manager.kill()
    fabric.cluster.run(until=fabric.cluster.env.now + 10.0)
    # seeded entries replaced by live registrations: reports flow again
    assert fabric.manager.reports_received > 0
    for info in fabric.manager.workers.values():
        assert info.endpoint is not None


def test_seeded_entries_for_dead_workers_expire(fabric):
    boot_pair(fabric)
    # kill a worker and the primary in the same instant: the mirror
    # still lists the dead worker, so the takeover manager initially
    # believes in it — the timeout detector must clean it up
    victim = fabric.alive_workers()[0]
    victim.kill()
    fabric.manager.kill()
    fabric.cluster.run(until=fabric.cluster.env.now + 15.0)
    assert victim.name not in fabric.manager.workers
    survivors = fabric.alive_workers("test-worker")
    assert {info.name for info in fabric.manager.workers.values()} == \
        {stub.name for stub in survivors}


def beacon_outage(process_pair, seed=31):
    """Measure the beacon gap around a manager crash."""
    fabric = make_fabric(n_nodes=10, seed=seed)
    fabric.start_manager(process_pair=process_pair)
    fabric.start_monitor()
    fabric.start_frontend()
    fabric.spawn_worker("test-worker")
    fabric.cluster.run(until=4.0)
    fabric.manager.kill()
    fabric.cluster.run(until=30.0)
    # monitor heard beacons; find the largest gap after the kill
    times = [time for time, _ in fabric.monitor.worker_counts
             if time > 3.0]
    gaps = [b - a for a, b in zip(times, times[1:])]
    return max(gaps) if gaps else float("inf")


def test_process_pair_recovers_faster_than_soft_state():
    """The prototype's one genuine advantage, quantified: a shorter
    beacon outage.  (The paper's point is that soft state's outage is
    already short enough — and the code is far simpler.)"""
    soft_gap = beacon_outage(process_pair=False)
    pair_gap = beacon_outage(process_pair=True)
    assert pair_gap < soft_gap
    assert pair_gap < 4.0
    assert soft_gap < 10.0  # soft state is no disaster either


def test_mirroring_costs_continuous_messages(fabric):
    """The prototype's running cost: one mirror snapshot per beacon,
    forever, crash or no crash."""
    boot_pair(fabric)
    fabric.cluster.run(until=20.0)
    manager = fabric.manager
    expected = 20.0 / fabric.config.beacon_interval_s
    assert manager.mirror_messages == pytest.approx(expected, rel=0.2)
