"""Tests for the distributed-balancing alternative (Section 2.2.2).

"The decision to centralize rather than distribute load balancing is
intentional: if the load balancer can be made fault tolerant, and if we
can ensure it does not become a performance bottleneck, centralization
makes it easier to implement and reason about the behavior of the load
balancing policy."  The distributed variant works — and costs more
control traffic, which is the measurable half of the argument.
"""

import pytest

from repro.core.messages import BEACON_GROUP, WORKER_ANNOUNCE_GROUP
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


def make_distributed(n_nodes=10, n_frontends=1, workers=2, seed=7):
    fabric = make_fabric(
        n_nodes=n_nodes, seed=seed,
        config=fast_config(balancing="distributed",
                           spawn_threshold=1e9,
                           reap_after_s=1e9))
    fabric.boot(n_frontends=n_frontends,
                initial_workers={"test-worker": workers})
    fabric.cluster.run(until=3.0)
    return fabric


def test_distributed_mode_serves_requests():
    fabric = make_distributed()
    reply = fabric.submit(make_record())
    response = fabric.cluster.env.run(until=reply)
    assert response.status == "ok"


def test_frontends_learn_workers_from_announcements():
    fabric = make_distributed(workers=3)
    frontend = next(iter(fabric.frontends.values()))
    assert len(frontend.stub.candidates("test-worker")) == 3
    announce = fabric.cluster.multicast.group(WORKER_ANNOUNCE_GROUP)
    assert announce.delivered > 0


def test_dead_worker_expires_from_caches_by_timeout():
    fabric = make_distributed(workers=2)
    frontend = next(iter(fabric.frontends.values()))
    victim = fabric.alive_workers()[0]
    victim.kill()
    fabric.cluster.run(until=fabric.cluster.env.now + 5.0)
    names = [state.advert.worker_name
             for state in frontend.stub.candidates("test-worker")]
    assert victim.name not in names
    # service continues on the survivor
    reply = fabric.submit(make_record())
    assert fabric.cluster.env.run(until=reply).status == "ok"


def test_distributed_balances_load_comparably():
    fabric = make_distributed(workers=3)
    engine = PlaybackEngine(fabric.cluster.env, fabric.submit,
                            rng=RandomStreams(2).stream("pb"),
                            timeout_s=30.0)
    pool = [make_record(i) for i in range(20)]
    fabric.cluster.env.process(engine.constant_rate(30.0, 20.0, pool))
    fabric.cluster.run(until=50.0)
    served = sorted(stub.served for stub in fabric.alive_workers())
    assert sum(served) == len(engine.completed())
    assert served[0] > sum(served) * 0.15


def control_traffic(n_frontends, balancing, duration=20.0, workers=4):
    fabric = make_fabric(
        n_nodes=14, seed=11,
        config=fast_config(balancing=balancing, spawn_threshold=1e9))
    fabric.boot(n_frontends=n_frontends,
                initial_workers={"test-worker": workers})
    fabric.cluster.run(until=2.0)
    announce = fabric.cluster.multicast.group(WORKER_ANNOUNCE_GROUP)
    beacons = fabric.cluster.multicast.group(BEACON_GROUP)
    start = (announce.delivered, beacons.delivered,
             fabric.manager.reports_received)
    fabric.cluster.run(until=2.0 + duration)
    announce_delta = announce.delivered - start[0]
    beacon_delta = beacons.delivered - start[1]
    reports_delta = fabric.manager.reports_received - start[2]
    # control messages delivered per second, balancing-related
    return (announce_delta + beacon_delta + reports_delta) / duration


def test_distributed_control_traffic_scales_with_frontends():
    """The measurable half of the paper's argument: distributed load
    announcements cost O(workers x frontends); centralized costs
    O(workers + frontends)."""
    centralized_1 = control_traffic(1, "centralized")
    centralized_4 = control_traffic(4, "centralized")
    distributed_1 = control_traffic(1, "distributed")
    distributed_4 = control_traffic(4, "distributed")
    # going 1 -> 4 front ends inflates distributed control traffic much
    # more than centralized
    centralized_growth = centralized_4 - centralized_1
    distributed_growth = distributed_4 - distributed_1
    assert distributed_growth > 2 * centralized_growth, (
        centralized_1, centralized_4, distributed_1, distributed_4)


def test_config_rejects_unknown_balancing():
    with pytest.raises(ValueError):
        fast_config(balancing="anarchic").validate()
