"""Fault-tolerance tests: the Section 3.1.3 process-peer claims.

* The manager reports distiller failures to the manager stubs, which
  update their caches of where distillers are running.
* The manager detects and restarts a crashed front end.
* The front end detects and restarts a crashed manager.
* Timeouts are the backup failure detector.
"""

import pytest

from repro.sim.failures import FaultInjector
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


def drive(fabric, rate=20.0, duration=40.0, seed=1, timeout_s=15.0):
    engine = PlaybackEngine(fabric.cluster.env, fabric.submit,
                            rng=RandomStreams(seed).stream("pb"),
                            timeout_s=timeout_s)
    pool = [make_record(i) for i in range(30)]
    fabric.cluster.env.process(engine.constant_rate(rate, duration, pool))
    return engine


def test_worker_crash_detected_and_routed_around(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    engine = drive(fabric, rate=20.0, duration=40.0)
    victim = fabric.alive_workers()[0]
    injector = FaultInjector(fabric.cluster.env)
    injector.kill_at(10.0, victim)
    fabric.cluster.run(until=60.0)
    # broken connection detected, worker dropped from manager state
    assert fabric.manager.worker_failures_detected >= 1
    assert victim.name not in fabric.manager.workers
    # service kept working: vast majority of requests succeeded
    total = len(engine.outcomes)
    assert len(engine.completed()) > total * 0.95
    # FE stub cache no longer lists the victim
    frontend = next(iter(fabric.frontends.values()))
    assert victim.name not in frontend.stub.adverts


def test_all_workers_crash_service_recovers(fabric):
    """Killing every worker forces on-demand respawn under load."""
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    engine = drive(fabric, rate=15.0, duration=40.0)
    injector = FaultInjector(fabric.cluster.env)
    for index, victim in enumerate(fabric.alive_workers()):
        injector.kill_at(10.0 + 0.1 * index, victim)
    fabric.cluster.run(until=60.0)
    assert len(fabric.alive_workers("test-worker")) >= 1
    late_ok = [outcome for outcome in engine.completed()
               if outcome.submitted_at > 20.0]
    assert late_ok  # service came back


def test_manager_crash_service_continues_on_stale_hints(fabric):
    """'The cached information provides a backup so that the system can
    continue to operate (using slightly stale load data) even if the
    manager crashes.'"""
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    engine = drive(fabric, rate=20.0, duration=30.0)
    injector = FaultInjector(fabric.cluster.env)
    injector.kill_at(10.0, fabric.manager)
    fabric.cluster.run(until=14.0)
    # manager is dead but requests in this window still complete
    during_outage = [o for o in engine.completed()
                     if 10.0 < o.submitted_at < 13.0]
    assert during_outage
    fabric.cluster.run(until=60.0)
    assert len(engine.completed()) > len(engine.outcomes) * 0.95


def test_frontend_restarts_crashed_manager(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    old_manager = fabric.manager
    old_incarnation = old_manager.incarnation
    injector = FaultInjector(fabric.cluster.env)
    injector.kill_at(5.0, old_manager)
    fabric.cluster.run(until=30.0)
    assert fabric.manager is not old_manager
    assert fabric.manager.alive
    assert fabric.manager.incarnation > old_incarnation
    assert fabric.manager_restarts == 1
    # workers re-registered with the new incarnation
    assert len(fabric.manager.workers) == 1
    # FE re-registered too
    assert len(fabric.manager.frontends) == 1


def test_manager_restart_is_idempotent_across_frontends():
    fabric = make_fabric(n_nodes=10)
    fabric.boot(n_frontends=3, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    injector = FaultInjector(fabric.cluster.env)
    injector.kill_at(5.0, fabric.manager)
    fabric.cluster.run(until=30.0)
    # three watchdogs noticed, but exactly one restart happened
    assert fabric.manager_restarts == 1
    assert fabric.manager.alive


def test_manager_restarts_crashed_frontend(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    frontend = next(iter(fabric.frontends.values()))
    injector = FaultInjector(fabric.cluster.env)
    injector.kill_at(5.0, frontend)
    fabric.cluster.run(until=20.0)
    assert fabric.manager.frontend_restarts == 1
    replacement = fabric.frontends[frontend.name]
    assert replacement is not frontend
    assert replacement.alive
    # the replacement re-registered with the manager
    assert frontend.name in fabric.manager.frontends


def test_client_side_balancing_masks_frontend_failure():
    """fabric.submit (the client-side JavaScript stand-in) skips dead
    front ends, so service continues during the FE outage."""
    fabric = make_fabric(n_nodes=10)
    fabric.boot(n_frontends=2, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    engine = drive(fabric, rate=20.0, duration=30.0, timeout_s=10.0)
    victim = sorted(fabric.frontends.values(), key=lambda f: f.name)[0]
    injector = FaultInjector(fabric.cluster.env)
    injector.kill_at(10.0, victim)
    fabric.cluster.run(until=50.0)
    during = [o for o in engine.outcomes if 10.5 < o.submitted_at < 14.0]
    ok_during = [o for o in during if o.ok]
    assert len(ok_during) >= len(during) * 0.9


def test_hung_worker_expired_by_timeout(fabric):
    """A worker that stops reporting (but whose connection stays open)
    is removed by the timeout backup detector."""
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    victim = fabric.alive_workers()[0]

    # simulate a hang: stop the service loop and the report timer
    # without closing anything
    def hang(env):
        yield env.timeout(5.0)
        for process in list(victim._procs):
            if process.is_alive:
                process.interrupt("hang")
        victim._procs.clear()
        for timer in victim._timers:
            timer.cancel()
        victim._timers.clear()

    fabric.cluster.env.process(hang(fabric.cluster.env))
    fabric.cluster.run(until=20.0)
    assert victim.name not in fabric.manager.workers
    assert fabric.manager.worker_failures_detected >= 1


def test_repeated_manager_crashes_always_recover(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    def killer(env):
        for crash_time in (5.0, 25.0, 45.0):
            yield env.timeout(crash_time - env.now)
            if fabric.manager.alive:
                fabric.manager.kill()

    fabric.cluster.env.process(killer(fabric.cluster.env))
    fabric.cluster.run(until=70.0)
    assert fabric.manager.alive
    assert fabric.manager_restarts == 3
    assert len(fabric.manager.workers) == 1
    reply = fabric.submit(make_record())
    response = fabric.cluster.env.run(until=reply)
    assert response.status == "ok"
