"""Tests for hot upgrades and the utility (control) network."""

import pytest

from repro.core.config import SNSConfig
from repro.core.upgrades import HotUpgrade
from repro.sim.kernel import Environment
from repro.sim.network import MBPS, Network
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


# -- utility network (the Section 4.6 remedy) ----------------------------------

def test_utility_network_carries_control_traffic():
    env = Environment()
    network = Network(env, bandwidth_bps=1000.0)
    utility = network.add_utility_network(bandwidth_bps=500.0)
    network.transfer_delay(100, control=True)
    assert utility.bytes_sent == 100
    assert network.san.bytes_sent == 0
    network.transfer_delay(100)  # data still rides the SAN
    assert network.san.bytes_sent == 100


def test_utility_network_cannot_be_added_twice():
    env = Environment()
    network = Network(env)
    network.add_utility_network()
    with pytest.raises(ValueError):
        network.add_utility_network()


def test_saturated_san_does_not_drop_beacons_with_utility_net():
    """Data-plane saturation no longer kills control datagrams."""
    env = Environment()
    network = Network(env, bandwidth_bps=1000.0)
    network.add_utility_network(bandwidth_bps=1e6)

    def hammer(env):
        for _ in range(100):
            network.san.reserve(300)
            yield env.timeout(0.05)

    env.process(hammer(env))
    env.run()
    assert network.san.utilization() > 1.0
    assert network.multicast_drop_probability() == 0.0


def test_saturating_the_utility_network_itself_still_drops():
    env = Environment()
    network = Network(env, bandwidth_bps=1e9)
    network.add_utility_network(bandwidth_bps=100.0)

    def hammer(env):
        for _ in range(100):
            network.transfer_delay(50, control=True)
            yield env.timeout(0.05)

    env.process(hammer(env))
    env.run()
    assert network.multicast_drop_probability() > 0.0


# -- hot upgrades ---------------------------------------------------------------------

def test_upgrade_single_worker_node_respawns_elsewhere():
    fabric = make_fabric(n_nodes=10)
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    upgrade = HotUpgrade(fabric, hold_s=4.0, settle_s=4.0)
    victim_node = fabric.alive_workers()[0].node
    engine = PlaybackEngine(fabric.cluster.env, fabric.submit,
                            rng=RandomStreams(1).stream("pb"),
                            timeout_s=15.0)
    pool = [make_record(i) for i in range(20)]
    fabric.cluster.env.process(engine.constant_rate(15.0, 30.0, pool))
    fabric.cluster.env.process(upgrade.upgrade_node(victim_node))
    fabric.cluster.run(until=50.0)
    assert victim_node.up
    # service never stopped
    assert len(engine.completed()) > 0.9 * len(engine.outcomes)
    assert any("back in service" in message for _, message in upgrade.log)


def test_rolling_upgrade_whole_cluster_keeps_service_up():
    """The HotBot-move property: every dedicated node rebooted in turn,
    service continuously available."""
    fabric = make_fabric(n_nodes=8)
    fabric.boot(n_frontends=2, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(fabric.cluster.env, fabric.submit,
                            rng=RandomStreams(2).stream("pb"),
                            timeout_s=20.0)
    pool = [make_record(i) for i in range(20)]
    fabric.cluster.env.process(engine.constant_rate(10.0, 150.0, pool))
    upgrade = HotUpgrade(fabric, hold_s=3.0, settle_s=8.0)
    fabric.cluster.env.process(upgrade.rolling())
    fabric.cluster.run(until=220.0)
    assert all(node.up for node in fabric.cluster.dedicated_nodes)
    assert any("complete" in message for _, message in upgrade.log)
    total = len(engine.outcomes)
    assert total > 0
    assert len(engine.completed()) > 0.85 * total
    # the whole stack survived (manager possibly restarted by peers)
    assert fabric.manager.alive
    assert fabric.alive_frontends()
    assert fabric.alive_workers("test-worker")


def test_upgrade_requires_positive_hold():
    fabric = make_fabric()
    with pytest.raises(ValueError):
        HotUpgrade(fabric, hold_s=0.0)


def test_monitor_maintenance_suppresses_pages():
    fabric = make_fabric(n_nodes=8)
    fabric.boot(n_frontends=0, initial_workers={"test-worker": 1},
                with_monitor=False)
    monitor = fabric.start_monitor(silence_threshold_s=3.0)
    fabric.cluster.run(until=3.0)
    worker = fabric.alive_workers()[0]
    monitor.set_maintenance(worker.name, True)
    worker.kill()
    fabric.cluster.run(until=15.0)
    paged = {alert.component for alert in monitor.pages()}
    assert worker.name not in paged
    assert "mm" in monitor.render()
    # clearing maintenance re-arms the watchdog with a fresh clock
    monitor.set_maintenance(worker.name, False)
    fabric.cluster.run(until=25.0)
    paged = {alert.component for alert in monitor.pages()}
    assert worker.name in paged
