"""Focused tests for remaining code paths: queue-full refusal and retry,
heterogeneous nodes, condition failure propagation, and burstiness
properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.workload.burstiness import utilization_line
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


# -- worker queue refusal and retry ------------------------------------------------

def test_full_worker_queue_refuses_and_fe_retries():
    fabric = make_fabric(
        config=fast_config(worker_queue_capacity=2,
                           spawn_threshold=1e9,
                           dispatch_timeout_s=6.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    # slam one burst in faster than two tiny queues can hold
    replies = [fabric.submit(make_record(i)) for i in range(12)]
    fabric.cluster.run(until=30.0)
    stubs = fabric.alive_workers()
    refused_total = sum(stub.refused for stub in stubs)
    # the burst overflowed at least one queue...
    assert refused_total >= 1
    # ...yet every request got an answer (retry or fallback)
    done = [reply for reply in replies if reply.triggered]
    assert len(done) == 12
    frontend = next(iter(fabric.frontends.values()))
    assert frontend.stub.retries >= 1


# -- heterogeneous nodes ---------------------------------------------------------------

def test_faster_node_serves_more():
    """Commodity heterogeneity (Section 1.2): a 2x node hosting the
    same worker type absorbs about double the work, with no policy
    changes — the queue-based lottery does it automatically."""
    fabric = make_fabric(n_nodes=0,
                         config=fast_config(spawn_threshold=1e9,
                                            reap_after_s=1e9))
    cluster = fabric.cluster
    cluster.add_node("fast", speed=2.0)
    cluster.add_node("slow", speed=1.0)
    cluster.add_nodes(3)
    fabric.boot(n_frontends=1, initial_workers={})
    fabric.spawn_worker("test-worker", cluster.node("fast"))
    fabric.spawn_worker("test-worker", cluster.node("slow"))
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(cluster.env, fabric.submit,
                            rng=RandomStreams(3).stream("pb"),
                            timeout_s=60.0)
    pool = [make_record(i) for i in range(30)]
    cluster.env.process(engine.constant_rate(55.0, 40.0, pool))
    fabric.cluster.run(until=80.0)
    by_node = {stub.node.name: stub.served
               for stub in fabric.alive_workers()}
    # below saturation the lottery only shifts work when queues differ,
    # so the split is between even and fully speed-proportional (2x)
    assert by_node["fast"] > 1.25 * by_node["slow"], by_node


# -- kernel condition failure -----------------------------------------------------------

def test_all_of_fails_when_any_member_fails():
    env = Environment()

    def failer(env):
        yield env.timeout(1.0)
        raise RuntimeError("member died")

    def waiter(env):
        ok_event = env.timeout(5.0)
        bad_process = env.process(failer(env))
        try:
            yield env.all_of([ok_event, bad_process])
        except RuntimeError as error:
            return f"propagated: {error}"

    assert env.run(until=env.process(waiter(env))) == \
        "propagated: member died"


# -- burstiness property ---------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    counts=st.lists(st.integers(0, 50), min_size=2, max_size=60),
    target=st.floats(min_value=0.1, max_value=1.0),
)
def test_utilization_line_hits_target_fraction(counts, target):
    """The line returned really does put `target` of the traffic under
    it (within binary-search tolerance)."""
    total = sum(counts)
    if total == 0:
        assert utilization_line(counts, 1.0, target) == 0.0
        return
    line = utilization_line(counts, 1.0, target)
    under = sum(min(count, line) for count in counts)
    assert under / total == pytest.approx(target, abs=0.02)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=2, max_size=60))
def test_utilization_line_monotone_in_target(counts):
    if sum(counts) == 0:
        return
    lines = [utilization_line(counts, 1.0, fraction)
             for fraction in (0.25, 0.5, 0.75, 1.0)]
    for lower, higher in zip(lines, lines[1:]):
        assert higher >= lower - 1e-6
