"""Silence-watchdog x maintenance interactions on the monitor.

``set_maintenance`` exists so a hot upgrade (Section 3.2.4) does not
page the operator about components it took down on purpose; clearing it
must grant a full silence grace period, not page instantly off the
stale ``last_seen``."""

from repro.core.monitor import Monitor
from repro.sim.cluster import Cluster

from tests.core.conftest import fast_config


def make_monitor(silence_threshold_s=5.0):
    cluster = Cluster(seed=11)
    cluster.add_nodes(1)
    monitor = Monitor(cluster, cluster.node("node0"), "monitor",
                      fast_config(),
                      silence_threshold_s=silence_threshold_s)
    monitor.start()
    return cluster, monitor


def test_no_page_while_component_in_maintenance():
    cluster, monitor = make_monitor(silence_threshold_s=3.0)
    monitor._mark_seen("fe0")
    monitor.set_maintenance("fe0", True)
    cluster.run(until=20.0)
    assert monitor.pages() == []
    assert "mm" in monitor.render()


def test_clearing_maintenance_grants_a_full_grace_period():
    cluster, monitor = make_monitor(silence_threshold_s=5.0)
    monitor._mark_seen("fe0")
    monitor.set_maintenance("fe0", True)
    cluster.run(until=8.0)          # silent well past the threshold
    assert monitor.pages() == []

    monitor.set_maintenance("fe0", False)   # resets last_seen to now
    cluster.run(until=12.9)         # 4.9s of silence: inside the grace
    assert monitor.pages() == []

    cluster.run(until=16.0)         # grace expired with no report
    pages = monitor.pages()
    assert len(pages) == 1
    assert pages[0].component == "fe0"


def test_reporting_again_clears_the_silence_and_raises_a_notice():
    cluster, monitor = make_monitor(silence_threshold_s=2.0)
    monitor._mark_seen("fe0")
    cluster.run(until=6.0)
    assert len(monitor.pages()) == 1
    assert "!!" in monitor.render()

    monitor._mark_seen("fe0")       # it comes back
    notices = [alert for alert in monitor.alerts
               if alert.severity == "notice"]
    assert any("reporting again" in alert.message for alert in notices)
    assert "!!" not in monitor.render()

    # a fresh silence pages again (once)
    cluster.run(until=12.0)
    assert len(monitor.pages()) == 2


def test_maintenance_flipped_on_mid_silence_stops_the_clock():
    cluster, monitor = make_monitor(silence_threshold_s=2.0)
    monitor._mark_seen("fe0")
    cluster.run(until=1.5)          # silent, but inside the threshold
    monitor.set_maintenance("fe0", True)
    cluster.run(until=30.0)
    assert monitor.pages() == []
