"""Regression tests for three dispatch-path bugs.

1. A deadline that expires during the SAN transfer used to arm a
   zero-budget reply timer that fired instantly and was misclassified as
   a *worker* timeout — popping a healthy worker's advert and telling
   the supervisor to kill it.  It must surface as a deadline expiry.
2. ``_backoff_delay`` used to apply the cap before the jitter multiply,
   so an up-jittered delay could exceed ``dispatch_backoff_cap_s``.
3. ``_wait_for_worker`` used to sleep in whole ``beacon_interval_s``
   steps, overshooting its deadline by up to one interval.
"""

import pytest

from repro.core.manager_stub import DispatchError
from repro.sim.cluster import Cluster
from repro.tacc.content import Content
from repro.tacc.worker import TACCRequest

from tests.core.conftest import fast_config, make_fabric


def make_request(size=10240):
    content = Content("http://bench/img0.jpg", "image/jpeg", b"x" * size)
    return TACCRequest(inputs=[content], params={}, user_id="client0"), \
        content


# -- 1: deadline expiry during the SAN transfer -------------------------------

def test_deadline_eaten_by_san_transfer_is_not_a_worker_timeout():
    fabric = make_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    env = fabric.cluster.env
    stub = fabric.alive_frontends()[0].stub
    killed = []
    stub.on_worker_timeout = killed.append
    request, content = make_request()
    # the whole deadline is exactly the SAN transfer: after shipping the
    # input, zero budget remains for the reply timer
    transfer = fabric.cluster.network.transfer_delay(content.size)
    errors = []

    def run_dispatch():
        try:
            yield from stub.dispatch(request, "test-worker",
                                     content.size,
                                     deadline_s=transfer)
        except DispatchError as error:
            errors.append(str(error))

    fabric.cluster.run(until=env.process(run_dispatch()))
    assert errors and "deadline exhausted" in errors[0]
    assert stub.deadline_expiries == 1
    assert stub.timeouts == 0          # NOT misread as a worker timeout
    assert killed == []                # the supervisor was never told
    assert len(stub.candidates("test-worker")) == 1  # advert retained


def test_healthy_dispatch_still_counts_no_expiry():
    fabric = make_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    from tests.core.conftest import make_record
    reply = fabric.submit(make_record())
    response = fabric.cluster.env.run(until=reply)
    assert response.status == "ok"
    stub = fabric.alive_frontends()[0].stub
    assert stub.deadline_expiries == 0
    assert stub.timeouts == 0


# -- 2: backoff cap is a ceiling on the jittered delay ------------------------

def make_stub(config, owner="fe0", seed=7):
    from repro.core.manager_stub import ManagerStub
    cluster = Cluster(seed=seed)
    return ManagerStub(cluster, config, owner,
                       cluster.streams.stream(f"lottery:{owner}"))


def test_backoff_cap_applies_after_jitter():
    """base=0.4, jitter=0.5 => raw jittered delays span 0.3..0.5; a cap
    of 0.45 must bound every draw (pre-fix, up-jittered draws escaped)."""
    config = fast_config(dispatch_backoff_base_s=0.4,
                         dispatch_backoff_factor=2.0,
                         dispatch_backoff_cap_s=0.45,
                         dispatch_backoff_jitter=0.5)
    stub = make_stub(config)
    delays = [stub._backoff_delay(1) for _ in range(200)]
    assert max(delays) <= 0.45
    # the clamp actually engaged: some draws landed exactly on the cap
    assert delays.count(0.45) >= 1
    # and the jitter is still live below the cap
    assert len({delay for delay in delays if delay < 0.45}) > 1


def test_backoff_deep_retries_pin_to_cap_exactly():
    config = fast_config(dispatch_backoff_base_s=0.1,
                         dispatch_backoff_factor=2.0,
                         dispatch_backoff_cap_s=0.5,
                         dispatch_backoff_jitter=0.5)
    stub = make_stub(config)
    for retry_number in (6, 8, 12):
        assert stub._backoff_delay(retry_number) == 0.5


# -- 3: _wait_for_worker never overshoots its deadline ------------------------

def test_wait_for_worker_clamps_polls_to_the_deadline():
    """beacon_interval 5s, budget 1s: pre-fix the single poll slept the
    whole interval, overshooting the deadline fivefold."""
    config = fast_config(beacon_interval_s=5.0, dispatch_timeout_s=3.0)
    stub = make_stub(config)
    env = stub.cluster.env
    results = []

    def wait():
        state = yield from stub._wait_for_worker(
            "test-worker", deadline_at=env.now + 1.0)
        results.append(state)

    env.run(until=env.process(wait()))
    assert results == [None]
    assert env.now == pytest.approx(1.0)
    assert stub.stall_s == pytest.approx(1.0)


def test_wait_for_worker_respects_dispatch_timeout_budget():
    """No explicit deadline: the budget is dispatch_timeout_s and the
    poll steps must land exactly on it, not one beacon interval past."""
    config = fast_config(beacon_interval_s=2.0, dispatch_timeout_s=3.0)
    stub = make_stub(config)
    env = stub.cluster.env
    results = []

    def wait():
        state = yield from stub._wait_for_worker("test-worker")
        results.append(state)

    env.run(until=env.process(wait()))
    assert results == [None]
    assert env.now == pytest.approx(3.0)
