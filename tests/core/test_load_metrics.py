"""Tests for the optional cost-weighted load metric (Section 3.1.2,
footnote 2)."""

import pytest

from repro.core.manager import WorkerInfo
from repro.core.messages import LoadReport, RegisterWorker
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord

from tests.core.conftest import fast_config, make_fabric


def report(queue_length, weighted_load, at=1.0):
    return LoadReport("w1", "test-worker", "n0", queue_length,
                      weighted_load, at)


def make_info():
    registration = RegisterWorker("w1", "test-worker", "n0", None)
    return WorkerInfo(registration, endpoint=None, now=0.0)


def test_queue_metric_tracks_counts():
    info = make_info()
    info.update(report(10, 0.5), alpha=1.0, load_metric="queue")
    assert info.queue_avg == 10.0


def test_weighted_metric_tracks_seconds_of_work():
    info = make_info()
    info.update(report(10, 0.5), alpha=1.0, load_metric="weighted-cost")
    assert info.queue_avg == 0.5


def test_config_rejects_unknown_metric():
    with pytest.raises(ValueError):
        fast_config(load_metric="vibes").validate()


def test_weighted_load_report_includes_in_service_item():
    """A busy worker's weighted load counts the request on the CPU, not
    just the queue behind it."""
    fabric = make_fabric(config=fast_config(load_metric="weighted-cost",
                                            spawn_threshold=1e9))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    stub = fabric.alive_workers()[0]
    # inject a long request directly with a known expected cost
    from repro.core.messages import WorkEnvelope
    from repro.tacc.content import Content
    from repro.tacc.worker import TACCRequest

    content = Content("u", "image/jpeg", b"x" * 1000)
    envelope = WorkEnvelope(
        request_id=1,
        tacc_request=TACCRequest(inputs=[content]),
        reply=fabric.cluster.env.event(),
        submitted_at=0.0,
        input_bytes=1000,
        expected_cost_s=2.5,
    )
    stub.submit(envelope)

    def probe(env):
        yield env.timeout(0.01)  # let the stub pick it up
        return stub._weighted_load()

    load = fabric.cluster.env.run(
        until=fabric.cluster.env.process(probe(fabric.cluster.env)))
    assert load == pytest.approx(2.5)


def test_weighted_metric_spawns_on_expensive_backlog():
    """With weighted-cost, H is seconds of tolerated delay: a queue of
    few-but-expensive requests crosses it even though the count stays
    under the count-based threshold."""
    fabric = make_fabric(config=fast_config(
        load_metric="weighted-cost",
        spawn_threshold=2.0,       # tolerate ~2s of backlog
        spawn_damping_s=3.0))
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(
        fabric.cluster.env, fabric.submit,
        rng=RandomStreams(5).stream("pb"), timeout_s=60.0)
    # huge inputs: ~0.04s each is the worker's flat cost, but the
    # service passes expected cost from content size; use many requests
    pool = [TraceRecord(0.0, "c", f"http://x/{i}.jpg", "image/jpeg",
                        10240) for i in range(20)]
    fabric.cluster.env.process(engine.constant_rate(60.0, 30.0, pool))
    fabric.cluster.run(until=60.0)
    assert fabric.manager.spawns >= 1
    assert len(fabric.alive_workers("test-worker")) >= 2
