"""Focused tests for the monitor's ASCII panel and paging paths.

The Section 3.1.7 monitor replaces the paper's Tk canvas with an ASCII
status panel and replaces "page or email the system operator" with
:class:`Alert` records.  These tests drive the panel's three markers
(ok / !! / mm), the silence watchdog, the recovery notice, and the
maintenance suppression directly, without a full fabric.
"""

import pytest

from repro.core.config import SNSConfig
from repro.core.monitor import Alert, Monitor
from repro.sim.cluster import Cluster

from tests.core.conftest import fast_config


def make_monitor(silence_threshold_s=5.0, on_alert=None):
    cluster = Cluster(seed=11)
    cluster.add_nodes(1)
    monitor = Monitor(cluster, cluster.node("node0"), "monitor",
                      fast_config(),
                      on_alert=on_alert,
                      silence_threshold_s=silence_threshold_s)
    monitor.start()
    return cluster, monitor


# -- paging on silence ----------------------------------------------------------


def test_watchdog_pages_once_per_silent_component():
    cluster, monitor = make_monitor(silence_threshold_s=3.0)
    monitor._mark_seen("fe0")
    monitor._mark_seen("worker.1")
    cluster.run(until=10.0)
    pages = monitor.pages()
    assert {alert.component for alert in pages} == {"fe0", "worker.1"}
    # the watchdog keeps polling every second, but each component is
    # paged exactly once until it reports again
    assert len(pages) == 2
    assert all("no reports" in alert.message for alert in pages)


def test_on_alert_callback_receives_page():
    seen = []
    cluster, monitor = make_monitor(silence_threshold_s=2.0,
                                    on_alert=seen.append)
    monitor._mark_seen("manager.1")
    cluster.run(until=5.0)
    assert len(seen) == 1
    alert = seen[0]
    assert isinstance(alert, Alert)
    assert alert.severity == "page"
    assert alert.component == "manager.1"


def test_component_reporting_again_raises_notice():
    cluster, monitor = make_monitor(silence_threshold_s=2.0)
    monitor._mark_seen("fe0")
    cluster.run(until=5.0)
    assert len(monitor.pages()) == 1
    monitor._mark_seen("fe0")  # it came back
    notices = [alert for alert in monitor.alerts
               if alert.severity == "notice"]
    assert len(notices) == 1
    assert "reporting again" in notices[0].message
    # and a fresh silence pages again
    cluster.run(until=10.0)
    assert len(monitor.pages()) == 2


def test_quiet_component_not_paged_before_threshold():
    cluster, monitor = make_monitor(silence_threshold_s=8.0)
    monitor._mark_seen("fe0")
    cluster.run(until=7.0)
    assert monitor.pages() == []


# -- maintenance suppression -----------------------------------------------------


def test_maintenance_suppresses_silence_page():
    cluster, monitor = make_monitor(silence_threshold_s=2.0)
    monitor._mark_seen("worker.1")
    monitor.set_maintenance("worker.1", True)
    cluster.run(until=10.0)
    assert monitor.pages() == []


def test_maintenance_end_restarts_silence_clock():
    cluster, monitor = make_monitor(silence_threshold_s=4.0)
    monitor._mark_seen("worker.1")
    monitor.set_maintenance("worker.1", True)
    cluster.run(until=10.0)
    monitor.set_maintenance("worker.1", False)
    # the grace period restarts at the maintenance end, not at the
    # long-gone last report
    cluster.run(until=13.0)
    assert monitor.pages() == []
    cluster.run(until=20.0)
    assert {alert.component
            for alert in monitor.pages()} == {"worker.1"}


# -- the ASCII panel -------------------------------------------------------------


def test_panel_markers_for_ok_silenced_and_maintenance():
    cluster, monitor = make_monitor(silence_threshold_s=2.0)
    monitor._mark_seen("silent.1")
    monitor._mark_seen("upgrading.1")
    monitor.set_maintenance("upgrading.1", True)
    cluster.run(until=6.0)
    monitor._mark_seen("fresh.1")
    panel = monitor.render()
    lines = {line.strip() for line in panel.splitlines()}
    assert any(line.startswith("[ok] fresh.1") for line in lines)
    assert any(line.startswith("[!!] silent.1") for line in lines)
    assert any(line.startswith("[mm] upgrading.1") for line in lines)


def test_panel_reports_ages_and_alert_totals():
    cluster, monitor = make_monitor(silence_threshold_s=2.0)
    monitor._mark_seen("silent.1")
    cluster.run(until=6.0)
    monitor._mark_seen("fresh.1")
    panel = monitor.render()
    assert "=== SNS monitor @ t=6.0s ===" in panel
    assert "last seen   0.0s ago" in panel    # fresh.1
    assert "last seen   6.0s ago" in panel    # silent.1
    # one page (silent.1) and the alert total counts it
    assert "alerts: 1 pages, 1 total" in panel


def test_panel_lists_components_sorted():
    cluster, monitor = make_monitor()
    for name in ("zeta.1", "alpha.1", "mid.1"):
        monitor._mark_seen(name)
    panel = monitor.render()
    order = [line.split()[1] for line in panel.splitlines()
             if line.strip().startswith("[")]
    assert order == ["alpha.1", "mid.1", "zeta.1"]
