"""Integration tests: boot, registration, dispatch, load reporting."""

import pytest

from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine

from tests.core.conftest import fast_config, make_fabric, make_record


def test_boot_starts_manager_frontend_worker(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=3.0)
    assert fabric.manager.alive
    assert fabric.manager.beacons_sent >= 4
    # the worker heard a beacon and registered
    assert len(fabric.manager.workers) == 1
    info = next(iter(fabric.manager.workers.values()))
    assert info.worker_type == "test-worker"
    # the FE registered as the manager's process peer
    assert len(fabric.manager.frontends) == 1


def test_single_request_round_trip(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)
    reply = fabric.submit(make_record(size=10000))
    response = fabric.cluster.env.run(until=reply)
    assert response.status == "ok"
    assert response.path == "distilled"
    assert response.size_bytes == 5000


def test_load_reports_reach_manager(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=5.0)
    assert fabric.manager.reports_received >= 6
    info = next(iter(fabric.manager.workers.values()))
    assert info.last_report_at > 3.0


def test_on_demand_spawn_when_no_worker_exists(fabric):
    """Section 4.5: 'On-demand spawning of the first distiller was
    observed as soon as load was offered.'"""
    fabric.boot(n_frontends=1, initial_workers={})
    fabric.cluster.run(until=2.0)
    assert len(fabric.manager.workers) == 0
    reply = fabric.submit(make_record())
    response = fabric.cluster.env.run(until=reply)
    assert response.status == "ok"
    assert fabric.manager.spawns == 1
    assert len(fabric.alive_workers("test-worker")) == 1


def test_requests_balance_across_workers(fabric):
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 3})
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(
        fabric.cluster.env, fabric.submit,
        rng=RandomStreams(1).stream("pb"))
    pool = [make_record(i) for i in range(20)]
    fabric.cluster.env.process(engine.constant_rate(30.0, 20.0, pool))
    fabric.cluster.run(until=30.0)
    served = sorted(stub.served for stub in fabric.alive_workers())
    assert sum(served) == len(engine.completed())
    assert served[0] > sum(served) * 0.15  # nobody starved


def test_worker_error_falls_back_to_original(fabric):
    """Pathological input fails the request, not the system — the FE
    returns the original content (approximate answer)."""
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=2.0)

    record = make_record()
    # make the content pathological by URL convention: DispatchService
    # builds b"x"*size, so instead inject via a custom record size-0 +
    # monkeypatched content is overkill; use the worker's trigger directly
    from repro.tacc.content import Content
    from repro.tacc.worker import TACCRequest
    from tests.core.conftest import TestWorker

    frontend = next(iter(fabric.frontends.values()))
    bad = Content("http://x/bad.jpg", "image/jpeg", b"PATHOLOGICAL" * 10)
    request = TACCRequest(inputs=[bad])

    def scenario(env):
        from repro.core.manager_stub import DispatchError
        from repro.tacc.worker import WorkerError
        try:
            yield from frontend.stub.dispatch(request, "test-worker",
                                              bad.size)
        except WorkerError:
            return "worker-error"
        except DispatchError:
            return "dispatch-error"
        return "ok"

    result = fabric.cluster.env.run(
        until=fabric.cluster.env.process(scenario(fabric.cluster.env)))
    assert result == "worker-error"
    # the worker survived and still serves good requests
    reply = fabric.submit(make_record())
    response = fabric.cluster.env.run(until=reply)
    assert response.status == "ok"


def test_throughput_sustained_under_capacity(fabric):
    """2 workers at ~25 req/s each handle 30 req/s with low latency."""
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(fabric.cluster.env, fabric.submit,
                            rng=RandomStreams(2).stream("pb"),
                            timeout_s=20.0)
    pool = [make_record(i) for i in range(50)]
    fabric.cluster.env.process(engine.constant_rate(30.0, 30.0, pool))
    fabric.cluster.run(until=45.0)
    assert len(engine.failed()) == 0
    latencies = sorted(engine.latencies())
    p50 = latencies[len(latencies) // 2]
    assert p50 < 1.0


def test_frontend_connection_overhead_limits_throughput():
    """With a 14 ms per-connection cost, one FE tops out near 70 req/s
    (the Section 4.6 measurement) no matter how many workers exist."""
    fabric = make_fabric(
        n_nodes=10,
        config=fast_config(frontend_connection_overhead_s=0.014,
                           spawn_threshold=1e9))  # no autoscaling
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 6})
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(fabric.cluster.env, fabric.submit,
                            rng=RandomStreams(3).stream("pb"))
    pool = [make_record(i) for i in range(50)]
    fabric.cluster.env.process(engine.constant_rate(120.0, 30.0, pool))
    fabric.cluster.run(until=32.0)
    frontend = next(iter(fabric.frontends.values()))
    completed_rate = len(engine.completed()) / 30.0
    assert completed_rate < 80.0
    assert frontend.is_saturated()
