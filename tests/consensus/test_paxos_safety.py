"""Paxos safety by brute force.

The single-decree machines in :mod:`repro.consensus.paxos` are pure —
no clocks, no network — so a test can *be* the network: deliver, drop,
duplicate, and reorder every message under a seeded RNG and assert the
one property consensus exists for: **no two different values are ever
chosen for the same decree**, under any schedule.  The multi-Paxos
composition gets the same treatment across a window of log slots, plus
the in-order-application contract of :class:`LearnerLog`.

The liveness side (a partition heals, the log converges, exactly one
leader survives) needs real clocks, so it runs on the sim fabric.
"""

import random

import pytest

from repro.consensus.log import AcceptorLog, LearnerLog
from repro.consensus.paxos import (
    Acceptor,
    Learner,
    Proposer,
    ballot_owner,
    ballot_round,
    make_ballot,
)

N = 3
QUORUM = 2

LOSS = 0.15
DUPLICATE = 0.15


def _chaotic_single_decree(seed: int):
    """Competing proposers for one decree through a hostile network.

    Returns the two independent learners so the caller can check
    agreement.  Messages live in a soup; each step picks a random one,
    maybe drops it, maybe re-enqueues a duplicate, then delivers.
    """
    rng = random.Random(seed)
    names = [f"a{i}" for i in range(N)]
    acceptors = {name: Acceptor() for name in names}
    learners = [Learner(QUORUM), Learner(QUORUM)]
    proposers = {}
    soup = []

    for attempt in range(4):
        ballot = make_ballot(attempt, rng.randrange(N), N)
        if ballot in proposers:
            continue
        proposers[ballot] = Proposer(ballot, f"value-{ballot}", QUORUM)
        for name in names:
            soup.append(("prepare", name, ballot))

    for _ in range(4000):
        if not soup:
            break
        kind, dst, *payload = soup.pop(rng.randrange(len(soup)))
        roll = rng.random()
        if roll < LOSS:
            continue
        if roll < LOSS + DUPLICATE:
            soup.append((kind, dst, *payload))
        if kind == "prepare":
            (ballot,) = payload
            acceptor = acceptors[dst]
            if acceptor.prepare(ballot):
                soup.append(("promise", ballot, dst,
                             acceptor.accepted_ballot,
                             acceptor.accepted_value))
        elif kind == "promise":
            ballot, sender, accepted_ballot, accepted_value = \
                (dst, *payload)
            proposer = proposers[ballot]
            if proposer.on_promise(sender, accepted_ballot,
                                   accepted_value):
                for name in names:
                    soup.append(("accept", name, ballot,
                                 proposer.value))
        elif kind == "accept":
            ballot, value = payload
            if acceptors[dst].accept(ballot, value):
                for index in range(len(learners)):
                    soup.append(("accepted", index, dst, ballot,
                                 value))
        elif kind == "accepted":
            sender, ballot, value = payload
            learners[dst].on_accepted(sender, ballot, value)
    return learners


def test_single_decree_safety_under_loss_dup_reorder():
    """Across many adversarial schedules, decided learners always agree
    — and enough schedules decide for the test to have teeth."""
    decided_runs = 0
    for seed in range(120):
        learners = _chaotic_single_decree(seed)
        values = {repr(learner.chosen_value) for learner in learners
                  if learner.decided}
        assert len(values) <= 1, \
            f"seed {seed} chose two values: {values}"
        if values:
            decided_runs += 1
    assert decided_runs >= 60  # the property is not vacuously true


def test_proposer_must_adopt_highest_accepted_value():
    """The safety core: a quorum member already accepted at ballot 4,
    so the ballot-7 proposer must surrender its own candidate."""
    proposer = Proposer(7, "mine", QUORUM)
    assert not proposer.on_promise("a0", 4, "theirs")
    assert proposer.on_promise("a1", None, None)
    assert proposer.value == "theirs"


def test_acceptor_promise_blocks_lower_ballots():
    acceptor = Acceptor()
    assert acceptor.prepare(5)
    assert not acceptor.prepare(3)
    assert not acceptor.accept(4, "late")
    assert acceptor.accept(5, "ok")
    # a duplicate of the old prepare changes nothing
    assert not acceptor.prepare(3)
    assert acceptor.accepted_value == "ok"


def test_ballot_encoding_round_trips_and_is_owner_disjoint():
    seen = set()
    for round_number in range(4):
        for owner in range(N):
            ballot = make_ballot(round_number, owner, N)
            assert ballot_owner(ballot, N) == owner
            assert ballot_round(ballot, N) == round_number
            seen.add(ballot)
    assert len(seen) == 12  # totally ordered, no collisions
    with pytest.raises(ValueError):
        make_ballot(1, N, N)


def _chaotic_log_battle(seed: int):
    """Two leaders fight over slots 0..4 of the replicated log through
    a lossy, duplicating, reordering network.  Phase 1 (bulk prepare)
    is delivered reliably — its loss only affects liveness — while the
    phase-2 stream gets the full soup treatment."""
    rng = random.Random(seed)
    names = ["r0", "r1", "r2"]
    acceptors = {name: AcceptorLog() for name in names}
    applied = {name: [] for name in names}
    learners = {
        name: LearnerLog(
            QUORUM,
            lambda slot, value, name=name: applied[name].append(
                (slot, value)))
        for name in names
    }
    soup = []
    for index, leader in enumerate(["r0", "r1"]):
        ballot = make_ballot(1 + rng.randrange(3), index, N)
        for name in names:
            acceptors[name].on_prepare(ballot, 0)
        for slot in range(5):
            for name in names:
                soup.append(("accept", name, slot, ballot,
                             (leader, slot)))
    for _ in range(6000):
        if not soup:
            break
        kind, dst, *payload = soup.pop(rng.randrange(len(soup)))
        roll = rng.random()
        if roll < LOSS:
            continue
        if roll < LOSS + DUPLICATE:
            soup.append((kind, dst, *payload))
        if kind == "accept":
            slot, ballot, value = payload
            if acceptors[dst].on_accept(slot, ballot, value):
                for name in names:
                    soup.append(("accepted", name, slot, dst, ballot,
                                 value))
        elif kind == "accepted":
            slot, sender, ballot, value = payload
            learners[dst].on_accepted(slot, sender, ballot, value)
    return learners, applied


def test_multi_paxos_log_safety_and_in_order_application():
    chose_something = 0
    for seed in range(60):
        learners, applied = _chaotic_log_battle(seed)
        # safety: any slot chosen by several replicas has ONE value
        for slot in range(5):
            values = {repr(log.chosen[slot][1])
                      for log in learners.values()
                      if log.is_chosen(slot)}
            assert len(values) <= 1, \
                f"seed {seed} slot {slot} chose {values}"
            if values:
                chose_something += 1
        # application is a contiguous prefix, strictly in slot order
        for name, entries in applied.items():
            slots = [slot for slot, _ in entries]
            assert slots == list(range(len(slots)))
            log = learners[name]
            assert log.applied_through == len(slots) - 1
            # applied values match what the log chose
            for slot, value in entries:
                assert repr(log.chosen[slot][1]) == repr(value)
    assert chose_something >= 100


def test_acceptor_log_shared_promise_covers_fresh_slots():
    log = AcceptorLog()
    promised, accepted = log.on_prepare(6, 0)
    assert promised and accepted == {}
    # a fresh slot created after the bulk prepare inherits the promise
    assert not log.on_accept(3, 4, "stale-leader")
    assert log.on_accept(3, 6, "current-leader")
    # the promise payload reports accepted slots at or above from_slot
    promised, accepted = log.on_prepare(7, 0)
    assert promised
    assert accepted == {3: (6, "current-leader")}


def test_learner_log_sits_on_gaps_until_prefix_completes():
    applied = []
    log = LearnerLog(QUORUM, lambda slot, value: applied.append(slot))
    assert log.on_chosen(2, 5, "c") == []
    assert log.first_unchosen() == 0
    assert log.on_chosen(0, 5, "a") == [0]
    assert log.first_unchosen() == 1
    # filling the gap releases the whole prefix in order
    assert log.on_chosen(1, 5, "b") == [1, 2]
    assert applied == [0, 1, 2]
    assert log.first_unchosen() == 3


def test_liveness_after_partition_heals():
    """The sim-fabric smoke: isolate the leader's node, a new leader
    must take over; heal, and the log must converge with no safety
    violation and exactly one active leader."""
    from tests.core.conftest import fast_config, make_fabric

    fabric = make_fabric(n_nodes=10, config=fast_config(),
                         manager_backend="consensus")
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=3.0)
    group = fabric.manager_group
    first_leader = group.leader
    assert first_leader is not None and first_leader.is_active_leader()

    partitions = fabric.cluster.install_partitions()
    partitions.split({first_leader.node.name: "isolated"},
                     duration_s=12.0)
    fabric.cluster.run(until=10.0)
    second_leader = group.leader
    assert second_leader is not None
    assert second_leader is not first_leader
    assert second_leader.is_active_leader()
    assert not first_leader.is_active_leader()

    fabric.cluster.run(until=25.0)  # healed at t=15
    assert group.safety_violations() == []
    active = [replica for replica in group.alive_replicas()
              if replica.is_active_leader()]
    assert len(active) == 1
    # every live replica caught up to the same applied prefix
    lengths = {replica.learner_log.applied_through
               for replica in group.alive_replicas()}
    assert len(lengths) == 1
