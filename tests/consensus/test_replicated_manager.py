"""The consensus-replicated manager on the sim fabric.

Three manager replicas run a multi-Paxos log whose entries are worker
membership and load-table snapshots; the leader holds a majority lease
and is the only replica that beacons, accepts registrations, or hands
out dispatch hints.  These tests cover the election on boot, the
leader-only surface, failover when the leader dies or is partitioned
away, and the lease-bounded hint contract the manager stubs rely on.
"""

import pytest

from repro.core.fabric import FabricError
from tests.core.conftest import fast_config, make_fabric


def consensus_fabric(n_nodes=10, seed=7, **overrides):
    return make_fabric(n_nodes=n_nodes, seed=seed,
                       config=fast_config(**overrides),
                       manager_backend="consensus")


def test_boot_elects_a_leader_and_registers_workers():
    fabric = consensus_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=4.0)
    group = fabric.manager_group
    assert group is not None and len(group.replicas) == 3
    leader = group.leader
    assert leader is not None and leader.is_active_leader()
    # the fabric's manager handle tracks the leader for monitors/tools
    assert fabric.manager is leader
    # workers registered with the leader and entered the replicated log
    assert len(leader.workers) == 2
    assert set(leader.member_workers) == set(leader.workers)
    stats = group.stats()
    assert stats["replicas"] == 3
    assert stats["elections"] >= 1
    assert stats["log_length"] > 0


def test_replicas_on_distinct_nodes_and_backend_guards():
    fabric = consensus_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    nodes = {replica.node.name
             for replica in fabric.manager_group.replicas}
    assert len(nodes) == 3  # no two replicas share a failure domain
    with pytest.raises(FabricError):
        fabric.start_manager()  # the soft path is closed in this mode
    soft = make_fabric(n_nodes=8, config=fast_config())
    with pytest.raises(FabricError):
        soft.start_manager_group()


def test_followers_refuse_the_leader_surface():
    fabric = consensus_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 1})
    fabric.cluster.run(until=4.0)
    group = fabric.manager_group
    followers = [replica for replica in group.alive_replicas()
                 if not replica.is_active_leader()]
    assert followers
    for follower in followers:
        assert follower.request_worker("test-worker") is None


def test_leader_crash_fails_over_and_replica_restarts():
    fabric = consensus_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=4.0)
    group = fabric.manager_group
    first = group.leader
    first.kill()
    fabric.cluster.run(until=12.0)
    second = group.leader
    assert second is not None and second is not first
    assert second.is_active_leader()
    # the new regime carries the committed membership forward: its
    # beacons re-attract the workers without losing the pool
    assert len(second.workers) == 2
    # the group supervisor restarted the dead replica as a follower
    assert len(group.alive_replicas()) == 3
    assert group.stats()["elections"] >= 2
    assert group.safety_violations() == []


def test_partitioned_leader_loses_lease_not_split_brain():
    """Both sides alive across a partition: the majority elects a new
    leader, the minority's lease lapses, and at no sampled instant do
    two replicas both hold an active lease."""
    fabric = consensus_fabric(n_nodes=12)
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=3.0)
    group = fabric.manager_group
    first = group.leader
    partitions = fabric.cluster.install_partitions()
    partitions.split({first.node.name: "isolated"}, duration_s=15.0)
    for step in range(40):  # sample every 0.5s through fault and heal
        fabric.cluster.run(until=3.5 + 0.5 * step)
        active = [replica for replica in group.alive_replicas()
                  if replica.is_active_leader()]
        assert len(active) <= 1, f"two leaders at {fabric.cluster.env.now}"
    assert group.leader is not first  # the majority moved on
    assert first.alive  # the old leader was never killed, only fenced
    assert group.safety_violations() == []


def test_beacons_carry_the_lease_and_stubs_honor_it():
    fabric = consensus_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=4.0)
    frontend = fabric.alive_frontends()[0]
    stub = frontend.stub
    now = fabric.cluster.env.now
    assert stub.lease_until is not None and stub.lease_until > now
    assert stub.hints_usable(now)
    # past the lease bound the stub must stall rather than guess
    assert not stub.hints_usable(stub.lease_until + 0.001)
    before = stub.lease_stalls
    leader = fabric.manager_group.leader
    leader.kill()
    fabric.cluster.run(until=now + 2.0)  # inside the old lease window
    record_pick = stub.pick("test-worker")
    # either a new lease arrived already or the pick stalled; both are
    # lease-safe — what must never happen is routing on a lapsed lease
    if record_pick is None:
        assert stub.lease_stalls >= before
    fabric.cluster.run(until=now + 12.0)
    assert fabric.manager_group.leader is not None
    assert stub.lease_until is not None


def test_tick_entries_replicate_the_load_table():
    fabric = consensus_fabric()
    fabric.boot(n_frontends=1, initial_workers={"test-worker": 2})
    fabric.cluster.run(until=6.0)
    group = fabric.manager_group
    leader = group.leader
    followers = [replica for replica in group.alive_replicas()
                 if replica is not leader]
    assert leader.load_table  # ticked snapshots of worker queue state
    for follower in followers:
        assert set(follower.member_workers) == set(leader.member_workers)
