"""Tests for the ACID profile store and its write-through cache."""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tacc.customization import (
    ProfileStore,
    StoreCorrupt,
    TransactionError,
    WriteThroughCache,
)


# -- basic operations ---------------------------------------------------------

def test_set_get_roundtrip():
    store = ProfileStore()
    store.set("u1", "quality", 25)
    assert store.get_value("u1", "quality") == 25
    assert store.get("u1") == {"quality": 25}
    assert "u1" in store
    assert store.users() == ["u1"]


def test_get_returns_copy():
    store = ProfileStore()
    store.set("u1", "k", 1)
    profile = store.get("u1")
    profile["k"] = 999
    assert store.get_value("u1", "k") == 1


def test_delete_removes_key_and_empty_user():
    store = ProfileStore()
    store.set("u1", "k", 1)
    store.delete("u1", "k")
    assert "u1" not in store
    assert store.get("u1") == {}


def test_missing_values_use_default():
    store = ProfileStore()
    assert store.get_value("ghost", "k", "dflt") == "dflt"


# -- transactions -----------------------------------------------------------------

def test_transaction_commit_applies_all_writes():
    store = ProfileStore()
    with store.begin() as tx:
        tx.set("u1", "a", 1)
        tx.set("u1", "b", 2)
        tx.set("u2", "c", 3)
    assert store.get("u1") == {"a": 1, "b": 2}
    assert store.get("u2") == {"c": 3}
    assert store.commits == 1


def test_transaction_abort_applies_nothing():
    store = ProfileStore()
    tx = store.begin()
    tx.set("u1", "a", 1)
    tx.abort()
    assert "u1" not in store
    assert store.aborts == 1


def test_exception_in_with_block_aborts():
    store = ProfileStore()
    with pytest.raises(RuntimeError):
        with store.begin() as tx:
            tx.set("u1", "a", 1)
            raise RuntimeError("service error")
    assert "u1" not in store


def test_read_your_writes_inside_transaction():
    store = ProfileStore()
    store.set("u1", "a", "old")
    tx = store.begin()
    tx.set("u1", "a", "new")
    assert tx.get("u1", "a") == "new"
    assert store.get_value("u1", "a") == "old"  # not visible until commit
    tx.delete("u1", "a")
    assert tx.get("u1", "a", "gone") == "gone"
    tx.commit()
    assert store.get_value("u1", "a") is None


def test_single_writer_isolation():
    store = ProfileStore()
    tx = store.begin()
    with pytest.raises(TransactionError):
        store.begin()
    tx.abort()
    store.begin().commit()  # usable again after abort


def test_transaction_unusable_after_commit():
    store = ProfileStore()
    tx = store.begin()
    tx.commit()
    with pytest.raises(TransactionError):
        tx.set("u", "k", 1)
    with pytest.raises(TransactionError):
        tx.commit()


def test_non_json_values_rejected():
    store = ProfileStore()
    with pytest.raises(TransactionError):
        store.set("u", "k", object())


def test_custom_validator_enforced():
    def validator(user, key, value):
        if key == "quality" and not 0 <= value <= 100:
            raise TransactionError("quality out of range")

    store = ProfileStore(validator=validator)
    store.set("u", "quality", 50)
    with pytest.raises(TransactionError):
        store.set("u", "quality", 500)


# -- durability and recovery ----------------------------------------------------------

def test_recovery_replays_committed_transactions(tmp_path):
    path = str(tmp_path / "profiles.wal")
    store = ProfileStore(log_path=path)
    store.set("u1", "a", 1)
    with store.begin() as tx:
        tx.set("u1", "b", 2)
        tx.delete("u1", "a")
    store.close()

    recovered = ProfileStore(log_path=path)
    assert recovered.get("u1") == {"b": 2}


def test_crash_mid_transaction_loses_whole_transaction(tmp_path):
    """Atomicity: a begin without a commit must be invisible."""
    path = str(tmp_path / "profiles.wal")
    store = ProfileStore(log_path=path)
    store.set("u1", "safe", True)
    store.close()
    # simulate a crash after some ops but before the commit record
    with open(path, "a", encoding="utf-8") as log:
        log.write(json.dumps({"op": "begin", "tx": 99}) + "\n")
        log.write(json.dumps({"op": "set", "tx": 99, "user": "u1",
                              "key": "torn", "value": 1}) + "\n")
    recovered = ProfileStore(log_path=path)
    assert recovered.get("u1") == {"safe": True}


def test_torn_tail_line_is_tolerated(tmp_path):
    path = str(tmp_path / "profiles.wal")
    store = ProfileStore(log_path=path)
    store.set("u1", "a", 1)
    store.close()
    with open(path, "a", encoding="utf-8") as log:
        log.write('{"op": "beg')  # partial line: crash mid-write
    recovered = ProfileStore(log_path=path)
    assert recovered.get("u1") == {"a": 1}


def test_corruption_before_tail_raises(tmp_path):
    path = str(tmp_path / "profiles.wal")
    with open(path, "w", encoding="utf-8") as log:
        log.write("GARBAGE\n")
        log.write(json.dumps({"op": "begin", "tx": 1}) + "\n")
    with pytest.raises(StoreCorrupt):
        ProfileStore(log_path=path)


def test_tx_ids_continue_after_recovery(tmp_path):
    path = str(tmp_path / "profiles.wal")
    store = ProfileStore(log_path=path)
    store.set("u", "a", 1)
    store.set("u", "b", 2)
    store.close()
    recovered = ProfileStore(log_path=path)
    tx = recovered.begin()
    assert tx.tx_id > 2
    tx.abort()


def test_checkpoint_compacts_log_and_preserves_state(tmp_path):
    path = str(tmp_path / "profiles.wal")
    store = ProfileStore(log_path=path)
    for round_number in range(20):
        store.set("u1", "counter", round_number)
    size_before = os.path.getsize(path)
    store.checkpoint()
    size_after = os.path.getsize(path)
    assert size_after < size_before
    assert store.get_value("u1", "counter") == 19
    store.set("u1", "post", "ckpt")
    store.close()
    recovered = ProfileStore(log_path=path)
    assert recovered.get("u1") == {"counter": 19, "post": "ckpt"}


def test_checkpoint_with_open_transaction_rejected(tmp_path):
    store = ProfileStore(log_path=str(tmp_path / "p.wal"))
    tx = store.begin()
    with pytest.raises(TransactionError):
        store.checkpoint()
    tx.abort()


# -- property-based: recovery is lossless for committed data ------------------------

@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["u1", "u2", "u3"]),
            st.sampled_from(["a", "b", "c"]),
            st.one_of(st.none(), st.integers(-100, 100),
                      st.text(max_size=8)),
        ),
        max_size=30,
    )
)
def test_recovery_equals_in_memory_state(tmp_path_factory, ops):
    """After any sequence of committed sets/deletes, recovery from the WAL
    reproduces the in-memory state exactly."""
    path = str(tmp_path_factory.mktemp("wal") / "p.wal")
    store = ProfileStore(log_path=path)
    for user, key, value in ops:
        if value is None:
            store.delete(user, key)
        else:
            store.set(user, key, value)
    expected = {user: store.get(user) for user in store.users()}
    store.close()
    recovered = ProfileStore(log_path=path)
    assert {u: recovered.get(u) for u in recovered.users()} == expected


# -- write-through cache -----------------------------------------------------------

def test_cache_reads_hit_after_first_miss():
    store = ProfileStore()
    store.set("u1", "k", 1)
    cache = WriteThroughCache(store)
    assert cache.get("u1") == {"k": 1}
    assert cache.get("u1") == {"k": 1}
    assert cache.misses == 1
    assert cache.hits == 1
    assert cache.hit_rate == 0.5


def test_cache_write_through_updates_both():
    store = ProfileStore()
    cache = WriteThroughCache(store)
    cache.set("u1", "k", "v")
    assert store.get_value("u1", "k") == "v"
    assert cache.get("u1") == {"k": "v"}
    assert cache.hits == 1  # the write primed the cache


def test_cache_invalidate():
    store = ProfileStore()
    store.set("u1", "k", 1)
    cache = WriteThroughCache(store)
    cache.get("u1")
    store.set("u1", "k", 2)  # write bypassing the cache
    assert cache.get("u1") == {"k": 1}  # stale
    cache.invalidate("u1")
    assert cache.get("u1") == {"k": 2}
    cache.invalidate()
    assert cache.get("u1") == {"k": 2}
    assert cache.misses == 3
