"""Tests for pipelines, registry, conversion planning, and dispatch."""

import pytest

from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG, Content
from repro.tacc.dispatch import DispatchRule, DispatchTable
from repro.tacc.pipeline import Pipeline, PipelineError, plan_conversion
from repro.tacc.registry import RegistryError, WorkerRegistry
from repro.tacc.worker import TACCRequest, Transformer


class GifToJpeg(Transformer):
    worker_type = "gif2jpeg"
    accepts = (MIME_GIF,)
    produces = MIME_JPEG

    def transform(self, content, request):
        return content.derive(content.data[: max(1, content.size // 2)],
                              mime=MIME_JPEG, worker=self.worker_type)


class JpegShrink(Transformer):
    worker_type = "jpeg-shrink"
    accepts = (MIME_JPEG,)

    def transform(self, content, request):
        return content.derive(content.data[: max(1, content.size // 4)],
                              worker=self.worker_type)


class HtmlMunger(Transformer):
    worker_type = "html-mung"
    accepts = (MIME_HTML,)

    def transform(self, content, request):
        return content.derive(b"<toolbar/>" + content.data,
                              worker=self.worker_type)


@pytest.fixture
def registry():
    reg = WorkerRegistry()
    reg.register_class(GifToJpeg)
    reg.register_class(JpegShrink)
    reg.register_class(HtmlMunger)
    return reg


def gif(size=1000):
    return Content("http://x/a.gif", MIME_GIF, b"g" * size)


# -- registry ---------------------------------------------------------------

def test_registry_creates_fresh_instances(registry):
    first = registry.create("gif2jpeg")
    second = registry.create("gif2jpeg")
    assert first is not second
    assert isinstance(first, GifToJpeg)


def test_registry_rejects_duplicates_and_unknown(registry):
    with pytest.raises(RegistryError):
        registry.register_class(GifToJpeg)
    with pytest.raises(RegistryError):
        registry.create("nope")


def test_registry_rejects_non_worker_factory():
    reg = WorkerRegistry()
    reg.register("bad", lambda: object())
    with pytest.raises(RegistryError):
        reg.create("bad")


def test_registry_lists_types(registry):
    assert registry.types() == ["gif2jpeg", "html-mung", "jpeg-shrink"]
    assert "gif2jpeg" in registry


# -- pipeline --------------------------------------------------------------------

def test_pipeline_requires_stages():
    with pytest.raises(PipelineError):
        Pipeline([])


def test_pipeline_executes_in_order(registry):
    pipeline = Pipeline(["gif2jpeg", "jpeg-shrink"])
    result = pipeline.execute(registry, TACCRequest(inputs=[gif(1000)]))
    assert result.mime == MIME_JPEG
    assert result.size == 125  # 1000 -> 500 -> 125
    assert result.metadata["original_size"] == 1000


def test_pipeline_then_is_immutable(registry):
    base = Pipeline(["gif2jpeg"])
    extended = base.then("jpeg-shrink")
    assert base.stages == ["gif2jpeg"]
    assert extended.stages == ["gif2jpeg", "jpeg-shrink"]


def test_pipeline_validate_checks_mime_chain(registry):
    Pipeline(["gif2jpeg", "jpeg-shrink"]).validate(registry, MIME_GIF)
    with pytest.raises(PipelineError):
        Pipeline(["jpeg-shrink"]).validate(registry, MIME_GIF)
    with pytest.raises(PipelineError):
        Pipeline(["missing-stage"]).validate(registry)


def test_pipeline_work_estimate_sums_stages(registry):
    pipeline = Pipeline(["gif2jpeg", "jpeg-shrink"])
    request = TACCRequest(inputs=[gif(1024)])
    single = Pipeline(["gif2jpeg"]).work_estimate(registry, request)
    assert pipeline.work_estimate(registry, request) == \
        pytest.approx(2 * single)


def test_plan_conversion_finds_chain(registry):
    pipeline = plan_conversion(registry, MIME_GIF, MIME_JPEG)
    assert pipeline.stages == ["gif2jpeg"]


def test_plan_conversion_no_chain_raises(registry):
    with pytest.raises(PipelineError):
        plan_conversion(registry, MIME_HTML, MIME_JPEG)
    with pytest.raises(PipelineError):
        plan_conversion(registry, MIME_GIF, MIME_GIF)


def test_plan_conversion_multi_hop():
    reg = WorkerRegistry()

    class AtoB(Transformer):
        worker_type = "a2b"
        accepts = ("type/a",)
        produces = "type/b"

    class BtoC(Transformer):
        worker_type = "b2c"
        accepts = ("type/b",)
        produces = "type/c"

    reg.register_class(AtoB)
    reg.register_class(BtoC)
    assert plan_conversion(reg, "type/a", "type/c").stages == ["a2b", "b2c"]


# -- dispatch ------------------------------------------------------------------------

def test_dispatch_first_match_wins(registry):
    table = DispatchTable()
    table.add_rule(Pipeline(["gif2jpeg", "jpeg-shrink"]), mime=MIME_GIF,
                   min_size=1024)
    table.add_rule(Pipeline(["html-mung"]), mime=MIME_HTML)

    big_gif = gif(5000)
    selected = table.select(big_gif)
    assert selected.stages == ["gif2jpeg", "jpeg-shrink"]

    html = Content("http://x/i.html", MIME_HTML, b"<p>" * 100)
    assert table.select(html).stages == ["html-mung"]


def test_dispatch_min_size_threshold(registry):
    """TranSend's 1 KB threshold: data under 1 KB is passed unmodified."""
    table = DispatchTable()
    table.add_rule(Pipeline(["gif2jpeg"]), mime=MIME_GIF, min_size=1024)
    assert table.select(gif(500)) is None
    assert table.select(gif(2048)) is not None


def test_dispatch_default_pipeline(registry):
    table = DispatchTable(default=Pipeline(["html-mung"]))
    unknown = Content("http://x/u.bin", "application/octet-stream", b"??")
    assert table.select(unknown).stages == ["html-mung"]


def test_dispatch_url_and_predicate_matching(registry):
    table = DispatchTable()
    table.add_rule(Pipeline(["gif2jpeg"]), url_contains="/images/",
                   predicate=lambda c: c.size % 2 == 0)
    match = Content("http://x/images/a.gif", MIME_GIF, b"xx")
    miss_url = Content("http://x/docs/a.gif", MIME_GIF, b"xx")
    miss_pred = Content("http://x/images/a.gif", MIME_GIF, b"xxx")
    assert table.select(match) is not None
    assert table.select(miss_url) is None
    assert table.select(miss_pred) is None
