"""Crash-point property test for :meth:`ProfileStore.recover`.

Simulate a crash at *every byte offset* of the WAL: the recovered
state must always equal the state after the longest prefix of fully
committed transactions — never a half-applied transaction, and never
a :class:`StoreCorrupt` for a torn tail.  Only genuine corruption in
the *middle* of the log is allowed to raise.
"""

import os

import pytest

from repro.tacc.customization import ProfileStore, StoreCorrupt

# each entry is one transaction: a list of writes, where value=None
# means delete.  Mixed enough to expose half-application: multi-write
# transactions, overwrites, tombstones, multiple users.
SCRIPT = [
    [("alice", "quality", 60), ("alice", "scale", 0.5)],
    [("bob", "quality", 30)],
    [("alice", "quality", 75), ("carol", "lang", "en")],
    [("alice", "scale", None)],
    [("bob", "quality", 45), ("bob", "colors", 256),
     ("dave", "quality", 5)],
]


def snapshot(store):
    return {user: store.get(user) for user in store.users()}


def build_log(path):
    """Write SCRIPT through a real store, recording after each commit
    the byte offset where its commit record ends and the visible
    state at that point."""
    store = ProfileStore(log_path=path)
    snapshots = [{}]
    commit_ends = []
    for writes in SCRIPT:
        with store.begin() as tx:
            for user, key, value in writes:
                if value is None:
                    tx.delete(user, key)
                else:
                    tx.set(user, key, value)
        # the commit record was flushed; its body ends just before
        # the trailing newline
        commit_ends.append(os.path.getsize(path) - 1)
        snapshots.append(snapshot(store))
    store.close()
    return commit_ends, snapshots


def test_recover_equals_longest_committed_prefix_at_every_offset(
        tmp_path):
    wal = tmp_path / "profiles.wal"
    commit_ends, snapshots = build_log(str(wal))
    raw = wal.read_bytes()

    torn = tmp_path / "torn.wal"
    for offset in range(len(raw) + 1):
        torn.write_bytes(raw[:offset])
        # recover() runs from __init__; a torn tail must never raise
        recovered = ProfileStore(log_path=str(torn))
        expected_txns = sum(1 for end in commit_ends if end <= offset)
        expected = snapshots[expected_txns]
        assert snapshot(recovered) == expected, \
            f"state mismatch at truncation offset {offset}"
        # writes after recovery must survive the *next* recovery too:
        # the sealed log may not let new records splice onto torn bytes
        recovered.set("erin", "offset", offset)
        recovered.close()
        reopened = ProfileStore(log_path=str(torn))
        assert snapshot(reopened) == {**expected,
                                      "erin": {"offset": offset}}, \
            f"post-recovery write lost at truncation offset {offset}"
        reopened.close()


def test_recover_reports_committed_count(tmp_path):
    wal = tmp_path / "profiles.wal"
    commit_ends, _ = build_log(str(wal))
    raw = wal.read_bytes()
    torn = tmp_path / "torn.wal"
    # cut one byte into each commit record's newline boundary: the
    # transaction before the cut is in, the one being cut is out
    for n_committed, end in enumerate(commit_ends, start=1):
        torn.write_bytes(raw[:end])
        store = ProfileStore()  # no log; call recover() explicitly
        store.log_path = str(torn)
        assert store.recover() == n_committed
        torn.write_bytes(raw[:end - 1])
        assert store.recover() == n_committed - 1


def test_multi_write_transaction_never_half_applied(tmp_path):
    """Cut inside the last transaction's body: its earlier set
    records are bytewise intact, but without the commit record none
    of them may surface."""
    wal = tmp_path / "profiles.wal"
    commit_ends, snapshots = build_log(str(wal))
    raw = wal.read_bytes()
    torn = tmp_path / "torn.wal"
    start_of_last = commit_ends[-2] + 1
    for offset in range(start_of_last, commit_ends[-1]):
        torn.write_bytes(raw[:offset])
        recovered = ProfileStore(log_path=str(torn))
        state = snapshot(recovered)
        assert state == snapshots[-2]
        assert state["bob"]["quality"] == 30  # not the in-flight 45
        assert "colors" not in state["bob"]
        assert "dave" not in state
        recovered.close()


def test_mid_log_corruption_still_raises(tmp_path):
    """The torn-tail tolerance must not swallow real corruption:
    garbage anywhere but the final line is a hard error."""
    wal = tmp_path / "profiles.wal"
    build_log(str(wal))
    lines = wal.read_bytes().splitlines(keepends=True)
    lines[2] = b"@@corrupt@@\n"
    wal.write_bytes(b"".join(lines))
    with pytest.raises(StoreCorrupt):
        ProfileStore(log_path=str(wal))


def test_recovery_survives_reopen_and_continue(tmp_path):
    """After a torn-tail recovery the store keeps working: new
    transactions append and a second recovery sees them."""
    wal = tmp_path / "profiles.wal"
    commit_ends, snapshots = build_log(str(wal))
    raw = wal.read_bytes()
    wal.write_bytes(raw[: commit_ends[-1] - 3])  # tear the last commit
    store = ProfileStore(log_path=str(wal))
    assert snapshot(store) == snapshots[-2]
    generation = store.generation
    store.set("erin", "quality", 90)
    store.close()
    reopened = ProfileStore(log_path=str(wal))
    assert reopened.get_value("erin", "quality") == 90
    assert snapshot(reopened) == {**snapshots[-2],
                                  "erin": {"quality": 90}}
    assert reopened.generation >= 1 and generation >= 1
    reopened.close()
