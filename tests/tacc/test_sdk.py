"""Tests for the TACC SDK conformance bench."""

import pytest

from repro.distillers.gif import GifDistiller
from repro.distillers.html import HtmlMunger
from repro.distillers.images import generate_photo
from repro.distillers.jpeg import JpegDistiller
from repro.services.keyword_filter import KeywordFilter
from repro.services.thinclient import ThinClientSimplifier
from repro.sim.rng import RandomStreams
from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG, Content
from repro.tacc.sdk import BenchReport, WorkerBench, check_worker
from repro.tacc.worker import TACCRequest, Transformer, WorkerError


@pytest.fixture(scope="module")
def photo():
    return generate_photo(RandomStreams(9).stream("sdk"), 120, 90)


def gif_fixture(photo):
    return TACCRequest(
        inputs=[Content("http://x/p.gif", MIME_GIF, photo.encode_gif())],
        params={"scale": 2, "quality": 25})


def html_fixture():
    return TACCRequest(
        inputs=[Content("http://x/p.html", MIME_HTML,
                        b"<html><body><h1>T</h1>"
                        b'<img src="http://x/a.gif"><p>text</p>'
                        b"</body></html>")],
        profile={"filter_pattern": "text"})


def garbage(mime):
    return TACCRequest(inputs=[Content("http://x/garbage", mime,
                                       b"\x00garbage\xff" * 10)])


# -- all shipped workers conform ------------------------------------------------

@pytest.mark.parametrize("worker_class,fixture_factory,garbage_mime", [
    (GifDistiller, "gif", MIME_GIF),
    (JpegDistiller, "jpeg", MIME_JPEG),
    (HtmlMunger, "html", None),
    (KeywordFilter, "html", None),
    (ThinClientSimplifier, "html", None),
])
def test_shipped_workers_pass_the_bench(worker_class, fixture_factory,
                                        garbage_mime, photo):
    if fixture_factory == "gif":
        fixtures = [gif_fixture(photo)]
    elif fixture_factory == "jpeg":
        fixtures = [TACCRequest(
            inputs=[Content("http://x/p.jpg", MIME_JPEG,
                            photo.encode_jpeg(90))],
            params={"scale": 2, "quality": 25})]
    else:
        fixtures = [html_fixture()]
    garbage_request = garbage(garbage_mime) if garbage_mime else None
    report = check_worker(worker_class, fixtures, garbage_request)
    assert report.passed, report.render()
    assert worker_class.worker_type in report.render()


# -- the bench actually catches violations ------------------------------------------

def test_bench_catches_stateful_worker(photo):
    class Counter(Transformer):
        worker_type = "stateful-counter"

        def __init__(self):
            self.count = 0

        def transform(self, content, request):
            self.count += 1
            return content.derive(
                f"call {self.count}".encode(), worker=self.worker_type)

    report = check_worker(Counter, [html_fixture()])
    assert not report.passed
    assert any("stateless" in failure.name
               for failure in report.failures())


def test_bench_catches_mime_liar():
    class Liar(Transformer):
        worker_type = "mime-liar"
        accepts = (MIME_HTML,)
        produces = MIME_JPEG   # claims JPEG, emits HTML

        def transform(self, content, request):
            return content.derive(content.data, mime=MIME_HTML,
                                  worker=self.worker_type)

    report = check_worker(Liar, [html_fixture()])
    assert not report.passed
    assert any("MIME" in failure.name for failure in report.failures())


def test_bench_catches_bad_cost_model():
    class NegativeCost(Transformer):
        worker_type = "negative-cost"

        def transform(self, content, request):
            return content

        def work_estimate(self, request):
            return -1.0

    report = check_worker(NegativeCost, [html_fixture()])
    assert not report.passed
    assert any("cost" in failure.name for failure in report.failures())


def test_bench_catches_undisciplined_failure(photo):
    class Crasher(Transformer):
        worker_type = "crasher"

        def transform(self, content, request):
            if b"garbage" in content.data:
                raise ZeroDivisionError("oops")  # not a WorkerError
            return content

    report = check_worker(Crasher, [html_fixture()],
                          garbage=garbage(MIME_HTML))
    assert not report.passed
    assert any("failure discipline" in failure.name
               for failure in report.failures())


def test_bench_catches_anonymous_worker_type():
    class Anonymous(Transformer):
        # worker_type left at the base-class default
        def transform(self, content, request):
            return content

    report = check_worker(Anonymous, [html_fixture()])
    assert not report.passed
    assert any("registrable" in failure.name
               for failure in report.failures())


def test_bench_catches_dishonest_size_model():
    class TinySim(Transformer):
        worker_type = "tiny-sim"

        def transform(self, content, request):
            return content.derive(content.data, worker=self.worker_type)

        def simulate(self, request):
            content = request.content
            return content.derive(b"x", worker=self.worker_type)

    report = check_worker(TinySim, [html_fixture()])
    assert not report.passed
    assert any("size model" in failure.name
               for failure in report.failures())


def test_bench_requires_fixtures():
    with pytest.raises(ValueError):
        WorkerBench(HtmlMunger, fixtures=[])


def test_report_render_lists_all_checks():
    report = check_worker(HtmlMunger, [html_fixture()])
    rendered = report.render()
    assert rendered.count("[PASS]") == 6
    assert "OK" in rendered
