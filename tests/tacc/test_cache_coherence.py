"""Coherence of :class:`WriteThroughCache`: deletes, overwrites, and
tombstones must never serve stale reads — including after a store
recovery rolled back state the cache had already absorbed."""

from repro.tacc.customization import ProfileStore, WriteThroughCache


def make_pair(tmp_path=None):
    path = str(tmp_path / "profiles.wal") if tmp_path else None
    store = ProfileStore(log_path=path)
    return store, WriteThroughCache(store)


def test_overwrite_through_cache_is_immediately_visible():
    store, cache = make_pair()
    cache.set("alice", "quality", 60)
    assert cache.get("alice") == {"quality": 60}
    cache.set("alice", "quality", 75)
    assert cache.get("alice")["quality"] == 75
    assert store.get_value("alice", "quality") == 75


def test_delete_through_cache_never_serves_deleted_key():
    store, cache = make_pair()
    cache.set("alice", "quality", 60)
    cache.set("alice", "scale", 0.5)
    cache.get("alice")  # warm the cache entry
    cache.delete("alice", "quality")
    assert "quality" not in cache.get("alice")
    assert cache.get("alice") == {"scale": 0.5}
    assert store.get_value("alice", "quality") is None


def test_delete_of_uncached_user_stays_coherent():
    store, cache = make_pair()
    store.set("bob", "quality", 30)  # written behind the cache's back
    cache.delete("bob", "quality")
    assert cache.get("bob") == {}


def test_returned_profile_is_a_copy():
    _, cache = make_pair()
    cache.set("alice", "quality", 60)
    profile = cache.get("alice")
    profile["quality"] = 1
    assert cache.get("alice")["quality"] == 60


def test_invalidate_forces_store_reread():
    store, cache = make_pair()
    cache.set("alice", "quality", 60)
    store.set("alice", "quality", 99)  # out-of-band write: cache stale
    assert cache.get("alice")["quality"] == 60  # by design (one FE)
    cache.invalidate("alice")
    assert cache.get("alice")["quality"] == 99
    cache.invalidate()
    assert cache.get("alice")["quality"] == 99


def test_recovery_generation_flushes_cache(tmp_path):
    """A recovery may roll the store back past state the cache already
    absorbed (a torn-tail transaction); the generation stamp must
    flush every cached read from before the recovery."""
    store, cache = make_pair(tmp_path)
    cache.set("alice", "quality", 60)
    store.close()

    # tear the tail: the last transaction never hit disk whole
    wal = tmp_path / "profiles.wal"
    wal.write_bytes(wal.read_bytes()[:-10])

    store.recover()
    assert store.get("alice") == {}  # rolled back on the store side
    # the cache notices the generation bump and drops its stale copy
    assert cache.get("alice") == {}
    assert cache.generation_flushes == 1


def test_tombstone_not_resurrected_by_recovery(tmp_path):
    """A committed delete must stay deleted through recovery, and the
    cache must not re-serve the pre-delete value afterwards."""
    store, cache = make_pair(tmp_path)
    cache.set("alice", "quality", 60)
    cache.delete("alice", "quality")
    store.recover()
    assert store.get_value("alice", "quality") is None
    assert cache.get("alice") == {}
    assert "quality" not in cache.get("alice")


def test_writes_after_recovery_repopulate_cache(tmp_path):
    store, cache = make_pair(tmp_path)
    cache.set("alice", "quality", 60)
    store.recover()
    cache.set("alice", "quality", 42)
    assert cache.get("alice")["quality"] == 42
    store.recover()
    assert cache.get("alice")["quality"] == 42
    assert cache.generation_flushes == 2


def test_hit_rate_accounting_unaffected_by_flushes(tmp_path):
    store, cache = make_pair(tmp_path)
    cache.set("alice", "quality", 60)
    cache.get("alice")
    cache.get("alice")
    hits_before = cache.hits
    store.recover()
    cache.get("alice")  # first read after flush is a miss
    assert cache.hits == hits_before
    assert cache.misses >= 1
    assert 0.0 <= cache.hit_rate <= 1.0
