"""Tests for Content, TACCRequest, and worker base classes."""

import pytest

from repro.tacc.content import (
    MIME_GIF,
    MIME_HTML,
    MIME_JPEG,
    MIME_OCTET,
    Content,
    guess_mime,
)
from repro.tacc.worker import (
    Aggregator,
    IdentityWorker,
    TACCRequest,
    Transformer,
    Worker,
    WorkerError,
)


def make_content(size=1000, mime=MIME_GIF, url="http://x/a.gif"):
    return Content(url=url, mime=mime, data=b"x" * size)


# -- Content -------------------------------------------------------------------

def test_guess_mime_by_extension():
    assert guess_mime("http://a/b.gif") == MIME_GIF
    assert guess_mime("http://a/b.JPG") == MIME_JPEG
    assert guess_mime("http://a/b.jpeg?x=1") == MIME_JPEG
    assert guess_mime("http://a/index.html") == MIME_HTML
    assert guess_mime("http://a/binary") == MIME_OCTET


def test_content_size_and_repr():
    content = make_content(123)
    assert content.size == 123
    assert "123B" in repr(content)
    assert not content.is_derived


def test_derive_records_provenance_and_original_size():
    original = make_content(10000)
    derived = original.derive(b"y" * 1500, mime=MIME_JPEG,
                              worker="gif-distiller", quality=25)
    assert derived.is_derived
    assert derived.mime == MIME_JPEG
    assert derived.metadata["derived_by"] == "gif-distiller"
    assert derived.metadata["original_size"] == 10000
    assert derived.metadata["quality"] == 25
    assert derived.reduction_factor() == pytest.approx(10000 / 1500)


def test_derive_chain_keeps_first_original_size():
    first = make_content(10000).derive(b"y" * 4000, worker="w1")
    second = first.derive(b"z" * 1000, worker="w2")
    assert second.metadata["original_size"] == 10000
    assert second.reduction_factor() == pytest.approx(10.0)


def test_with_metadata_does_not_mutate_original():
    content = make_content()
    tagged = content.with_metadata(cached=True)
    assert tagged.metadata["cached"] is True
    assert "cached" not in content.metadata


# -- TACCRequest ------------------------------------------------------------------

def test_request_single_content_accessor():
    request = TACCRequest(inputs=[make_content()])
    assert request.content.size == 1000
    multi = TACCRequest(inputs=[make_content(), make_content()])
    with pytest.raises(WorkerError):
        _ = multi.content


def test_param_prefers_explicit_over_profile():
    request = TACCRequest(
        inputs=[make_content()],
        params={"quality": 25},
        profile={"quality": 75, "max_width": 320},
    )
    assert request.param("quality") == 25
    assert request.param("max_width") == 320
    assert request.param("absent", "fallback") == "fallback"


# -- workers ------------------------------------------------------------------------

def test_default_work_estimate_is_8ms_per_kb():
    worker = Worker()
    request = TACCRequest(inputs=[make_content(size=10 * 1024)])
    assert worker.work_estimate(request) == pytest.approx(0.08)


def test_accepts_mime_empty_means_everything():
    worker = Worker()
    assert worker.accepts_mime(MIME_GIF)

    class GifOnly(Worker):
        accepts = (MIME_GIF,)

    assert GifOnly().accepts_mime(MIME_GIF)
    assert not GifOnly().accepts_mime(MIME_HTML)


def test_identity_worker_passes_through():
    worker = IdentityWorker()
    content = make_content()
    request = TACCRequest(inputs=[content])
    assert worker.run(request) is content
    assert worker.work_estimate(request) == 0.0


def test_transformer_dispatches_to_transform():
    class Upper(Transformer):
        def transform(self, content, request):
            return content.derive(content.data.upper(), worker="upper")

    result = Upper().run(TACCRequest(
        inputs=[Content("u", MIME_HTML, b"abc")]))
    assert result.data == b"ABC"


def test_aggregator_requires_inputs_and_collates():
    class Concat(Aggregator):
        def aggregate(self, inputs, request):
            joined = b"".join(c.data for c in inputs)
            return inputs[0].derive(joined, worker="concat")

    inputs = [Content("u1", MIME_HTML, b"aa"), Content("u2", MIME_HTML, b"bb")]
    result = Concat().run(TACCRequest(inputs=inputs))
    assert result.data == b"aabb"
    with pytest.raises(WorkerError):
        Concat().run(TACCRequest(inputs=[]))
