"""Tests for experiment-result export."""

import json

import pytest

from repro.analysis.export import export_result
from repro.cli import main, run_experiment
from repro.experiments.figure5_sizes import run_figure5


def test_export_dataclass_result(tmp_path):
    result = run_figure5(n_records=2000, seed=3)
    path = export_result("figure5", result, str(tmp_path))
    payload = json.loads(open(path).read())
    assert payload["experiment"] == "figure5"
    assert payload["result"]["n_records"] == 2000
    assert "image/gif" in payload["result"]["means"]
    # histograms are nested series and survive serialization
    assert isinstance(
        payload["result"]["histograms"]["image/gif"], list)


def test_export_plain_string(tmp_path):
    path = export_result("table1", "the rendered table", str(tmp_path))
    payload = json.loads(open(path).read())
    assert payload["text"] == "the rendered table"


def test_export_handles_exotic_values(tmp_path):
    import dataclasses

    @dataclasses.dataclass
    class Weird:
        infinite: float
        nan: float
        raw: bytes
        obj: object

    weird = Weird(float("inf"), float("nan"), b"\x00" * 5, object())
    path = export_result("weird", weird, str(tmp_path))
    payload = json.loads(open(path).read())
    assert payload["result"]["infinite"] == "inf"
    assert payload["result"]["nan"] is None
    assert payload["result"]["raw"] == "<5 bytes>"
    assert "object" in payload["result"]["obj"]


def test_cli_export_flag(tmp_path, capsys):
    assert main(["run", "figure5", "--quick",
                 "--export", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "[exported" in out
    exported = json.loads((tmp_path / "figure5.json").read_text())
    assert exported["experiment"] == "figure5"


def test_run_experiment_without_export_unchanged():
    text = run_experiment("table1", seed=1, quick=True)
    assert "exported" not in text
    assert "Table 1" in text
