"""Tests for harvest/yield availability accounting."""

from dataclasses import dataclass
from typing import Any, Optional

import pytest

from repro.analysis.metrics import (
    harvest_yield_series,
    yield_recovery_time,
)


@dataclass
class FakeResponse:
    status: str
    path: str = ""


@dataclass
class FakeOutcome:
    submitted_at: float
    ok: bool
    response: Optional[Any] = None


def outcome(at, status=None, ok=True, path=""):
    return FakeOutcome(at, ok,
                       FakeResponse(status, path) if status else None)


def test_series_buckets_by_submission_time():
    outcomes = [
        outcome(0.1, "ok"), outcome(0.4, "ok"),
        outcome(1.2, "ok"), outcome(1.3, None, ok=False),
    ]
    series = harvest_yield_series(outcomes, bucket_s=1.0)
    assert len(series) == 2
    assert series[0]["submitted"] == 2
    assert series[0]["yield"] == 1.0
    assert series[1]["submitted"] == 2
    assert series[1]["answered"] == 1
    assert series[1]["yield"] == 0.5


def test_degraded_answers_hit_harvest_not_yield():
    outcomes = [outcome(0.0, "ok"), outcome(0.1, "fallback")]
    series = harvest_yield_series(outcomes, bucket_s=1.0)
    assert series[0]["yield"] == 1.0
    assert series[0]["harvest"] == 0.5
    assert series[0]["degraded"] == 1


def test_error_replies_count_against_yield():
    """A shed request or an error page answers nothing: it must reduce
    yield like a timeout, not inflate it as a 'degraded answer'."""
    outcomes = [outcome(0.0, "ok"), outcome(0.1, "error")]
    series = harvest_yield_series(outcomes, bucket_s=1.0)
    assert series[0]["answered"] == 1
    assert series[0]["yield"] == 0.5
    assert series[0]["harvest"] == 1.0


def test_shed_replies_get_their_own_column():
    """A shed is a yield loss the admission controller *chose*: it must
    count against yield like any error, but land in the ``shed`` column
    so overload reports can separate deliberate load-shedding from
    degraded answers and from plain failures."""
    outcomes = [
        outcome(0.0, "ok"),
        outcome(0.1, "error", ok=True, path="shed"),
        outcome(0.2, "error", ok=True, path="shed-priority"),
        outcome(0.3, "error", ok=True, path="shed-deadline"),
        outcome(0.4, "error", ok=True),            # generic error page
        outcome(0.5, None, ok=False),              # timeout
        outcome(0.6, "fallback"),                  # degraded answer
    ]
    series = harvest_yield_series(outcomes, bucket_s=1.0)
    row = series[0]
    assert row["shed"] == 3                 # only the shed-* paths
    assert row["answered"] == 2             # the ok and the fallback
    assert row["degraded"] == 1             # fallback: harvest loss
    assert row["yield"] == pytest.approx(2 / 7)
    assert row["harvest"] == pytest.approx(1 / 2)


def test_empty_input_and_validation():
    assert harvest_yield_series([], bucket_s=1.0) == []
    with pytest.raises(ValueError):
        harvest_yield_series([outcome(0.0, "ok")], bucket_s=0.0)


def test_gap_buckets_are_filled():
    outcomes = [outcome(0.0, "ok"), outcome(3.5, "ok")]
    series = harvest_yield_series(outcomes, bucket_s=1.0)
    assert len(series) == 4
    assert series[1]["submitted"] == 0
    assert series[1]["yield"] == 1.0  # nothing asked, nothing failed


def test_recovery_time_finds_sustained_return():
    outcomes = (
        [outcome(t + 0.5, "ok") for t in range(5)]            # healthy
        + [outcome(t + 0.5, None, ok=False) for t in range(5, 10)]
        + [outcome(t + 0.5, "ok") for t in range(10, 15)]     # recovered
    )
    series = harvest_yield_series(outcomes, bucket_s=1.0)
    recovery = yield_recovery_time(series, heal_time=9.0, target=0.95)
    assert recovery == pytest.approx(1.5)  # bucket starting at 10.5s


def test_recovery_none_when_it_never_returns():
    outcomes = [outcome(float(t), None, ok=False) for t in range(10)]
    series = harvest_yield_series(outcomes, bucket_s=1.0)
    assert yield_recovery_time(series, heal_time=2.0) is None


def test_recovery_resets_on_relapse():
    outcomes = (
        [outcome(0.5, "ok")]
        + [outcome(1.5, None, ok=False)]
        + [outcome(2.5, "ok")]
        + [outcome(3.5, None, ok=False)]   # relapse after brief return
        + [outcome(4.5, "ok"), outcome(5.5, "ok")]
    )
    series = harvest_yield_series(outcomes, bucket_s=1.0)
    recovery = yield_recovery_time(series, heal_time=1.0, target=0.95)
    assert recovery == pytest.approx(3.5)  # the 4.5s bucket sticks
