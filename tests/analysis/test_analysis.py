"""Tests for metrics, economics, and reporting."""

import pytest

from repro.analysis.economics import EconomicModel
from repro.analysis.metrics import (
    LatencyStats,
    summarize_outcomes,
    throughput_series,
)
from repro.analysis.reporting import (
    render_histogram,
    render_series,
    render_table,
)


# -- metrics -------------------------------------------------------------------

def test_latency_stats_basic():
    stats = LatencyStats().extend([0.1, 0.2, 0.3, 0.4, 0.5])
    assert stats.count == 5
    assert stats.mean == pytest.approx(0.3)
    assert stats.p50 == pytest.approx(0.3)
    assert stats.maximum == 0.5
    assert stats.percentile(0.0) == 0.1
    assert stats.percentile(1.0) == 0.5


def test_latency_stats_from_samples_and_total():
    stats = LatencyStats.from_samples([0.3, 0.1, 0.2])
    assert stats.count == 3
    assert stats.total == pytest.approx(0.6)
    assert stats.p50 == pytest.approx(0.2)
    assert LatencyStats.from_samples([]).maximum == 0.0


def test_latency_stats_merge_pools_exact_percentiles():
    left = LatencyStats.from_samples([0.1, 0.2])
    right = LatencyStats.from_samples([0.3, 0.4])
    assert left.merge(right) is left
    assert left.count == 4
    # pooled percentiles are exact, identical to one flat accumulator
    flat = LatencyStats.from_samples([0.1, 0.2, 0.3, 0.4])
    for fraction in (0.0, 0.25, 0.5, 0.95, 1.0):
        assert left.percentile(fraction) == \
            pytest.approx(flat.percentile(fraction))
    # merging leaves the donor untouched
    assert right.count == 2


def test_latency_stats_merge_empty_is_noop():
    stats = LatencyStats.from_samples([0.5])
    stats.merge(LatencyStats())
    assert stats.count == 1
    assert stats.maximum == 0.5


def test_latency_histogram_buckets_and_edges():
    stats = LatencyStats.from_samples([0.0, 0.1, 0.5, 0.9, 1.0])
    rows = stats.histogram(bins=2)
    assert len(rows) == 2
    (l0, r0, c0), (l1, r1, c1) = rows
    assert l0 == pytest.approx(0.0)
    assert r1 == pytest.approx(1.0)
    # the top edge is inclusive: the 1.0 maximum lands in the last bin
    assert c0 == 2 and c1 == 3
    assert c0 + c1 == stats.count


def test_latency_histogram_explicit_bounds_clip():
    stats = LatencyStats.from_samples([0.1, 0.5, 2.0])
    rows = stats.histogram(bins=4, lo=0.0, hi=1.0)
    assert sum(count for _, _, count in rows) == 2  # 2.0 clipped out
    assert rows[0][0] == pytest.approx(0.0)
    assert rows[-1][1] == pytest.approx(1.0)


def test_latency_histogram_degenerate_inputs():
    assert LatencyStats().histogram() == []
    with pytest.raises(ValueError):
        LatencyStats.from_samples([0.1]).histogram(bins=0)
    # all-identical samples still produce one populated bin
    rows = LatencyStats.from_samples([0.2, 0.2]).histogram(bins=3)
    assert sum(count for _, _, count in rows) == 2


def test_latency_percentile_interpolates():
    stats = LatencyStats().extend([0.0, 1.0])
    assert stats.percentile(0.25) == pytest.approx(0.25)


def test_latency_stats_validation():
    stats = LatencyStats()
    with pytest.raises(ValueError):
        stats.add(-1.0)
    with pytest.raises(ValueError):
        stats.percentile(2.0)
    assert stats.mean == 0.0
    assert stats.p95 == 0.0


def test_summarize_outcomes():
    class Outcome:
        def __init__(self, ok, latency):
            self.ok = ok
            self.latency = latency

    outcomes = [Outcome(True, 0.1), Outcome(True, 0.3),
                Outcome(False, None)]
    summary = summarize_outcomes(outcomes)
    assert summary["ok"] == 2
    assert summary["failed"] == 1
    assert summary["success_rate"] == pytest.approx(2 / 3)
    assert summary["mean"] == pytest.approx(0.2)


def test_throughput_series_buckets():
    series = throughput_series([0.1, 0.2, 1.5, 2.7], bucket_s=1.0)
    assert len(series) == 3
    assert series[0][1] == pytest.approx(2.0)
    assert throughput_series([], 1.0) == []
    with pytest.raises(ValueError):
        throughput_series([1.0], 0.0)


# -- economics --------------------------------------------------------------------

def test_economics_defaults_match_paper_shape():
    model = EconomicModel()
    report = model.report()
    assert report["subscribers"] == 15000
    # $5000 / 15000 users / 12 months
    assert report["cost_per_subscriber_per_month_usd"] == \
        pytest.approx(0.0278, abs=0.001)
    # savings ~$3000/month -> payback "in only two months"
    assert report["monthly_bandwidth_savings_usd"] == \
        pytest.approx(3000.0)
    assert 1.0 < report["payback_months"] < 3.0


def test_economics_savings_scale_with_hit_rate():
    low = EconomicModel(cache_byte_hit_rate=0.25)
    high = EconomicModel(cache_byte_hit_rate=0.5)
    assert low.monthly_bandwidth_savings() == \
        pytest.approx(high.monthly_bandwidth_savings() / 2)


def test_economics_no_savings_never_pays_back():
    model = EconomicModel(cache_byte_hit_rate=0.0)
    assert model.payback_months() == float("inf")


def test_economics_validation():
    with pytest.raises(ValueError):
        EconomicModel(server_cost_usd=0)
    with pytest.raises(ValueError):
        EconomicModel(cache_byte_hit_rate=2.0)


# -- reporting ----------------------------------------------------------------------

def test_render_table_alignment():
    table = render_table(
        ["Requests/Second", "# Front Ends", "# Distillers"],
        [["0-24", 1, 1], ["25-47", 1, 2]],
        title="Table 2",
    )
    lines = table.splitlines()
    assert lines[0] == "Table 2"
    assert "Requests/Second" in lines[1]
    assert lines[2].startswith("---")
    assert "0-24" in lines[3]


def test_render_table_validates_width():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_render_histogram_scales_bars():
    out = render_histogram([("small", 1.0), ("big", 10.0)], width=10)
    lines = out.splitlines()
    assert lines[1].count("#") == 10
    assert lines[0].count("#") == 1
    assert render_histogram([], title="t").endswith("(empty)")


def test_render_series_plots_points():
    points = [(0.0, 0.0), (50.0, 10.0), (100.0, 5.0)]
    out = render_series(points, width=20, height=5, title="queues")
    assert "queues" in out
    assert out.count("*") == 3
    assert "t=0s" in out
