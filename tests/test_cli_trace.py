"""Tests for the trace CLI subcommand."""

import pytest

from repro.cli import main


def test_trace_generate_prints_stats(capsys):
    assert main(["trace", "--duration", "300", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "requests over" in out
    assert "image/gif" in out
    assert "buckets" in out


def test_trace_generate_to_file_and_analyze(tmp_path, capsys):
    path = str(tmp_path / "t.tsv")
    assert main(["trace", "--duration", "200", "--rate", "4",
                 "--out", path]) == 0
    first = capsys.readouterr().out
    assert f"wrote" in first
    assert main(["trace", "--analyze", path]) == 0
    second = capsys.readouterr().out
    assert path in second
    assert "image/gif" in second


def test_trace_roundtrip_preserves_statistics(tmp_path, capsys):
    path = str(tmp_path / "t.tsv")
    main(["trace", "--duration", "300", "--seed", "9", "--out", path])
    generated = capsys.readouterr().out
    main(["trace", "--analyze", path])
    analyzed = capsys.readouterr().out
    # the per-mime lines must be identical between generate and analyze
    def mime_lines(text):
        return [line for line in text.splitlines()
                if line.strip().startswith(("image/", "text/",
                                            "application/"))]
    assert mime_lines(generated) == mime_lines(analyzed)
