"""Tests for the synthetic image codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distillers.images import (
    CODEC_GIF,
    CODEC_JPEG,
    ImageFormatError,
    SyntheticImage,
    generate_photo,
    photo_sized_for,
)
from repro.sim.rng import RandomStreams


@pytest.fixture
def rng():
    return RandomStreams(42).stream("images")


@pytest.fixture
def photo(rng):
    return generate_photo(rng, width=160, height=120)


def test_pixels_must_be_2d_uint8():
    with pytest.raises(ValueError):
        SyntheticImage(np.zeros((3, 3), dtype=np.float64))
    with pytest.raises(ValueError):
        SyntheticImage(np.zeros((3, 3, 3), dtype=np.uint8))
    with pytest.raises(ValueError):
        SyntheticImage(np.zeros((0, 3), dtype=np.uint8))


def test_gif_roundtrip_is_lossless(photo):
    data = photo.encode_gif()
    decoded, codec, _ = SyntheticImage.decode(data)
    assert codec == CODEC_GIF
    assert decoded == photo


def test_jpeg_roundtrip_preserves_dimensions_not_pixels(photo):
    data = photo.encode_jpeg(quality=25)
    decoded, codec, quality = SyntheticImage.decode(data)
    assert codec == CODEC_JPEG
    assert quality == 25
    assert decoded.width == photo.width
    assert decoded.height == photo.height
    assert decoded != photo  # lossy


def test_jpeg_quality_100_nearly_lossless(photo):
    decoded, _, _ = SyntheticImage.decode(photo.encode_jpeg(quality=100))
    error = np.abs(decoded.pixels.astype(int)
                   - photo.pixels.astype(int)).max()
    assert error <= 2


def test_jpeg_smaller_than_gif_for_photos(photo):
    """The property TranSend exploited by converting GIF to JPEG."""
    assert len(photo.encode_jpeg(75)) < len(photo.encode_gif())


def test_lower_quality_means_smaller_bytes(photo):
    sizes = [len(photo.encode_jpeg(quality)) for quality in
             (5, 25, 50, 75, 100)]
    for smaller, bigger in zip(sizes, sizes[1:]):
        assert smaller < bigger


def test_quality_bounds_validated(photo):
    with pytest.raises(ValueError):
        photo.encode_jpeg(0)
    with pytest.raises(ValueError):
        photo.encode_jpeg(101)


def test_scaling_reduces_dimensions(photo):
    half = photo.scaled(2)
    assert half.width == photo.width // 2
    assert half.height == photo.height // 2
    assert photo.scaled(1) == photo
    with pytest.raises(ValueError):
        photo.scaled(0)


def test_scaling_below_one_pixel_clamps(rng):
    tiny = generate_photo(rng, width=16, height=16)
    scaled = tiny.scaled(100)
    assert scaled.width == 1
    assert scaled.height == 1


def test_low_pass_smooths(photo):
    smoothed = photo.low_pass(2)
    assert smoothed.width == photo.width
    # smoothing reduces local variation
    def roughness(image):
        return float(np.abs(np.diff(image.pixels.astype(int),
                                    axis=1)).mean())
    assert roughness(smoothed) < roughness(photo)
    assert photo.low_pass(0) == photo
    with pytest.raises(ValueError):
        photo.low_pass(-1)


def test_figure3_headline_reduction(rng):
    """Scale 2x + quality 25 turns a ~10 KB image into roughly 1.5 KB
    (the paper reports a 6.7x reduction; we accept 3x-15x)."""
    image = photo_sized_for(rng, target_gif_bytes=10240)
    original = image.encode_gif()
    distilled = image.scaled(2).encode_jpeg(quality=25)
    factor = len(original) / len(distilled)
    assert 3.0 < factor < 15.0


def test_decode_rejects_garbage():
    with pytest.raises(ImageFormatError):
        SyntheticImage.decode(b"short")
    with pytest.raises(ImageFormatError):
        SyntheticImage.decode(b"NOPE" + b"\x00" * 100)


def test_decode_rejects_corrupt_payload(photo):
    data = bytearray(photo.encode_gif())
    data[20:] = b"garbage-not-zlib" * 4
    with pytest.raises(ImageFormatError):
        SyntheticImage.decode(bytes(data))


def test_decode_rejects_wrong_payload_length(photo):
    import struct
    import zlib
    header = struct.pack(">4sBIIB", b"SIMG", CODEC_GIF, 10, 10, 0)
    payload = zlib.compress(b"\x00" * 50)  # 50 != 100
    with pytest.raises(ImageFormatError):
        SyntheticImage.decode(header + payload)


def test_decode_rejects_absurd_dimensions():
    import struct
    header = struct.pack(">4sBIIB", b"SIMG", CODEC_GIF, 0, 10, 0)
    with pytest.raises(ImageFormatError):
        SyntheticImage.decode(header + b"")


def test_photo_sized_for_hits_target(rng):
    for target in (2048, 10240, 40960):
        image = photo_sized_for(rng, target_gif_bytes=target)
        actual = len(image.encode_gif())
        assert 0.5 * target <= actual <= 2.0 * target
    with pytest.raises(ValueError):
        photo_sized_for(rng, target_gif_bytes=10)


@settings(max_examples=20, deadline=None)
@given(
    width=st.integers(8, 64),
    height=st.integers(8, 64),
    quality=st.integers(1, 100),
    seed=st.integers(0, 1000),
)
def test_codec_roundtrip_properties(width, height, quality, seed):
    """Any generated photo encodes and decodes with consistent geometry
    at any quality."""
    rng = RandomStreams(seed).stream("prop")
    image = generate_photo(rng, width=width, height=height)
    decoded, codec, decoded_quality = SyntheticImage.decode(
        image.encode_jpeg(quality))
    assert (decoded.width, decoded.height) == (width, height)
    assert decoded_quality == quality
    lossless, _, _ = SyntheticImage.decode(image.encode_gif())
    assert lossless == image
