"""Tests for the three TranSend distillers and the latency model."""

import pytest

from repro.distillers.base import DistillerLatencyModel
from repro.distillers.gif import GifDistiller
from repro.distillers.html import HtmlMunger
from repro.distillers.images import SyntheticImage, generate_photo
from repro.distillers.jpeg import JpegDistiller
from repro.sim.rng import RandomStreams
from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG, Content
from repro.tacc.worker import TACCRequest, WorkerError


@pytest.fixture
def rng():
    return RandomStreams(7).stream("distillers")


@pytest.fixture
def photo(rng):
    return generate_photo(rng, width=160, height=120)


def gif_content(photo, url="http://x/pic.gif"):
    return Content(url, MIME_GIF, photo.encode_gif())


def jpeg_content(photo, url="http://x/pic.jpg", quality=90):
    return Content(url, MIME_JPEG, photo.encode_jpeg(quality))


def request_for(content, **params):
    return TACCRequest(inputs=[content], params=params, user_id="u1")


# -- GIF distiller --------------------------------------------------------------

def test_gif_distiller_converts_to_smaller_jpeg(photo):
    content = gif_content(photo)
    result = GifDistiller().run(request_for(content, scale=2, quality=25))
    assert result.mime == MIME_JPEG
    assert result.size < content.size / 3
    assert result.metadata["derived_by"] == "gif-distiller"
    decoded, _, quality = SyntheticImage.decode(result.data)
    assert quality == 25
    assert decoded.width == photo.width // 2


def test_gif_distiller_uses_profile_parameters(photo):
    content = gif_content(photo)
    request = TACCRequest(inputs=[content], params={},
                          profile={"scale": 4, "quality": 10})
    result = GifDistiller().run(request)
    decoded, _, quality = SyntheticImage.decode(result.data)
    assert quality == 10
    assert decoded.width == photo.width // 4


def test_gif_distiller_rejects_pathological_input():
    bad = Content("http://x/error.gif", MIME_GIF,
                  b"<html>404 not found</html>")
    with pytest.raises(WorkerError):
        GifDistiller().run(request_for(bad))


def test_gif_distiller_rejects_jpeg_coded_bytes(photo):
    mislabeled = Content("http://x/fake.gif", MIME_GIF,
                         photo.encode_jpeg(80))
    with pytest.raises(WorkerError):
        GifDistiller().run(request_for(mislabeled))


# -- JPEG distiller ------------------------------------------------------------------

def test_jpeg_distiller_shrinks(photo):
    content = jpeg_content(photo, quality=95)
    result = JpegDistiller().run(request_for(content, scale=2, quality=25))
    assert result.mime == MIME_JPEG
    assert result.size < content.size
    assert result.reduction_factor() > 2.0


def test_jpeg_distiller_low_pass_option(photo):
    content = jpeg_content(photo, quality=95)
    plain = JpegDistiller().run(
        request_for(content, scale=1, quality=50))
    smoothed = JpegDistiller().run(
        request_for(content, scale=1, quality=50, low_pass_radius=2))
    # smoothing strictly helps the entropy coder
    assert smoothed.size < plain.size


def test_jpeg_distiller_rejects_gif_bytes(photo):
    mislabeled = Content("http://x/fake.jpg", MIME_JPEG,
                         photo.encode_gif())
    with pytest.raises(WorkerError):
        JpegDistiller().run(request_for(mislabeled))


def test_jpeg_distiller_rejects_garbage():
    with pytest.raises(WorkerError):
        JpegDistiller().run(request_for(
            Content("http://x/p.jpg", MIME_JPEG, b"not an image")))


# -- HTML munger ------------------------------------------------------------------------

PAGE = b"""<html><head><title>T</title></head><body>
<p>hello</p>
<img src="http://x/a.gif" alt="a">
<img src='http://x/b.jpg?v=2'>
</body></html>"""


def test_html_munger_adds_toolbar_and_marks_images():
    content = Content("http://x/page.html", MIME_HTML, PAGE)
    result = HtmlMunger().run(
        request_for(content, quality=25, scale=2))
    html = result.data.decode()
    assert "transend-toolbar" in html
    assert html.count("[original]") == 2
    assert "transend-quality=25" in html
    assert "http://x/b.jpg?v=2&transend-quality=25" in html
    assert result.metadata["images_marked"] == 2
    # toolbar injected right after <body>
    assert html.index("<body>") < html.index("transend-toolbar")


def test_html_munger_without_body_prepends_toolbar():
    content = Content("http://x/frag.html", MIME_HTML,
                      b"<p>fragment</p>")
    html = HtmlMunger().run(request_for(content)).data.decode()
    assert html.startswith('<div class="transend-toolbar">')


def test_html_munger_includes_user_in_prefs_link():
    content = Content("http://x/p.html", MIME_HTML, b"<p>x</p>")
    request = TACCRequest(inputs=[content], user_id="client42")
    html = HtmlMunger().run(request).data.decode()
    assert "user=client42" in html


def test_html_munger_rejects_binary():
    content = Content("http://x/p.html", MIME_HTML, b"\xff\xfe\x00binary")
    with pytest.raises(WorkerError):
        HtmlMunger().run(request_for(content))


# -- latency models ------------------------------------------------------------------

def test_latency_mean_is_linear_in_size():
    model = DistillerLatencyModel(slope_s_per_kb=0.008, fixed_s=0.005)
    assert model.mean(0) == pytest.approx(0.005)
    assert model.mean(10240) == pytest.approx(0.005 + 0.08)
    # 8 ms per additional KB
    delta = model.mean(20480) - model.mean(10240)
    assert delta == pytest.approx(0.08)


def test_latency_samples_center_on_mean_with_variation(rng):
    model = DistillerLatencyModel(slope_s_per_kb=0.008)
    samples = [model.sample(rng, 10240) for _ in range(5000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(model.mean(10240), rel=0.1)
    assert max(samples) > 2 * min(samples)  # "large variation"


def test_latency_model_validation():
    with pytest.raises(ValueError):
        DistillerLatencyModel(slope_s_per_kb=-1.0)


def test_work_estimate_uses_latency_model(photo):
    content = gif_content(photo)
    request = request_for(content)
    estimate = GifDistiller().work_estimate(request)
    assert estimate == pytest.approx(
        GifDistiller.latency_model.mean(content.size))


def test_html_distiller_far_cheaper_than_image_distillers(photo):
    html = Content("http://x/p.html", MIME_HTML, b"x" * 10240)
    gif = gif_content(photo)
    html_cost = HtmlMunger().work_estimate(request_for(html))
    gif_cost = GifDistiller().work_estimate(request_for(gif))
    assert html_cost < gif_cost / 5
