"""Tests for the experiment-runner CLI."""

import pytest

from repro.cli import (
    EXPERIMENTS,
    build_parser,
    list_experiments,
    main,
    run_experiment,
)


def test_list_mentions_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "all" in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_unknown_experiment_errors(capsys):
    assert main(["run", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "figure8" in err  # the listing is shown for help


def test_run_quick_experiment(capsys):
    assert main(["run", "table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "TranSend" in out


def test_run_with_seed(capsys):
    assert main(["run", "figure5", "--quick", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "(seed 5)" in out
    assert "Figure 5" in out


def test_every_experiment_has_quick_and_full_runner():
    for name, (description, full, fast) in EXPERIMENTS.items():
        assert description
        assert callable(full)
        assert callable(fast)


@pytest.mark.parametrize("name", ["figure7", "manager", "hotbot",
                                  "economics"])
def test_quick_runners_produce_output(name):
    text = run_experiment(name, seed=3, quick=True)
    assert name in text
    assert len(text.splitlines()) >= 3


def test_parser_shape():
    parser = build_parser()
    args = parser.parse_args(["run", "figure8", "--seed", "9",
                              "--quick"])
    assert args.experiment == "figure8"
    assert args.seed == 9
    assert args.quick


def test_chaos_list(capsys):
    assert main(["chaos", "list"]) == 0
    out = capsys.readouterr().out
    assert "mixed" in out
    assert "smoke" in out


def test_chaos_unknown_campaign(capsys):
    assert main(["chaos", "nonsense"]) == 2
    assert "unknown campaign" in capsys.readouterr().err


def test_chaos_smoke_runs_clean(capsys):
    assert main(["chaos", "smoke", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "invariants all held" in out
    assert "yield" in out


def test_chaos_exit_code_reflects_violations(capsys, monkeypatch):
    from repro.core.worker_stub import WorkerStub

    def no_register(self, beacon):
        return iter(())

    monkeypatch.setattr(WorkerStub, "_register", no_register)
    assert main(["chaos", "smoke", "--seed", "3"]) == 1
    assert "VIOLATIONS" in capsys.readouterr().out
