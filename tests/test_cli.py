"""Tests for the experiment-runner CLI."""

import pytest

from repro.cli import (
    EXPERIMENTS,
    build_parser,
    list_experiments,
    main,
    run_experiment,
)


def test_list_mentions_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "all" in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_unknown_experiment_errors(capsys):
    assert main(["run", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "figure8" in err  # the listing is shown for help


def test_run_quick_experiment(capsys):
    assert main(["run", "table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "TranSend" in out


def test_run_with_seed(capsys):
    assert main(["run", "figure5", "--quick", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "(seed 5)" in out
    assert "Figure 5" in out


def test_every_experiment_has_quick_and_full_runner():
    for name, (description, full, fast) in EXPERIMENTS.items():
        assert description
        assert callable(full)
        assert callable(fast)


@pytest.mark.parametrize("name", ["figure7", "manager", "hotbot",
                                  "economics"])
def test_quick_runners_produce_output(name):
    text = run_experiment(name, seed=3, quick=True)
    assert name in text
    assert len(text.splitlines()) >= 3


def test_parser_shape():
    parser = build_parser()
    args = parser.parse_args(["run", "figure8", "--seed", "9",
                              "--quick"])
    assert args.experiment == "figure8"
    assert args.seed == 9
    assert args.quick
