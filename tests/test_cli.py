"""Tests for the experiment-runner CLI."""

import pytest

from repro.cli import (
    EXPERIMENTS,
    build_parser,
    list_experiments,
    main,
    run_experiment,
)


def test_list_mentions_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "all" in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_unknown_experiment_errors(capsys):
    assert main(["run", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "figure8" in err  # the listing is shown for help


def test_run_quick_experiment(capsys):
    assert main(["run", "table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "TranSend" in out


def test_run_with_seed(capsys):
    assert main(["run", "figure5", "--quick", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "(seed 5)" in out
    assert "Figure 5" in out


def test_every_experiment_has_quick_and_full_runner():
    for name, (description, full, fast) in EXPERIMENTS.items():
        assert description
        assert callable(full)
        assert callable(fast)


@pytest.mark.parametrize("name", ["figure7", "manager", "hotbot",
                                  "economics"])
def test_quick_runners_produce_output(name):
    text = run_experiment(name, seed=3, quick=True)
    assert name in text
    assert len(text.splitlines()) >= 3


def test_parser_shape():
    parser = build_parser()
    args = parser.parse_args(["run", "figure8", "--seed", "9",
                              "--quick"])
    assert args.experiment == "figure8"
    assert args.seed == 9
    assert args.quick


def test_chaos_list(capsys):
    assert main(["chaos", "list"]) == 0
    out = capsys.readouterr().out
    assert "mixed" in out
    assert "smoke" in out


def test_chaos_unknown_campaign(capsys):
    assert main(["chaos", "nonsense"]) == 2
    assert "unknown campaign" in capsys.readouterr().err


def test_chaos_smoke_runs_clean(capsys):
    assert main(["chaos", "smoke", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "invariants all held" in out
    assert "yield" in out


def test_chaos_exit_code_reflects_violations(capsys, monkeypatch):
    from repro.core.worker_stub import WorkerStub

    def no_register(self, beacon):
        return iter(())

    monkeypatch.setattr(WorkerStub, "_register", no_register)
    assert main(["chaos", "smoke", "--seed", "3"]) == 1
    assert "VIOLATIONS" in capsys.readouterr().out


def test_unknown_experiment_lists_every_name(capsys):
    """Exit 2, no traceback, and the full catalog on stderr."""
    assert main(["run", "nonsense"]) == 2
    err = capsys.readouterr().err
    for name in EXPERIMENTS:
        assert name in err


def test_unknown_campaign_lists_every_name(capsys):
    from repro.chaos import CAMPAIGNS

    assert main(["chaos", "nonsense"]) == 2
    err = capsys.readouterr().err
    for name in CAMPAIGNS:
        assert name in err


# -- the --policy switch ------------------------------------------------------


def test_policy_flag_parses_on_run_and_chaos():
    parser = build_parser()
    args = parser.parse_args(["run", "policies", "--quick",
                              "--policy", "ewma+eject"])
    assert args.policy == "ewma+eject"
    args = parser.parse_args(["chaos", "smoke", "--policy", "p2c"])
    assert args.policy == "p2c"


def test_policy_flag_rejected_for_unaware_experiment(capsys):
    assert main(["run", "table2", "--quick", "--policy", "p2c"]) == 2
    err = capsys.readouterr().err
    assert "--policy only applies to" in err
    assert "policies" in err


def test_policy_flag_rejects_unknown_spec(capsys):
    assert main(["run", "policies", "--quick",
                 "--policy", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "unknown routing policy" in err
    assert "available policies" in err


def test_chaos_policy_flag_rejects_unknown_spec(capsys):
    assert main(["chaos", "smoke", "--policy",
                 "lottery+nonsense"]) == 2
    assert "unknown policy wrapper" in capsys.readouterr().err


def test_chaos_policy_flag_threads_into_the_campaign(monkeypatch):
    """--policy must land on the campaign before the runner builds."""
    seen = {}

    class FakeRunner:
        def __init__(self, campaign, seed=1997):
            seen["routing_policy"] = campaign.routing_policy

        def run(self):
            class Report:
                ok = True

                def render(self):
                    return "fake"
            return Report()

    monkeypatch.setattr("repro.chaos.CampaignRunner", FakeRunner)
    assert main(["chaos", "smoke", "--policy", "least-outstanding"]) == 0
    assert seen["routing_policy"] == "least-outstanding"


# -- span tracing (--trace-out / spans) -----------------------------------------


def test_run_trace_out_writes_valid_chrome_trace(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    assert main(["run", "endtoend", "--quick", "--seed", "1997",
                 "--trace-out", str(out), "--sample", "10"]) == 0
    text = capsys.readouterr().out
    assert "latency reduction" in text        # the experiment itself
    assert "latency attribution over" in text  # plus the span report
    assert "components sum to e2e within" in text
    document = json.loads(out.read_text())
    events = [event for event in document["traceEvents"]
              if event.get("ph") == "X"]
    assert events
    for event in events:
        assert {"name", "ts", "dur", "pid", "tid"} <= set(event)
        assert "trace_id" in event["args"]


def test_trace_out_components_sum_per_sampled_request(tmp_path,
                                                      capsys):
    """The acceptance criterion through the CLI: every sampled request
    in the written file decomposes to within 1% of its end-to-end."""
    from repro.obs import load_chrome_trace
    from repro.obs.attribution import attribute_trace, find_root

    out = tmp_path / "trace.json"
    assert main(["run", "endtoend", "--quick", "--seed", "1997",
                 "--trace-out", str(out), "--sample", "5"]) == 0
    capsys.readouterr()
    traces = load_chrome_trace(str(out))
    assert traces
    for trace_id, spans in traces.items():
        root = find_root(spans)
        components = attribute_trace(spans)
        if root is None or not components or root.duration == 0:
            continue
        residual = abs(sum(components.values()) - root.duration)
        assert residual <= 0.01 * root.duration, trace_id


def test_spans_subcommand_summarizes_a_trace_file(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["run", "endtoend", "--quick", "--seed", "1997",
                 "--trace-out", str(out), "--sample", "10"]) == 0
    capsys.readouterr()
    assert main(["spans", str(out), "--tree", "1"]) == 0
    text = capsys.readouterr().out
    assert "trace(s)" in text
    assert "latency attribution over" in text
    assert "critical path:" in text
    assert "request [other] @client" in text


def test_spans_subcommand_missing_file(tmp_path, capsys):
    assert main(["spans", str(tmp_path / "absent.json")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_chaos_trace_out(tmp_path, capsys):
    import json

    out = tmp_path / "chaos-trace.json"
    assert main(["chaos", "smoke", "--seed", "3",
                 "--trace-out", str(out), "--sample", "20"]) == 0
    text = capsys.readouterr().out
    assert "invariants all held" in text
    assert "latency attribution over" in text
    assert json.loads(out.read_text())["traceEvents"]


def test_run_without_trace_out_never_installs_tracers(capsys):
    """The strictly-opt-in guarantee at the CLI layer."""
    from repro.obs import tracing_settings

    assert main(["run", "table1", "--quick"]) == 0
    capsys.readouterr()
    assert tracing_settings() is None


def test_help_disambiguates_workload_traces_from_spans():
    parser = build_parser()
    text = parser.format_help()
    assert "workload trace" in text
    assert "spans" in text


def test_replay_serial_summary(capsys):
    assert main(["replay", "--duration", "10", "--rate", "200"]) == 0
    out = capsys.readouterr().out
    assert "requests over 10s trace" in out
    assert "1 window(s)" in out
    assert "mean latency" in out


def test_replay_sharded_with_drift_check(capsys):
    assert main(["replay", "--duration", "12", "--rate", "200",
                 "--jobs", "2", "--check"]) == 0
    out = capsys.readouterr().out
    assert "2 window(s)" in out
    assert "drift contract ok" in out
    assert "submitted" in out


def test_replay_windows_override(capsys):
    assert main(["replay", "--duration", "12", "--rate", "100",
                 "--windows", "3"]) == 0
    out = capsys.readouterr().out
    assert "3 window(s)" in out
    # per-window lines appear when the replay is actually sharded
    assert "[0, 4)" in out
