"""Quick-scale validation of the workload-side experiment drivers
(Figures 5-7, cache study, economics)."""

import pytest

from repro.experiments.cache_hitrate import (
    run_cache_size_sweep,
    run_population_sweep,
)
from repro.experiments.economics import run_economics
from repro.experiments.figure5_sizes import PAPER_MEANS, run_figure5
from repro.experiments.figure6_burstiness import run_figure6
from repro.experiments.figure7_distiller import run_figure7
from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG


def test_figure5_means_and_shapes_match_paper():
    result = run_figure5(n_records=20_000, seed=7)
    for mime in (MIME_HTML, MIME_GIF, MIME_JPEG):
        assert result.means[mime] == pytest.approx(
            PAPER_MEANS[mime], rel=0.2), mime
    assert 0.35 < result.gif_fraction_below_1kb < 0.65
    assert result.jpeg_fraction_below_1kb < 0.02
    assert result.shares[MIME_GIF] == pytest.approx(0.50, abs=0.03)
    rendered = result.render()
    assert "Figure 5" in rendered
    assert "3428" in rendered  # paper mean shown alongside


def test_figure6_rates_and_burstiness():
    result = run_figure6(duration_s=4 * 3600.0, seed=7)
    stats_2min = result.report[120.0]
    assert stats_2min["avg_rps"] == pytest.approx(5.8, rel=0.5)
    assert stats_2min["peak_rps"] > 1.4 * stats_2min["avg_rps"]
    # finer buckets see higher peaks (Figure 6c: 20 req/s at 1 s)
    assert result.report[1.0]["peak_rps"] > stats_2min["peak_rps"]
    # provisioning lines are ordered sensibly
    assert result.overflow_5pct_line > 0
    assert result.utilization_70pct_line > 0
    assert "Figure 6" in result.render()


def test_figure7_slope_near_8ms_per_kb():
    result = run_figure7(n_items=20_000, seed=7)
    assert result.slope_ms_per_kb == pytest.approx(8.0, rel=0.15)
    assert result.variation_ratio > 2.0  # "large variation"
    # bucket means rise with size
    means = [mean for _, mean in result.bucket_means]
    assert means[0] < means[-1]
    assert "ms/KB" in result.render()


def test_cache_size_sweep_monotone_with_plateau():
    result = run_cache_size_sweep(
        capacities_bytes=(2_000_000, 8_000_000, 32_000_000,
                          128_000_000, 512_000_000),
        n_users=300, n_requests=25_000, seed=7)
    rates = [rate for _, rate in result.sweep]
    for smaller, bigger in zip(rates, rates[1:]):
        assert bigger >= smaller - 0.01
    # plateau: the last doubling buys almost nothing
    assert rates[-1] - rates[-2] < 0.05
    # plateau level in the paper's neighbourhood (56%)
    assert 0.35 < result.plateau() < 0.75
    assert "hit rate" in result.render("Cache study")


def test_population_sweep_rises_then_falls():
    result = run_population_sweep(
        populations=(10, 50, 200, 800, 3200),
        capacity_bytes=12_000_000,
        requests_per_user=50, seed=7)
    rates = [rate for _, rate in result.sweep]
    peak_index = rates.index(max(rates))
    # rises with population first (cross-user locality)...
    assert peak_index > 0
    assert rates[peak_index] > rates[0] + 0.02
    # ...then falls once working sets exceed the cache
    assert rates[-1] < rates[peak_index] - 0.02


def test_economics_report_renders():
    report = run_economics(n_users=100, n_requests=5_000, seed=7)
    assert "payback period" in report
    assert "byte hit rate" in report
