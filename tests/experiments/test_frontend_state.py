"""Quick-scale validation of the front-end state experiment."""

import pytest

from repro.experiments.frontend_state import run_frontend_state


def test_littles_law_and_cache_contrast():
    result = run_frontend_state(rate_rps=10.0, duration_s=90.0, seed=3)
    cold = result.cold
    hot = result.hot
    # Little's law within tolerance on the cold arm
    assert cold.littles_law_prediction > 0
    assert abs(cold.mean_outstanding - cold.littles_law_prediction) \
        < 0.5 * cold.littles_law_prediction
    # misses dominate residence: cold state >> hot state
    assert cold.mean_outstanding > 3 * hot.mean_outstanding
    assert cold.mean_residence_s > hot.mean_residence_s
    # derived counts follow the paper's 2-connections-per-request rule
    assert cold.peak_tcp_connections == 2 * cold.peak_outstanding
    assert "Section 4.4" in result.render()
