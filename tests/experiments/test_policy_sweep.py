"""Tests for the routing-policy sweep experiment."""

import pytest

from repro.balance import parse_policy_spec
from repro.experiments.policy_sweep import (
    DEFAULT_POLICIES,
    run_policy_arm,
    run_policy_sweep,
)

ARMS = ("lottery", "ewma+eject")
N_REQUESTS = 4000
SEED = 3


def test_default_policy_list_all_parse():
    for spec in DEFAULT_POLICIES:
        parse_policy_spec(spec)
    assert "lottery" in DEFAULT_POLICIES       # the paper baseline
    assert "ewma+eject" in DEFAULT_POLICIES    # the headline candidate


@pytest.fixture(scope="module")
def quick_sweep():
    return run_policy_sweep(policies=ARMS, n_requests=N_REQUESTS,
                            seed=SEED, jobs=1)


def test_sweep_arms_complete_and_render(quick_sweep):
    assert [arm.policy for arm in quick_sweep.arms] == list(ARMS)
    for arm in quick_sweep.arms:
        assert arm.submitted == N_REQUESTS
        assert arm.completed > 0
        assert 0.0 < arm.harvest <= 1.0
        assert arm.p99_s >= arm.p50_s > 0.0
    text = quick_sweep.render()
    assert "lottery" in text and "ewma+eject" in text
    assert "beats lottery on p99" in text


def test_sweep_fanout_is_byte_identical_to_serial(quick_sweep):
    fanned = run_policy_sweep(policies=ARMS, n_requests=N_REQUESTS,
                              seed=SEED, jobs=2)
    assert fanned.render() == quick_sweep.render()
    for serial_arm, fanned_arm in zip(quick_sweep.arms, fanned.arms):
        assert serial_arm == fanned_arm


def test_ejection_engages_before_the_supervisor(quick_sweep):
    """The tentpole's point: the balancer routes around the gray worker
    seconds after injection, while the detuned backstop supervisor has
    not even detected the fault yet."""
    eject = quick_sweep.arm("ewma+eject")
    lottery = quick_sweep.arm("lottery")
    assert eject.victim_ejected_at is not None
    assert eject.victim_ejected_at >= eject.inject_at
    assert eject.victim_ejected_at - eject.inject_at < 20.0
    if eject.fault_detected_at is not None:
        assert eject.victim_ejected_at < eject.fault_detected_at
    # ejection starves the sick worker relative to blind lottery
    assert eject.victim_served_after < lottery.victim_served_after
    assert eject.ejections >= 1


def test_lottery_arm_runs_without_any_ejection_machinery(quick_sweep):
    lottery = quick_sweep.arm("lottery")
    assert lottery.ejections == 0
    assert lottery.pre_inject_ejections == 0
    assert lottery.victim_ejected_at is None
    assert lottery.first_ejection_at is None


def test_single_arm_is_independent_of_sweep_composition(quick_sweep):
    """Arms rebuild everything from the seed, so one arm rerun alone
    must equal the same arm inside the sweep (shard safety)."""
    alone = run_policy_arm(policy="lottery", n_requests=N_REQUESTS,
                           rate_rps=160.0, n_workers=8, seed=SEED,
                           slow_factor=8.0)
    assert alone == quick_sweep.arm("lottery")
