"""Quick-scale validation of the end-to-end latency experiment."""

import pytest

from repro.experiments.endtoend_latency import ModemDelivery, run_endtoend
from repro.transend.adaptation import MODEM_14_4_BPS, MODEM_28_8_BPS


def test_endtoend_reduction_in_paper_neighbourhood():
    result = run_endtoend(n_requests=150, seed=7)
    assert 2.0 < result.mean_reduction < 10.0
    assert result.distilled_p90_s < result.original_p90_s
    rendered = result.render()
    assert "latency reduction" in rendered
    assert "3-5x" in rendered


def test_modem_assignment_alternates():
    class FakeTranSend:
        class cluster:
            env = None

    delivery = ModemDelivery.__new__(ModemDelivery)
    delivery.transend = None
    assert ModemDelivery.modem_bps(delivery, "client0") == MODEM_14_4_BPS
    assert ModemDelivery.modem_bps(delivery, "client1") == MODEM_28_8_BPS
    assert ModemDelivery.modem_bps(delivery, "client2") == MODEM_14_4_BPS
