"""Quick validation of the HotBot throughput driver."""

from repro.experiments.hotbot_throughput import run_hotbot_throughput


def test_throughput_driver_quick():
    result = run_hotbot_throughput(offered_qps=30.0, duration_s=20.0,
                                   n_workers=8, n_docs=1500, seed=4)
    assert result.served_qps > 0.8 * result.offered_qps
    assert result.p95_s < 1.0
    assert 0.0 <= result.cache_hit_fraction <= 1.0
    assert "queries/day" in result.render()


def test_cache_disabled_contrast():
    """Flushing the cache every query forces full scatter-gather: still
    correct, but the partitions do all the work."""
    result = run_hotbot_throughput(offered_qps=30.0, duration_s=20.0,
                                   n_workers=8, n_docs=1500, seed=4)
    assert result.cache_hit_fraction > 0.2  # Zipf queries repeat
