"""Quick-scale validation of the cluster-side experiment drivers
(Figure 8, Tables 1-2, manager capacity, SAN saturation, faults,
HotBot degradation)."""

import pytest

from repro.core.config import SNSConfig
from repro.experiments.fault_timeline import run_fault_timeline
from repro.experiments.figure8_selftuning import run_figure8
from repro.experiments.hotbot_degradation import run_hotbot_degradation
from repro.experiments.manager_capacity import run_manager_capacity
from repro.experiments.san_saturation import run_san_saturation
from repro.experiments.table1_comparison import run_table1
from repro.experiments.table2_scalability import run_table2


def test_figure8_spawns_and_recovers():
    result = run_figure8(duration_s=200.0, kill_at_s=120.0,
                         kill_count=2, seed=5, peak_rate_rps=40.0)
    # on-demand first spawn plus load-driven spawns
    assert len(result.spawn_times) >= 3
    # the kills appear in the timeline and replacements follow
    kill_events = [t for t, label in result.events if "killed" in label]
    assert len(kill_events) == 2
    post_kill_starts = [t for t, label in result.events
                        if "started" in label and t > result.kill_time]
    assert post_kill_starts, "manager should spawn replacements"
    # the system kept serving
    assert result.completed_requests > 0.9 * (
        result.completed_requests + result.failed_requests)
    assert "Figure 8" in result.render()


def test_figure8_queue_crosses_threshold_before_spawn():
    result = run_figure8(duration_s=150.0, kill_at_s=1e9, kill_count=0,
                         seed=6, peak_rate_rps=40.0)
    # at least one sampled queue exceeded H before the 2nd spawn
    assert any(value >= 8.0
               for points in result.series.values()
               for _, value in points)


def test_table2_linear_scaling_shape():
    result = run_table2(rates=(15, 35, 55, 75, 95),
                        step_duration_s=20.0, seed=5)
    rows = result.rows
    # resources grow with load
    assert rows[-1].n_distillers > rows[0].n_distillers
    # served tracks offered within 25% at every level (linear scaling)
    for row in rows:
        assert row.completed_rps > 0.7 * row.rate_rps, row
    # distiller throughput in the paper's neighbourhood
    assert 12.0 < result.per_distiller_rps < 40.0
    # SAN never saturates at 100 Mb/s
    assert result.san_utilization_peak < 0.5
    assert "Table 2" in result.render()


def test_table2_frontend_becomes_bottleneck():
    config = SNSConfig(spawn_threshold=10.0, spawn_damping_s=10.0,
                       dispatch_timeout_s=8.0,
                       frontend_connection_overhead_s=0.014)
    result = run_table2(rates=(40, 80, 120), step_duration_s=20.0,
                        seed=5, config=config)
    saturated = " ".join(row.saturated for row in result.rows)
    assert "FE Ethernet" in saturated
    assert result.rows[-1].n_frontends > 1
    assert result.per_frontend_rps < 95.0


def test_manager_capacity_handles_1800_announcements():
    result = run_manager_capacity(n_distillers=900, duration_s=10.0)
    assert result.announcements_per_s == pytest.approx(1800.0, rel=0.1)
    # ~0.95: the staggered source start-up shaves half an interval of
    # reports off the fixed-window count; nothing is actually dropped
    assert result.delivery_rate > 0.9
    # beacons stayed on schedule (manager not overwhelmed)
    assert result.beacon_interval_observed_s == pytest.approx(0.5,
                                                              rel=0.2)
    assert result.equivalent_request_rps == 18_000.0
    assert "1800" in result.render()


def test_san_saturation_drops_beacons_on_slow_network():
    result = run_san_saturation(rate_rps=80.0, duration_s=30.0, seed=5)
    assert result.fast.beacon_loss_rate < 0.02
    assert result.slow.beacon_loss_rate > 0.3
    assert result.slow.san_utilization > result.fast.san_utilization
    # the slow SAN visibly hurts service
    assert (result.slow.failed + result.slow.dispatch_timeouts
            > result.fast.failed + result.fast.dispatch_timeouts)
    assert "SAN saturation" in result.render()


def test_fault_timeline_high_availability():
    result = run_fault_timeline(rate_rps=15.0, seed=5)
    assert result.success_rate > 0.9
    assert result.manager_restarts == 1
    assert result.worker_failures_detected >= 0
    labels = " | ".join(label for _, label in result.timeline)
    assert "killed distiller" in labels
    assert "killed manager" in labels
    assert "killed front end" in labels
    assert "incarnation 2" in labels
    assert "Fault-tolerance timeline" in result.render()


def test_hotbot_degradation_matches_paper_fraction():
    result = run_hotbot_degradation(n_nodes=26, n_docs=2600, seed=5)
    assert result.coverage_before == 1.0
    # 54M -> ~51M is ~94.4%
    assert result.coverage_during == pytest.approx(25 / 26, abs=0.02)
    assert result.coverage_after_restart == 1.0
    assert result.cross_mount_coverage_during == 1.0
    assert "54" in result.render() or "graceful" in result.render()


def test_table1_renders_all_components():
    table = run_table1()
    for component in ("Load balancing", "Application layer",
                      "Failure management", "Caching"):
        assert component in table
    assert "TranSend" in table and "HotBot" in table
