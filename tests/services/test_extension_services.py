"""Tests for the five Section 5.1 extension services."""

import pytest

from repro.services.culture_page import (
    CulturePageAggregator,
    extract_events,
)
from repro.services.keyword_filter import KeywordFilter
from repro.services.metasearch import (
    MetasearchAggregator,
    render_engine_results,
)
from repro.services.rewebber import (
    DecryptWorker,
    EncryptWorker,
    rewebber_keypair,
)
from repro.services.thinclient import ThinClientSimplifier
from repro.tacc.content import MIME_HTML, MIME_OCTET, MIME_PLAIN, Content
from repro.tacc.pipeline import Pipeline
from repro.tacc.registry import WorkerRegistry
from repro.tacc.worker import TACCRequest, WorkerError


def html(body, url="http://site/page.html"):
    return Content(url, MIME_HTML,
                   f"<html><body>{body}</body></html>".encode())


# -- keyword filter ------------------------------------------------------------

def test_keyword_filter_marks_matches():
    content = html("<p>Python and more python here.</p>")
    request = TACCRequest(inputs=[content],
                          profile={"filter_pattern": r"python"})
    result = KeywordFilter().run(request)
    text = result.data.decode()
    assert text.count("color:red") == 2
    assert result.metadata["keywords_marked"] == 2


def test_keyword_filter_no_pattern_passes_through():
    content = html("<p>text</p>")
    result = KeywordFilter().run(TACCRequest(inputs=[content]))
    assert result is content


def test_keyword_filter_bad_pattern_is_worker_error():
    content = html("<p>x</p>")
    request = TACCRequest(inputs=[content],
                          profile={"filter_pattern": "("})
    with pytest.raises(WorkerError):
        KeywordFilter().run(request)


def test_keyword_filter_pattern_length_capped():
    request = TACCRequest(inputs=[html("<p>x</p>")],
                          profile={"filter_pattern": "a" * 500})
    with pytest.raises(WorkerError):
        KeywordFilter().run(request)


# -- metasearch --------------------------------------------------------------------

def engine_pages():
    return [
        render_engine_results("alpha", [
            ("http://r/1", "One"), ("http://r/2", "Two"),
            ("http://r/3", "Three"),
        ]),
        render_engine_results("beta", [
            ("http://r/2", "Two again"), ("http://r/4", "Four"),
        ]),
    ]


def test_metasearch_interleaves_and_dedupes():
    request = TACCRequest(inputs=engine_pages(),
                          params={"query": "test"})
    result = MetasearchAggregator().run(request)
    page = result.data.decode()
    # interleaved rank order with r/2 deduplicated
    assert page.index("http://r/1") < page.index("http://r/2")
    assert page.index("http://r/2") < page.index("http://r/3")
    assert page.count("http://r/2") == 1
    assert result.metadata["results"] == 4
    assert result.metadata["engines"] == 2
    assert "Metasearch: test" in page


def test_metasearch_respects_max_results():
    request = TACCRequest(inputs=engine_pages(),
                          profile={"max_results": 2})
    result = MetasearchAggregator().run(request)
    assert result.metadata["results"] == 2


def test_metasearch_from_hotbot_hits():
    """Adapting a real backend: HotBot hits -> metasearch input."""
    from repro.hotbot.service import HotBot, HotBotConfig
    hotbot = HotBot(config=HotBotConfig(n_workers=2, n_docs=200), seed=3)
    result = hotbot.run_until(hotbot.submit(["w2"]))
    page = render_engine_results(
        "hotbot", [(hit.url, f"doc{hit.doc_id}") for hit in result.hits])
    merged = MetasearchAggregator().run(TACCRequest(inputs=[page]))
    assert merged.metadata["results"] == len(result.hits)


# -- culture page --------------------------------------------------------------------

CULTURE_HTML = """
<h2>Opera Calendar</h2>
<p>La Boheme opens October 14 at the War Memorial.</p>
<p>Symphony gala: Nov 3, tickets from $20.</p>
<p>Our site had 3/4 uptime last month (not an event!).</p>
<p>Jazz festival runs 7/21 on the waterfront.</p>
"""


def test_extract_events_finds_real_dates():
    events = extract_events(html(CULTURE_HTML))
    keys = {event.date_key for event in events}
    assert (10, 14) in keys
    assert (11, 3) in keys
    assert (7, 21) in keys


def test_extract_events_picks_up_spurious_dates_too():
    """The BASE tradeoff: ~10-20% of extractions are noise ('3/4
    uptime'), and that is acceptable."""
    events = extract_events(html(CULTURE_HTML))
    keys = [event.date_key for event in events]
    assert (3, 4) in keys  # the spurious one
    spurious_fraction = 1 / len(keys)
    assert spurious_fraction < 0.5  # still mostly useful


def test_culture_page_collates_sorted_and_windowed():
    request = TACCRequest(
        inputs=[html(CULTURE_HTML)],
        profile={"calendar_start": (7, 1), "calendar_end": (10, 31)})
    result = CulturePageAggregator().run(request)
    page = result.data.decode()
    assert "07/21" in page
    assert "10/14" in page
    assert "11/03" not in page  # outside the user's window
    assert page.index("07/21") < page.index("10/14")  # sorted


def test_culture_page_multiple_sources():
    pages = [
        html("<p>Ballet on May 5.</p>", url="http://a"),
        html("<p>Reading on May 2.</p>", url="http://b"),
    ]
    result = CulturePageAggregator().run(TACCRequest(inputs=pages))
    assert result.metadata["pages_scraped"] == 2
    page = result.data.decode()
    assert page.index("05/02") < page.index("05/05")


# -- rewebber ---------------------------------------------------------------------------

def test_encrypt_decrypt_round_trip():
    _, key = rewebber_keypair("server-a")
    secret_page = html("<p>anonymous manifesto</p>")
    request = TACCRequest(inputs=[secret_page],
                          profile={"rewebber_key": key})
    sealed = EncryptWorker().run(request)
    assert sealed.mime == MIME_OCTET
    assert sealed.data != secret_page.data
    opened = DecryptWorker().run(
        TACCRequest(inputs=[sealed], profile={"rewebber_key": key}))
    assert opened.data == secret_page.data
    assert opened.mime == MIME_HTML  # restored from sealed_mime


def test_decrypt_with_wrong_key_produces_garbage_not_error():
    _, key_a = rewebber_keypair("server-a")
    _, key_b = rewebber_keypair("server-b")
    sealed = EncryptWorker().run(TACCRequest(
        inputs=[html("<p>x</p>")], profile={"rewebber_key": key_a}))
    garbled = DecryptWorker().run(TACCRequest(
        inputs=[sealed], profile={"rewebber_key": key_b}))
    assert garbled.data != b"<html><body><p>x</p></body></html>"


def test_rewebber_requires_key():
    with pytest.raises(WorkerError):
        EncryptWorker().run(TACCRequest(inputs=[html("<p>x</p>")]))


def test_rewebber_chain_as_pipeline():
    """Onion routing through TACC composition: two encryption layers,
    peeled in reverse order."""
    _, inner_key = rewebber_keypair("inner")
    _, outer_key = rewebber_keypair("outer")
    page = html("<p>hidden</p>")
    sealed_inner = EncryptWorker().run(TACCRequest(
        inputs=[page], profile={"rewebber_key": inner_key}))
    sealed_outer = EncryptWorker().run(TACCRequest(
        inputs=[sealed_inner], profile={"rewebber_key": outer_key}))
    peeled_outer = DecryptWorker().run(TACCRequest(
        inputs=[sealed_outer], profile={"rewebber_key": outer_key}))
    peeled_inner = DecryptWorker().run(TACCRequest(
        inputs=[peeled_outer], profile={"rewebber_key": inner_key}))
    assert peeled_inner.data == page.data


# -- thin client ---------------------------------------------------------------------------

PDA_PAGE = """
<h1>News</h1>
<p>A fairly long paragraph of text that will need wrapping for a tiny
PalmPilot screen because it exceeds thirty-two columns.</p>
<img src="http://img/banner.gif" width="480">
<a href="http://news/story1">Full story</a>
"""


def test_thinclient_outputs_micro_markup():
    result = ThinClientSimplifier().run(TACCRequest(
        inputs=[html(PDA_PAGE)]))
    assert result.mime == MIME_PLAIN
    lines = result.data.decode().splitlines()
    kinds = {line.split(" ", 1)[0] for line in lines if line}
    assert {"H", "I", "L", "T"} <= kinds
    # images reference pre-scaled variants for the 160 px screen
    assert any(line.startswith("I ") and "?w=160" in line
               for line in lines)


def test_thinclient_wraps_to_screen_columns():
    result = ThinClientSimplifier().run(TACCRequest(
        inputs=[html(PDA_PAGE)],
        profile={"screen_width": 100, "font_width": 5}))
    columns = result.metadata["columns"]
    assert columns == 20
    for line in result.data.decode().splitlines():
        if line.startswith("T "):
            assert len(line) - 2 <= columns + 12  # long words tolerated


def test_thinclient_via_pipeline_with_keyword_filter():
    """Composition across services: filter then simplify."""
    registry = WorkerRegistry()
    registry.register_class(KeywordFilter)
    registry.register_class(ThinClientSimplifier)
    pipeline = Pipeline(["keyword-filter", "thinclient-simplify"])
    pipeline.validate(registry, MIME_HTML)
    result = pipeline.execute(registry, TACCRequest(
        inputs=[html(PDA_PAGE)],
        profile={"filter_pattern": "news"}))
    assert result.mime == MIME_PLAIN
