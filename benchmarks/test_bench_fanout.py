"""Fan-out runner speedup benchmark (ISSUE 5 acceptance criterion).

Runs the same chaos campaign batch serially and through the process
pool, verifies the outputs are byte-identical, and records the wall
clock speedup to ``BENCH_fanout.json``.  That file is committed as the
baseline; ``benchmarks/perf_gate.py --fanout`` enforces the >=1.8x
floor at 4 jobs — but only on machines with at least 4 cores (the
``cpu_count`` field travels with the measurement, so a 1-core box
records honest numbers without tripping the gate).

Environment knobs:

* ``BENCH_FANOUT_RUNS`` — batch size (default 8 campaign runs);
* ``BENCH_FANOUT_JOBS`` — pool width (default 4);
* ``BENCH_FANOUT_OUT`` — output path (default ``<repo>/BENCH_fanout.json``).
"""

import json
import os
import time
from pathlib import Path

from repro.chaos import run_campaign_batch

RUNS = int(os.environ.get("BENCH_FANOUT_RUNS", "8"))
JOBS = int(os.environ.get("BENCH_FANOUT_JOBS", "4"))
DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_fanout.json"
OUT_PATH = Path(os.environ.get("BENCH_FANOUT_OUT", str(DEFAULT_OUT)))

CALIBRATION_OPS = 2_000_000


def _calibrate() -> float:
    """Ops/sec of a fixed pure-Python loop: a machine-speed yardstick
    (same loop the kernel benchmark records)."""
    best = float("inf")
    for _ in range(3):
        total = 0
        start = time.perf_counter()
        for i in range(CALIBRATION_OPS):
            total += i
        best = min(best, time.perf_counter() - start)
    assert total  # keep the loop honest
    return CALIBRATION_OPS / best


def _timed_batch(jobs: int):
    start = time.perf_counter()
    batch = run_campaign_batch("smoke", master_seed=1997, runs=RUNS,
                               jobs=jobs)
    return batch, time.perf_counter() - start


def test_fanout_speedup(benchmark):
    run_campaign_batch("smoke", master_seed=1997, runs=1)  # warm-up

    result_holder = {}

    def measure():
        serial, serial_s = _timed_batch(1)
        parallel, parallel_s = _timed_batch(JOBS)
        result_holder.update(serial=serial, serial_s=serial_s,
                             parallel=parallel, parallel_s=parallel_s)

    benchmark.pedantic(measure, rounds=1, iterations=1)
    serial = result_holder["serial"]
    parallel = result_holder["parallel"]
    serial_s = result_holder["serial_s"]
    parallel_s = result_holder["parallel_s"]

    byte_identical = (serial.render(verbose=True)
                      == parallel.render(verbose=True))
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    payload = {
        "benchmark": "fanout",
        "schema": 1,
        "calibration_ops_per_sec": round(_calibrate()),
        "cpu_count": os.cpu_count() or 1,
        "sweep": {
            "campaign": "smoke",
            "runs": RUNS,
            "jobs": JOBS,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(speedup, 2),
            "byte_identical": byte_identical,
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
    print(f"\nBENCH_fanout -> {OUT_PATH}")
    print(json.dumps(payload, indent=2))

    benchmark.extra_info["speedup"] = payload["sweep"]["speedup"]
    benchmark.extra_info["byte_identical"] = byte_identical
    # correctness is unconditional; the speedup floor is the gate's
    # job (it knows whether this machine has the cores to show it)
    assert byte_identical
    assert serial.harvest == 1.0 and parallel.harvest == 1.0
    assert serial.ok and parallel.ok
