"""Kernel throughput benchmark: the committed perf trajectory.

Three phases, one JSON:

1. **Queue-heavy microbench** (events/sec): bursty producers drive
   consumer processes through deep :class:`~repro.sim.kernel.Queue`
   backlogs — the regime a saturated worker hits during a
   million-request overload, and exactly where the pre-deque kernel's
   ``list.pop(0)`` went quadratic.
2. **Timer-coalescing microbench** (ticks/sec): N same-period
   maintenance loops as processes vs as one coalesced periodic bucket
   (:meth:`~repro.sim.kernel.Environment.periodic`).
3. **Streaming trace replay** (requests/sec): a 1M-request synthetic
   fixed-JPEG trace (Section 4.6's scalability workload) streams through
   the playback engine in bounded memory — the trace is generated
   lazily, outcomes are aggregated instead of recorded — against a
   queue + network-delay service adapter.

Results are written to ``BENCH_kernel.json`` at the repo root.  That
file is committed: it is the regression baseline every future PR is
gated against (see ``benchmarks/perf_gate.py`` and the CI ``perf-smoke``
job).  A machine-speed calibration number (a fixed pure-Python spin
loop) is stored alongside the rates so the gate can normalize across
differently-sized runners.

Environment knobs:

* ``BENCH_KERNEL_SCALE`` — scales workload sizes (CI uses 0.1);
* ``BENCH_KERNEL_OUT`` — output path (default ``<repo>/BENCH_kernel.json``).
"""

import json
import os
import time
from pathlib import Path

from repro.sim.kernel import Environment
from repro.sim.network import MBPS, Network
from repro.workload.playback import PlaybackEngine
from repro.workload.tracegen import iter_fixed_jpeg_trace

SCALE = float(os.environ.get("BENCH_KERNEL_SCALE", "1.0"))
DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"
OUT_PATH = Path(os.environ.get("BENCH_KERNEL_OUT", str(DEFAULT_OUT)))

CALIBRATION_OPS = 2_000_000


def _calibrate() -> float:
    """Ops/sec of a fixed pure-Python loop: a machine-speed yardstick.

    The perf gate divides measured rates by this before comparing, so a
    slower CI runner does not read as a kernel regression.
    """
    best = float("inf")
    for _ in range(3):
        total = 0
        start = time.perf_counter()
        for i in range(CALIBRATION_OPS):
            total += i
        best = min(best, time.perf_counter() - start)
    assert total  # keep the loop honest
    return CALIBRATION_OPS / best


# -- phase 1: queue-heavy events/sec ---------------------------------------


def _bursty_producer(env, queue, bursts, burst_size, period):
    for _ in range(bursts):
        yield env.timeout(period)
        for item in range(burst_size):
            queue.put_nowait(item)


def _consumer(env, queue, n_items, service_s):
    for _ in range(n_items):
        yield queue.get()
        yield env.timeout(service_s)


def run_queue_heavy(scale: float = 1.0) -> dict:
    """Deep-backlog producer/consumer churn; returns events/sec."""
    pairs = 2
    bursts = 2
    burst_size = max(100, int(25_000 * scale))
    env = Environment()
    n_items = bursts * burst_size
    for _ in range(pairs):
        queue = env.queue()
        env.process(_bursty_producer(env, queue, bursts, burst_size, 0.5))
        env.process(_consumer(env, queue, n_items, 0.0001))
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    return {
        "n_events": env._seq,
        "max_backlog": burst_size,
        "elapsed_s": round(elapsed, 3),
        "events_per_sec": round(env._seq / elapsed),
    }


# -- phase 2: coalesced periodic timers, ticks/sec --------------------------


def _timer_loop(env, period, counter):
    """The pre-coalescing shape: one process + one timeout per tick."""
    while True:
        yield env.timeout(period)
        counter[0] += 1


def run_timer_coalescing(scale: float = 1.0) -> dict:
    """N same-period maintenance loops: process loops vs one bucket.

    This is the cluster's beacon/report/watchdog pattern at population
    scale — every front end, worker stub, and supervisor used to own a
    ``while True: yield timeout(T)`` process.  The coalesced path drives
    all N callbacks from a single recurring heap event per interval.
    """
    n_timers = 256
    sim_s = max(20.0, 400.0 * scale)

    env = Environment()
    loop_count = [0]
    for _ in range(n_timers):
        env.process(_timer_loop(env, 1.0, loop_count))
    start = time.perf_counter()
    env.run(until=sim_s)
    loop_elapsed = time.perf_counter() - start
    loop_events = env._seq

    env = Environment()
    coalesced_count = [0]

    def _tick():
        coalesced_count[0] += 1

    for _ in range(n_timers):
        env.periodic(1.0, _tick)
    start = time.perf_counter()
    env.run(until=sim_s)
    coalesced_elapsed = time.perf_counter() - start
    coalesced_events = env._seq

    assert coalesced_count[0] == loop_count[0]  # same tick trajectory
    ticks = loop_count[0]
    return {
        "n_timers": n_timers,
        "sim_seconds": sim_s,
        "ticks": ticks,
        "loop_events": loop_events,
        "coalesced_events": coalesced_events,
        "loop_ticks_per_sec": round(ticks / loop_elapsed),
        "coalesced_ticks_per_sec": round(ticks / coalesced_elapsed),
        "event_reduction": round(loop_events / coalesced_events, 1),
    }


# -- phase 3: streaming 1M-request replay, requests/sec --------------------


def _reply_ok(event):
    event._value.succeed("ok")


def _start_servers(env, requests, network, n_servers):
    """Minimal service, callback style: dequeue, pay the SAN reply
    transfer, respond, re-arm — no generator resume per request."""
    def _serve(event):
        record, reply = event._value
        env.schedule_call(network.transfer_delay(record.size_bytes),
                          _reply_ok, reply)
        requests.get().callbacks.append(_serve)

    for _ in range(n_servers):
        requests.get().callbacks.append(_serve)


def run_trace_replay(scale: float = 1.0) -> dict:
    """Replay a synthetic 1M-request trace end-to-end, streaming."""
    n_requests = max(1_000, int(1_000_000 * scale))
    rate_rps = 4_000.0  # keeps sim duration ~n/4000 s, backlog modest
    env = Environment()
    network = Network(env, bandwidth_bps=1_000 * MBPS)
    requests = env.queue()
    _start_servers(env, requests, network, 8)

    def submit(record):
        reply = env.event()
        requests.put_nowait((record, reply))
        return reply

    engine = PlaybackEngine(env, submit, record_outcomes=False)
    trace = iter_fixed_jpeg_trace(rate_rps, n_requests, seed=1997)
    engine.play_scheduled(trace)
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    stats = engine.stats
    assert stats.submitted == n_requests
    assert stats.completed == n_requests
    assert engine.outcomes == []  # bounded memory: nothing recorded
    return {
        "n_requests": n_requests,
        "n_events": env._seq,
        "sim_seconds": round(env.now, 1),
        "elapsed_s": round(elapsed, 3),
        "requests_per_sec": round(n_requests / elapsed),
        "events_per_sec": round(env._seq / elapsed),
        "mean_latency_ms": round(stats.mean_latency * 1000, 3),
    }


# -- the benchmark ---------------------------------------------------------


def test_kernel_throughput(benchmark):
    run_queue_heavy(scale=min(SCALE, 0.02))  # warm-up, unmeasured

    def measure():
        return {
            "queue_heavy": run_queue_heavy(SCALE),
            "timer_coalescing": run_timer_coalescing(SCALE),
            "trace_replay": run_trace_replay(SCALE),
        }

    result_holder = {}

    def wrapper():
        result_holder["result"] = measure()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    result = result_holder["result"]

    payload = {
        "benchmark": "kernel",
        "schema": 1,
        "scale": SCALE,
        "calibration_ops_per_sec": round(_calibrate()),
        **result,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
    print(f"\nBENCH_kernel -> {OUT_PATH}")
    print(json.dumps(payload, indent=2))

    benchmark.extra_info["events_per_sec"] = \
        result["queue_heavy"]["events_per_sec"]
    benchmark.extra_info["requests_per_sec"] = \
        result["trace_replay"]["requests_per_sec"]
    # sanity floors (far below any real machine, catches pathologies)
    assert result["queue_heavy"]["events_per_sec"] > 10_000
    assert result["trace_replay"]["requests_per_sec"] > 1_000
    # the whole point of coalescing: far fewer kernel events per tick
    assert result["timer_coalescing"]["event_reduction"] > 2
