"""Benchmark harness helpers.

Every paper table/figure has one benchmark here.  Runs measure the full
experiment once (``rounds=1`` — these are simulations, not
microbenchmarks; their interesting output is the experiment result, not
the wall time) and attach the headline numbers to
``benchmark.extra_info`` so ``--benchmark-json`` captures the
reproduction data alongside timings.  Run with ``-s`` to see each
experiment rendered in the paper's shape.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single measured round, returning its
    result."""
    result_holder = {}

    def wrapper():
        result_holder["result"] = fn(*args, **kwargs)

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return result_holder["result"]
