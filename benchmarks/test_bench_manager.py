"""Section 4.6 manager-capacity benchmark: 900 distillers, 1800
announcements/second."""

from benchmarks.conftest import run_once
from repro.experiments.manager_capacity import run_manager_capacity


def test_manager_absorbs_1800_announcements_per_second(benchmark):
    result = run_once(benchmark, run_manager_capacity,
                      n_distillers=900, duration_s=20.0, seed=1997)
    print("\n" + result.render())
    benchmark.extra_info["announcements_per_s"] = round(
        result.announcements_per_s)
    benchmark.extra_info["paper_announcements_per_s"] = 1800
    assert result.announcements_per_s > 1600
    assert result.delivery_rate > 0.9
    # beacons stayed on schedule: the manager was not overwhelmed
    assert abs(result.beacon_interval_observed_s - 0.5) < 0.1
    assert result.equivalent_request_rps == 18_000.0
