"""Section 4.4 benchmark: front-end state under miss-dominated load."""

from benchmarks.conftest import run_once
from repro.experiments.frontend_state import run_frontend_state


def test_frontend_state_at_15_rps(benchmark):
    result = run_once(benchmark, run_frontend_state, rate_rps=15.0,
                      duration_s=300.0, seed=1997)
    print("\n" + result.render())
    cold = result.cold
    hot = result.hot
    benchmark.extra_info["cold_mean_outstanding"] = round(
        cold.mean_outstanding)
    benchmark.extra_info["cold_peak_tcp"] = cold.peak_tcp_connections
    benchmark.extra_info["paper_outstanding"] = "150-350"
    # the paper's observed range: 150-350 outstanding, up to 700 TCP
    # connections at 15 req/s
    assert 100 < cold.mean_outstanding < 400
    assert cold.peak_tcp_connections < 800
    # Little's law: outstanding ~= N * T
    assert abs(cold.mean_outstanding - cold.littles_law_prediction) \
        < 0.35 * cold.littles_law_prediction
    # caching collapses front-end state by an order of magnitude
    assert hot.mean_outstanding < cold.mean_outstanding / 5
