"""Figure 5 benchmark: content-size distributions over 100k requests."""

from benchmarks.conftest import run_once
from repro.experiments.figure5_sizes import PAPER_MEANS, run_figure5
from repro.tacc.content import MIME_GIF, MIME_HTML, MIME_JPEG


def test_figure5_content_size_distributions(benchmark):
    result = run_once(benchmark, run_figure5, n_records=100_000,
                      seed=1997)
    print("\n" + result.render())
    for mime in (MIME_HTML, MIME_GIF, MIME_JPEG):
        benchmark.extra_info[f"mean_{mime}"] = round(result.means[mime])
        benchmark.extra_info[f"paper_mean_{mime}"] = PAPER_MEANS[mime]
        assert abs(result.means[mime] - PAPER_MEANS[mime]) \
            < 0.2 * PAPER_MEANS[mime]
    benchmark.extra_info["gif_below_1kb"] = round(
        result.gif_fraction_below_1kb, 3)
    assert 0.35 < result.gif_fraction_below_1kb < 0.65
    assert result.jpeg_fraction_below_1kb < 0.02
