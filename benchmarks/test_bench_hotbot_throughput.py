"""HotBot throughput benchmark: the 'several million queries per day'
operational claim, with the recent-searches cache engaged."""

from benchmarks.conftest import run_once
from repro.experiments.hotbot_throughput import run_hotbot_throughput


def test_hotbot_millions_of_queries_per_day(benchmark):
    result = run_once(benchmark, run_hotbot_throughput,
                      offered_qps=50.0, duration_s=60.0, seed=1997)
    print("\n" + result.render())
    benchmark.extra_info["queries_per_day_M"] = round(
        result.queries_per_day_equivalent / 1e6, 2)
    benchmark.extra_info["cache_hit_fraction"] = round(
        result.cache_hit_fraction, 3)
    # "several million queries per day"
    assert result.queries_per_day_equivalent > 2_000_000
    # served keeps up with offered (no collapse)
    assert result.served_qps > 0.9 * result.offered_qps
    # interactive latencies
    assert result.p95_s < 0.25
    # the recent-searches cache is doing real work on a Zipf query mix
    assert result.cache_hit_fraction > 0.3
    assert result.incremental_pages > 50
