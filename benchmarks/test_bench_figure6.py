"""Figure 6 benchmark: 24 hours of bursty dialup traffic at three
bucketing scales."""

from benchmarks.conftest import run_once
from repro.experiments.figure6_burstiness import run_figure6


def test_figure6_burstiness_across_time_scales(benchmark):
    result = run_once(benchmark, run_figure6, duration_s=86_400.0,
                      seed=1997)
    print("\n" + result.render())
    two_minute = result.report[120.0]
    benchmark.extra_info["avg_rps_2min"] = round(two_minute["avg_rps"], 2)
    benchmark.extra_info["peak_rps_2min"] = round(
        two_minute["peak_rps"], 2)
    benchmark.extra_info["paper_avg_peak_2min"] = "5.8 / 12.6"
    # daily average near the paper's 5.8 req/s; peak well above average
    assert abs(two_minute["avg_rps"] - 5.8) < 2.0
    assert two_minute["peak_rps"] > 1.5 * two_minute["avg_rps"]
    # finer buckets expose higher peaks (Figure 6c)
    assert result.report[1.0]["peak_rps"] > two_minute["peak_rps"]
    # traffic is over-dispersed (bursty) at every scale
    for scale in (120.0, 30.0):
        assert result.report[scale]["dispersion"] > 2.0
