"""Section 5.2 benchmark: economic feasibility from measured cache
behaviour."""

from benchmarks.conftest import run_once
from repro.analysis.economics import EconomicModel
from repro.experiments.economics import run_economics


def test_economics_payback(benchmark):
    report = run_once(benchmark, run_economics, n_users=400,
                      n_requests=40_000, seed=1997)
    print("\n" + report)
    model = EconomicModel()
    benchmark.extra_info["payback_months_at_50pct"] = round(
        model.payback_months(), 2)
    assert "payback period" in report
    # at the paper's assumed 50% byte hit rate: ~2 months
    assert 1.0 < model.payback_months() < 3.0
