"""HotBot benchmarks: graceful degradation at 26 nodes and query
throughput microbenchmarks."""

from benchmarks.conftest import run_once
from repro.experiments.hotbot_degradation import run_hotbot_degradation
from repro.hotbot.documents import Corpus
from repro.hotbot.index import InvertedIndex
from repro.sim.rng import RandomStreams


def test_hotbot_degradation_26_nodes(benchmark):
    result = run_once(benchmark, run_hotbot_degradation, n_nodes=26,
                      n_docs=2600, seed=1997)
    print("\n" + result.render())
    benchmark.extra_info["coverage_during"] = round(
        result.coverage_during, 4)
    benchmark.extra_info["paper_coverage_during"] = round(51 / 54, 4)
    assert abs(result.coverage_during - 25 / 26) < 0.02
    assert result.coverage_after_restart == 1.0
    assert result.cross_mount_coverage_during == 1.0


def test_inverted_index_query_throughput(benchmark):
    """Microbenchmark: queries/second against one partition-sized
    index."""
    corpus = Corpus(n_docs=1000, vocabulary_size=2000, seed=1997)
    index = InvertedIndex(total_corpus_size=1000).add_all(corpus)
    rng = RandomStreams(1997).stream("bench-queries")
    queries = [corpus.vocabulary_sample(rng, 2) for _ in range(200)]

    def run_queries():
        for terms in queries:
            index.query(terms, k=10)

    benchmark(run_queries)
