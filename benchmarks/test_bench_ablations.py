"""Ablation benchmarks for the design choices DESIGN.md section 5 calls
out: stale hints vs delta estimation, lottery vs blind random balancing,
overflow pool on/off, the 1 KB distillation threshold, and mod-hash vs
consistent hashing."""

import pytest

from benchmarks.conftest import run_once
from repro.cache.partition import (
    ConsistentHashRing,
    ModHashPartitioner,
    remap_fraction,
)
from repro.core.config import SNSConfig
from repro.experiments._harness import build_bench_fabric
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord
from repro.workload.tracegen import TraceGenerator


def _drive(fabric, rate, duration, seed=1997, timeout_s=45.0):
    engine = PlaybackEngine(
        fabric.cluster.env, fabric.submit,
        rng=RandomStreams(seed).stream("ablation-playback"),
        timeout_s=timeout_s)
    pool = [
        TraceRecord(0.0, f"client{index}",
                    f"http://bench/img{index}.jpg", "image/jpeg", 10240)
        for index in range(40)
    ]
    fabric.cluster.env.process(
        engine.constant_rate(rate, duration, pool))
    return engine


def _queue_swing(estimate_deltas: bool, seed: int = 1997) -> float:
    """Mean sample-to-sample queue change near saturation."""
    config = SNSConfig(estimate_queue_deltas=estimate_deltas,
                       spawn_threshold=1e9, report_interval_s=1.0,
                       beacon_interval_s=1.0)
    fabric = build_bench_fabric(n_nodes=8, seed=seed, config=config)
    fabric.boot(n_frontends=1, initial_workers={"jpeg-distiller": 2})
    fabric.cluster.run(until=2.0)
    _drive(fabric, rate=42.0, duration=60.0, seed=seed, timeout_s=120.0)
    samples = {stub.name: [] for stub in fabric.alive_workers()}

    def sampler(env):
        while env.now < 62.0:
            yield env.timeout(0.5)
            for stub in fabric.alive_workers():
                samples[stub.name].append(stub.load)

    fabric.cluster.env.process(sampler(fabric.cluster.env))
    fabric.cluster.run(until=130.0)
    swings = []
    for series in samples.values():
        diffs = [abs(b - a) for a, b in zip(series, series[1:])]
        if diffs:
            swings.append(sum(diffs) / len(diffs))
    return sum(swings) / len(swings)


def test_ablation_queue_delta_estimation(benchmark):
    """Section 4.5's oscillation bug and fix, quantified."""

    def both():
        return (_queue_swing(estimate_deltas=False),
                _queue_swing(estimate_deltas=True))

    stale_swing, estimated_swing = run_once(benchmark, both)
    print(f"\nqueue swing with stale-only hints:   {stale_swing:.2f}")
    print(f"queue swing with delta estimation:   {estimated_swing:.2f}")
    benchmark.extra_info["stale_swing"] = round(stale_swing, 3)
    benchmark.extra_info["estimated_swing"] = round(estimated_swing, 3)
    assert estimated_swing < stale_swing * 0.8


def _tail_latency(lottery_gamma: float, seed: int = 1997) -> float:
    config = SNSConfig(lottery_gamma=lottery_gamma, spawn_threshold=1e9)
    fabric = build_bench_fabric(n_nodes=10, seed=seed, config=config)
    fabric.boot(n_frontends=1, initial_workers={"jpeg-distiller": 3})
    fabric.cluster.run(until=2.0)
    engine = _drive(fabric, rate=55.0, duration=60.0, seed=seed,
                    timeout_s=120.0)
    fabric.cluster.run(until=150.0)
    latencies = sorted(engine.latencies())
    return latencies[int(0.95 * len(latencies))] if latencies else 0.0


def test_ablation_lottery_vs_blind_random(benchmark):
    """Queue-weighted lottery (the paper's policy) vs uniform random
    worker choice (gamma=0)."""

    def both():
        return (_tail_latency(lottery_gamma=0.0),
                _tail_latency(lottery_gamma=2.0))

    random_p95, lottery_p95 = run_once(benchmark, both)
    print(f"\np95 latency, blind random:       {random_p95:.2f}s")
    print(f"p95 latency, weighted lottery:   {lottery_p95:.2f}s")
    benchmark.extra_info["random_p95_s"] = round(random_p95, 3)
    benchmark.extra_info["lottery_p95_s"] = round(lottery_p95, 3)
    assert lottery_p95 <= random_p95 * 1.1  # never meaningfully worse


def _burst_outcome(use_overflow: bool, seed: int = 1997):
    config = SNSConfig(use_overflow_pool=use_overflow,
                       spawn_damping_s=4.0, dispatch_timeout_s=6.0)
    fabric = build_bench_fabric(n_nodes=4, n_overflow=8, seed=seed,
                                config=config)
    fabric.boot(n_frontends=1, initial_workers={"jpeg-distiller": 1})
    fabric.cluster.run(until=2.0)
    engine = _drive(fabric, rate=90.0, duration=45.0, seed=seed,
                    timeout_s=30.0)
    fabric.cluster.run(until=120.0)
    fallbacks = sum(1 for outcome in engine.completed()
                    if getattr(outcome.response, "status", "") ==
                    "fallback")
    bad = len(engine.failed()) + fallbacks
    return bad, len(engine.outcomes)


def test_ablation_overflow_pool(benchmark):
    """Section 2.2.3: the overflow pool absorbs bursts the dedicated
    pool cannot."""

    def both():
        return (_burst_outcome(use_overflow=False),
                _burst_outcome(use_overflow=True))

    (bad_without, total_without), (bad_with, total_with) = \
        run_once(benchmark, both)
    rate_without = bad_without / total_without
    rate_with = bad_with / total_with
    print(f"\nburst degradation without overflow: {rate_without:.1%}")
    print(f"burst degradation with overflow:    {rate_with:.1%}")
    benchmark.extra_info["degraded_without"] = round(rate_without, 4)
    benchmark.extra_info["degraded_with"] = round(rate_with, 4)
    assert rate_with < rate_without


def test_ablation_distillation_threshold(benchmark):
    """The 1 KB threshold: bytes saved vs distillations performed as the
    threshold sweeps (the paper argues 1 KB 'exactly separates' GIF's
    icon and photo classes)."""

    def sweep():
        generator = TraceGenerator(seed=1997, mean_rate_rps=50.0,
                                   with_daily_cycle=False,
                                   with_bursts=False)
        records = [record for record in generator.generate(400.0)
                   if record.mime in ("image/gif", "image/jpeg")]
        results = {}
        for threshold in (0, 256, 1024, 4096, 16384):
            distilled = [r for r in records if r.size_bytes >= threshold]
            bytes_in = sum(r.size_bytes for r in distilled)
            # conservative ~6x image reduction at default preferences
            bytes_saved = bytes_in * (1 - 1 / 6)
            work_s = sum(0.008 + 0.008 * r.size_bytes / 1024
                         for r in distilled)
            results[threshold] = (len(distilled), bytes_saved, work_s)
        return records, results

    records, results = run_once(benchmark, sweep)
    print(f"\nthreshold sweep over {len(records)} image requests:")
    print(f"{'threshold':>10} {'distilled':>10} {'MB saved':>10} "
          f"{'cpu s':>8} {'KB saved per cpu s':>20}")
    for threshold, (count, saved, work) in sorted(results.items()):
        print(f"{threshold:>10} {count:>10} {saved / 1e6:>10.1f} "
              f"{work:>8.1f} {saved / 1024 / work:>20.1f}")
    # raising the threshold 0 -> 1 KB cuts work much more than savings
    count0, saved0, work0 = results[0]
    count1k, saved1k, work1k = results[1024]
    assert work1k < work0
    assert saved1k > saved0 * 0.90   # keeps >=90% of the byte savings
    efficiency0 = saved0 / work0
    efficiency1k = saved1k / work1k
    assert efficiency1k > efficiency0  # better KB saved per CPU second


def _damping_outcome(damping_s: float, seed: int = 1997):
    """Churn (spawns+reaps) and tail latency for one value of D."""
    config = SNSConfig(spawn_threshold=8.0, spawn_damping_s=damping_s,
                       reap_after_s=20.0, dispatch_timeout_s=8.0)
    fabric = build_bench_fabric(n_nodes=16, seed=seed, config=config)
    fabric.boot(n_frontends=1, initial_workers={"jpeg-distiller": 1})
    fabric.cluster.run(until=2.0)
    engine = _drive(fabric, rate=70.0, duration=80.0, seed=seed,
                    timeout_s=120.0)
    fabric.cluster.run(until=200.0)
    latencies = sorted(engine.latencies())
    p95 = latencies[int(0.95 * len(latencies))] if latencies else 0.0
    churn = fabric.manager.spawns + fabric.manager.reaps
    return churn, p95


def test_ablation_spawn_damping(benchmark):
    """Section 4.5: 'the parameter D represents a tradeoff between
    stability (rate of spawning and reaping distillers) and
    user-perceptible delay.'  Small D reacts fast but churns; huge D is
    calm but slow to absorb the ramp."""

    def sweep():
        return {damping: _damping_outcome(damping)
                for damping in (2.0, 10.0, 40.0)}

    outcomes = run_once(benchmark, sweep)
    print("\nspawn damping D vs churn and user-perceptible delay:")
    print(f"{'D (s)':>6} {'spawns+reaps':>13} {'p95 latency':>12}")
    for damping, (churn, p95) in sorted(outcomes.items()):
        print(f"{damping:>6.0f} {churn:>13} {p95:>11.2f}s")
    benchmark.extra_info["churn_at_2s"] = outcomes[2.0][0]
    benchmark.extra_info["churn_at_40s"] = outcomes[40.0][0]
    # the paper's tradeoff, measured: tighter damping reacts no slower
    # (p95 at D=2 <= p95 at D=40) and bigger damping churns no more
    assert outcomes[2.0][0] >= outcomes[40.0][0]   # churn falls with D
    assert outcomes[2.0][1] <= outcomes[40.0][1] * 1.5
    # every setting still serves the load
    for damping, (churn, p95) in outcomes.items():
        assert p95 < 60.0, (damping, p95)


def test_ablation_mod_hash_vs_consistent_hash(benchmark):
    """Section 3.1.5's re-hash, quantified: fraction of surviving keys
    that move when one of 8 cache nodes leaves."""
    keys = [f"http://host{i}/obj{i}" for i in range(5000)]
    nodes = [f"cache{i}" for i in range(8)]

    def both():
        return (
            remap_fraction(ModHashPartitioner, keys, nodes, "cache3"),
            remap_fraction(ConsistentHashRing, keys, nodes, "cache3"),
        )

    mod_moved, ring_moved = run_once(benchmark, both)
    print(f"\nkeys remapped on node loss (mod-hash):    {mod_moved:.0%}")
    print(f"keys remapped on node loss (consistent):  {ring_moved:.0%}")
    benchmark.extra_info["mod_hash_moved"] = round(mod_moved, 3)
    benchmark.extra_info["consistent_moved"] = round(ring_moved, 3)
    assert mod_moved > 0.7
    assert ring_moved < 0.15
