"""Section 1.1 headline benchmark: end-to-end latency reduction through
the modem bank, with vs without distillation."""

from benchmarks.conftest import run_once
from repro.experiments.endtoend_latency import run_endtoend


def test_endtoend_latency_reduction(benchmark):
    result = run_once(benchmark, run_endtoend, n_requests=400,
                      seed=1997)
    print("\n" + result.render())
    benchmark.extra_info["mean_reduction"] = round(
        result.mean_reduction, 2)
    benchmark.extra_info["paper_reduction"] = "3-5x"
    # squarely in the paper's 3-5x band (codec calibrated to Figure 3's
    # 6.7x single-image reduction; the mix dilutes it to overall 3-5x)
    assert 2.5 < result.mean_reduction < 6.0
    assert result.distilled_mean_s < result.original_mean_s
    # the modem bank itself carries far fewer bytes (the full mix
    # includes HTML and small content that cannot shrink, so the byte
    # win is smaller than the image-only reduction factor)
    assert result.bytes_over_modems_distilled < \
        result.bytes_over_modems_original / 2
