"""Span-tracing overhead benchmark.

The tracing subsystem promises near-zero cost: disabled runs touch one
``is None`` check per instrumentation site, and sampled runs only
append spans (no RNG, no extra sim events).  This benchmark holds it
to that: sampled tracing must add less than 10% wall clock to the
end-to-end experiment.
"""

import time

from repro.experiments.endtoend_latency import run_endtoend
from repro.obs import capture_traces

N_REQUESTS = 200
SEED = 1997
ROUNDS = 5


def _run_untraced() -> None:
    run_endtoend(n_requests=N_REQUESTS, seed=SEED)


def _run_traced(sample_every: int) -> int:
    with capture_traces(sample_every=sample_every) as tracers:
        run_endtoend(n_requests=N_REQUESTS, seed=SEED)
    return sum(tracer.requests_sampled for tracer in tracers)


def _best_of(fn, rounds: int = ROUNDS) -> float:
    """Minimum wall-clock over several rounds: the noise-robust
    estimator for 'how fast can this go' comparisons."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sampled_tracing_overhead_under_ten_percent(benchmark):
    _run_untraced()  # warm imports and caches out of the measurement

    # interleave the two variants so drift (thermal, scheduler) hits
    # both equally instead of biasing whichever ran second
    untraced = float("inf")
    traced = float("inf")
    for _ in range(ROUNDS):
        untraced = min(untraced, _best_of(_run_untraced, rounds=1))
        traced = min(traced, _best_of(lambda: _run_traced(10),
                                      rounds=1))

    def measured():
        _run_traced(10)

    benchmark.pedantic(measured, rounds=1, iterations=1)
    overhead = traced / untraced - 1.0
    benchmark.extra_info["untraced_s"] = round(untraced, 4)
    benchmark.extra_info["traced_s"] = round(traced, 4)
    benchmark.extra_info["overhead"] = f"{overhead:+.1%}"
    assert traced < untraced * 1.10, (
        f"sampled tracing added {overhead:+.1%} wall clock "
        f"(untraced {untraced:.3f}s, traced {traced:.3f}s)")


def test_full_tracing_still_samples_every_request(benchmark):
    def measured():
        return _run_traced(1)

    sampled = benchmark.pedantic(measured, rounds=1, iterations=1)
    # both arms of the experiment trace every request they saw
    assert sampled >= 2 * N_REQUESTS
    benchmark.extra_info["requests_sampled"] = sampled
