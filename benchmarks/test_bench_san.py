"""Section 4.6 SAN-saturation benchmark: 100 Mb/s vs 10 Mb/s."""

from benchmarks.conftest import run_once
from repro.experiments.san_saturation import run_san_saturation


def test_san_saturation_cripples_load_balancing(benchmark):
    result = run_once(benchmark, run_san_saturation, rate_rps=80.0,
                      duration_s=60.0, seed=1997)
    print("\n" + result.render())
    benchmark.extra_info["fast_beacon_loss"] = round(
        result.fast.beacon_loss_rate, 3)
    benchmark.extra_info["slow_beacon_loss"] = round(
        result.slow.beacon_loss_rate, 3)
    # 100 Mb/s: healthy
    assert result.fast.beacon_loss_rate < 0.02
    assert result.fast.failed == 0
    # 10 Mb/s: "most of our (unreliable) multicast traffic was being
    # dropped"
    assert result.slow.beacon_loss_rate > 0.5
    assert result.slow.p95_latency_s > result.fast.p95_latency_s
    # the paper's proposed remedy, implemented: same saturated SAN, but
    # control traffic isolated on a low-speed utility network
    remedied = result.slow_with_utility
    assert remedied is not None
    benchmark.extra_info["utility_beacon_loss"] = round(
        remedied.beacon_loss_rate, 3)
    assert remedied.beacon_loss_rate < 0.02
    assert remedied.failed < result.slow.failed
