"""Time-sharded 10M-request replay benchmark (ISSUE 10 tentpole).

Replays one long generated trace against the queue-SAN service twice —
once serially, once split into contiguous time windows fanned across
worker processes — and records both to ``BENCH_replay.json``.  The
committed file is the baseline; ``benchmarks/perf_gate.py --replay``
enforces (a) the normalized serial throughput floor, (b) the drift
contract (window merge must reproduce the serial totals exactly), and
(c) the >=2x sharded speedup at 4 jobs on machines with at least
4 cores.  Smaller boxes record honest numbers (``cpu_count`` travels
with the measurement) and the gate skips the speedup floor there.

The drift check costs nothing extra: the serial run *is* the
reference, so correctness of the time-shard handoff (bucket-aligned
window edges, uncounted warmup lead-in, per-shard drain to
exhaustion) is verified on every benchmark run.

Environment knobs:

* ``BENCH_REPLAY_SCALE`` — scales the trace duration; 1.0 is the full
  10M-request replay (2000 req/s x 5000 s), CI smoke uses ~0.01;
* ``BENCH_REPLAY_JOBS`` — pool width for the sharded run (default 4);
* ``BENCH_REPLAY_OUT`` — output path (default ``<repo>/BENCH_replay.json``).
"""

import json
import os
import time
from pathlib import Path

from repro.fanout.timeshard import (
    ReplaySpec,
    drift_check,
    replay_serial,
    replay_sharded,
)

SCALE = float(os.environ.get("BENCH_REPLAY_SCALE", "1.0"))
JOBS = int(os.environ.get("BENCH_REPLAY_JOBS", "4"))
DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_replay.json"
OUT_PATH = Path(os.environ.get("BENCH_REPLAY_OUT", str(DEFAULT_OUT)))

#: 2000 req/s x 5640 s at scale 1.0 — the bursty arrival process
#: realizes ~10M requests for this seed.
MEAN_RATE_RPS = 2000.0
FULL_DURATION_S = 5640.0

CALIBRATION_OPS = 2_000_000


def _calibrate() -> float:
    """Ops/sec of a fixed pure-Python loop: a machine-speed yardstick
    (same loop the kernel and fan-out benchmarks record)."""
    best = float("inf")
    for _ in range(3):
        total = 0
        start = time.perf_counter()
        for i in range(CALIBRATION_OPS):
            total += i
        best = min(best, time.perf_counter() - start)
    assert total  # keep the loop honest
    return CALIBRATION_OPS / best


def test_replay_10m(benchmark):
    duration_s = max(FULL_DURATION_S * SCALE, 20.0)
    spec = ReplaySpec(duration_s=duration_s, mean_rate_rps=MEAN_RATE_RPS)
    replay_serial(ReplaySpec(duration_s=20.0,
                             mean_rate_rps=MEAN_RATE_RPS))  # warm-up

    result_holder = {}

    def measure():
        start = time.perf_counter()
        serial = replay_serial(spec)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        sharded = replay_sharded(spec, jobs=JOBS)
        sharded_s = time.perf_counter() - start
        result_holder.update(serial=serial, serial_s=serial_s,
                             sharded=sharded, sharded_s=sharded_s)

    benchmark.pedantic(measure, rounds=1, iterations=1)
    serial = result_holder["serial"]
    sharded = result_holder["sharded"]
    serial_s = result_holder["serial_s"]
    sharded_s = result_holder["sharded_s"]

    report = drift_check(serial, sharded.merged)
    speedup = serial_s / sharded_s if sharded_s else float("inf")
    payload = {
        "benchmark": "replay10m",
        "schema": 1,
        "scale": SCALE,
        "calibration_ops_per_sec": round(_calibrate()),
        "cpu_count": os.cpu_count() or 1,
        "replay": {
            "duration_s": duration_s,
            "mean_rate_rps": MEAN_RATE_RPS,
            "requests": serial.submitted,
            "serial_s": round(serial_s, 3),
            "requests_per_sec": round(serial.submitted / serial_s, 1),
            "jobs": JOBS,
            "n_windows": len(sharded.windows),
            "sharded_s": round(sharded_s, 3),
            "speedup": round(speedup, 2),
            "drift_ok": report.ok,
            "latency_rel_diff": round(report.mean_latency_rel_diff, 6),
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
    print(f"\nBENCH_replay -> {OUT_PATH}")
    print(json.dumps(payload, indent=2))
    for line in report.checks:
        print(f"drift: {line}")

    benchmark.extra_info["requests_per_sec"] = (
        payload["replay"]["requests_per_sec"])
    benchmark.extra_info["speedup"] = payload["replay"]["speedup"]
    benchmark.extra_info["drift_ok"] = report.ok
    # correctness is unconditional; the speedup floor is the gate's
    # job (it knows whether this machine has the cores to show it)
    assert report.ok, "\n".join(report.checks)
    assert serial.failed == 0 and sharded.merged.failed == 0
