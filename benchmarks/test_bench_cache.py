"""Section 4.4 benchmarks: cache hit-rate studies plus LRU and cache
latency microbenchmarks."""

from benchmarks.conftest import run_once
from repro.cache.lru import LRUCache
from repro.experiments.cache_hitrate import (
    run_cache_size_sweep,
    run_population_sweep,
)
from repro.sim.rng import RandomStreams


def test_cache_size_sweep(benchmark):
    result = run_once(
        benchmark, run_cache_size_sweep,
        capacities_bytes=(2_000_000, 8_000_000, 32_000_000,
                          128_000_000, 512_000_000, 2_048_000_000),
        n_users=800, n_requests=120_000, seed=1997)
    print("\n" + result.render("Cache study, Section 4.4"))
    benchmark.extra_info["plateau_hit_rate"] = round(result.plateau(), 3)
    benchmark.extra_info["paper_plateau"] = 0.56
    rates = [rate for _, rate in result.sweep]
    for smaller, bigger in zip(rates, rates[1:]):
        assert bigger >= smaller - 0.01
    assert rates[-1] - rates[-2] < 0.03  # the plateau
    assert 0.40 < result.plateau() < 0.75  # paper: ~56%


def test_population_sweep(benchmark):
    result = run_once(
        benchmark, run_population_sweep,
        populations=(25, 100, 400, 1600, 6400),
        capacity_bytes=24_000_000, requests_per_user=60, seed=1997)
    print("\n" + result.render("Population study, Section 4.4"))
    rates = [rate for _, rate in result.sweep]
    peak_index = rates.index(max(rates))
    benchmark.extra_info["peak_population"] = \
        result.sweep[peak_index][0]
    assert 0 < peak_index < len(rates) - 1  # rises, then falls
    assert rates[-1] < rates[peak_index]


def test_lru_reference_throughput(benchmark):
    """Microbenchmark: LRU operations/second (the per-reference cost of
    every cache simulation above)."""
    rng = RandomStreams(1997).stream("bench-lru")
    keys = [f"doc{rng.zipf_rank(5000)}" for _ in range(20_000)]
    cache = LRUCache(2_000_000)

    def run_references():
        for key in keys:
            if cache.get(key) is None:
                cache.put(key, True, 1000)

    benchmark(run_references)
    assert cache.hits > 0
