"""Perf regression gate for the kernel and fan-out benchmarks.

Kernel mode compares a freshly measured ``BENCH_kernel.json`` against
the committed baseline and exits non-zero when throughput regressed
beyond the allowed fraction.  Rates are normalized by each file's
``calibration_ops_per_sec`` (a fixed pure-Python spin loop measured on
the same machine at the same time), so a slower CI runner is not
mistaken for a slower kernel.

Fan-out mode (``--fanout``) checks a fresh ``BENCH_fanout.json``:
the parallel batch must be byte-identical to the serial one
(unconditionally), and when the *runner* has at least 4 cores the
measured speedup at 4 jobs must clear the floor.  A smaller machine
records honest numbers but cannot demonstrate the speedup, so the
floor is skipped there rather than faked.  The skip decision is keyed
off the gate runner's own core count, never the count recorded in the
JSON: a measurement file recorded on a smaller machine must not waive
the floor on a machine that can demonstrate the speedup — it fails the
gate instead, telling you to regenerate the measurement here.

Replay mode (``--replay``) gates a fresh ``BENCH_replay.json`` the
same way on three axes: the drift contract must hold unconditionally
(the sharded merge reproduces the serial totals), the serial
requests/sec must clear the normalized floor against the committed
baseline, and — on runners with enough cores — the sharded speedup at
4 jobs must clear its own floor.

Both parallel gates print a loud warning when the *committed* file is
a 1-core artifact: such a file carries honest correctness data but no
meaningful speedup, so it anchors nothing until regenerated on a
multi-core machine.

Usage::

    python benchmarks/perf_gate.py NEW.json [--baseline BENCH_kernel.json]
                                            [--max-regression 0.25]
    python benchmarks/perf_gate.py --fanout BENCH_fanout.json
                                            [--min-speedup 1.8]
    python benchmarks/perf_gate.py --replay NEW_replay.json
                                            [--replay-baseline BENCH_replay.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: (label, path into the JSON) for each gated rate.
GATED = [
    ("queue-heavy events/sec", ("queue_heavy", "events_per_sec")),
    ("coalesced-timer ticks/sec",
     ("timer_coalescing", "coalesced_ticks_per_sec")),
    ("trace-replay requests/sec", ("trace_replay", "requests_per_sec")),
]


def _rate(payload: dict, path) -> float:
    value = payload
    for key in path:
        value = value[key]
    return float(value)


def _normalized(payload: dict, path) -> float:
    return _rate(payload, path) / float(payload["calibration_ops_per_sec"])


def _warn_single_core_artifact(name: str, recorded_cores: int,
                               regenerate_cmd: str) -> None:
    """Shout when a committed measurement came from a 1-core box.

    The file's correctness fields (byte-identical / drift) are still
    trustworthy, but its speedup number is meaningless — parallel work
    on one core only adds fork overhead — so nothing downstream should
    treat it as a performance anchor.
    """
    if recorded_cores > 1:
        return
    print("=" * 64)
    print(f"WARNING: {name} was recorded on a single-core machine.")
    print("Its speedup figure reflects fork overhead, not parallel")
    print("scaling, and must not be read as a performance baseline.")
    print(f"Regenerate on a multi-core box: {regenerate_cmd}")
    print("=" * 64)


def gate_fanout(path: Path, min_speedup: float, min_cores: int,
                runner_cores: int | None = None) -> int:
    payload = json.loads(path.read_text(encoding="utf-8"))
    sweep = payload["sweep"]
    recorded_cores = int(payload.get("cpu_count", 1))
    _warn_single_core_artifact(
        path.name, recorded_cores,
        "python -m pytest benchmarks/test_bench_fanout.py")
    runner = (runner_cores if runner_cores is not None
              else os.cpu_count() or 1)
    speedup = float(sweep["speedup"])
    print(f"fanout: {sweep['runs']} x {sweep['campaign']} at "
          f"{sweep['jobs']} jobs -> {speedup:.2f}x "
          f"({sweep['serial_s']:.2f}s serial, "
          f"{sweep['parallel_s']:.2f}s parallel) recorded on "
          f"{recorded_cores} core(s); gate runner has {runner}")
    if not sweep["byte_identical"]:
        print("FAIL: parallel output is not byte-identical to serial")
        return 1
    print("byte-identical: ok")
    if runner < min_cores:
        print(f"speedup floor skipped: runner has {runner} core(s) < "
              f"{min_cores} (cannot demonstrate parallel speedup)")
        print("perf gate passed")
        return 0
    if recorded_cores < min_cores:
        # the runner could demonstrate the speedup but the measurement
        # came from a machine that couldn't — a stale committed file
        # must not waive the floor here
        print(f"FAIL: measurement recorded on {recorded_cores} "
              f"core(s) but this runner has {runner}; regenerate "
              f"{path.name} on this machine "
              f"(python -m pytest benchmarks/test_bench_fanout.py)")
        return 1
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"{min_speedup:.2f}x floor")
        return 1
    print(f"speedup floor: ok (>= {min_speedup:.2f}x)")
    print("perf gate passed")
    return 0


def gate_replay(path: Path, baseline_path: Path, max_regression: float,
                min_speedup: float, min_cores: int,
                runner_cores: int | None = None) -> int:
    new = json.loads(path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    replay = new["replay"]
    recorded_cores = int(new.get("cpu_count", 1))
    baseline_cores = int(baseline.get("cpu_count", 1))
    runner = (runner_cores if runner_cores is not None
              else os.cpu_count() or 1)
    _warn_single_core_artifact(
        baseline_path.name, baseline_cores,
        "python -m pytest benchmarks/test_bench_replay10m.py")

    print(f"replay: {replay['requests']} requests over "
          f"{replay['duration_s']:g}s trace; serial "
          f"{replay['requests_per_sec']:,.0f} req/s, "
          f"{replay['jobs']} jobs -> {replay['speedup']:.2f}x "
          f"across {replay['n_windows']} windows; recorded on "
          f"{recorded_cores} core(s), gate runner has {runner}")

    # axis 1: the drift contract is unconditional — a sharded replay
    # that does not reproduce the serial totals is wrong, not slow
    if not replay["drift_ok"]:
        print("FAIL: sharded merge drifted from the serial replay")
        return 1
    print("drift contract: ok")

    # axis 2: normalized serial throughput vs the committed baseline
    path_into = ("replay", "requests_per_sec")
    new_norm = _normalized(new, path_into)
    base_norm = _normalized(baseline, path_into)
    ratio = new_norm / base_norm if base_norm else float("inf")
    floor = 1.0 - max_regression
    verdict = "ok" if ratio >= floor else "REGRESSION"
    print(f"serial requests/sec: raw {_rate(new, path_into):.0f} vs "
          f"baseline {_rate(baseline, path_into):.0f} | normalized "
          f"ratio {ratio:.2f} (floor {floor:.2f}) -> {verdict}")
    if ratio < floor:
        print(f"FAIL: serial replay regressed more than "
              f"{max_regression:.0%} vs {baseline_path}")
        return 1

    # axis 3: sharded speedup floor, same skip/fail logic as --fanout
    if runner < min_cores:
        print(f"speedup floor skipped: runner has {runner} core(s) < "
              f"{min_cores} (cannot demonstrate parallel speedup)")
        print("perf gate passed")
        return 0
    if recorded_cores < min_cores:
        print(f"FAIL: measurement recorded on {recorded_cores} "
              f"core(s) but this runner has {runner}; regenerate "
              f"{path.name} on this machine "
              f"(python -m pytest benchmarks/test_bench_replay10m.py)")
        return 1
    if replay["speedup"] < min_speedup:
        print(f"FAIL: sharded speedup {replay['speedup']:.2f}x below "
              f"the {min_speedup:.2f}x floor")
        return 1
    print(f"speedup floor: ok (>= {min_speedup:.2f}x)")
    print("perf gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new", type=Path, nargs="?",
                        help="freshly measured BENCH_kernel.json")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parents[1]
                        / "BENCH_kernel.json",
                        help="committed baseline (default: repo root)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="maximum allowed fractional slowdown")
    parser.add_argument("--fanout", type=Path, default=None,
                        metavar="BENCH_fanout.json",
                        help="gate a fan-out speedup measurement "
                             "instead of the kernel throughput")
    parser.add_argument("--replay", type=Path, default=None,
                        metavar="BENCH_replay.json",
                        help="gate a time-sharded replay measurement "
                             "(drift + serial floor + speedup floor)")
    parser.add_argument("--replay-baseline", type=Path,
                        default=Path(__file__).resolve().parents[1]
                        / "BENCH_replay.json",
                        help="committed replay baseline "
                             "(default: repo root)")
    parser.add_argument("--min-speedup", type=float, default=1.8,
                        help="fan-out speedup floor at 4 jobs "
                             "(default 1.8)")
    parser.add_argument("--min-replay-speedup", type=float, default=2.0,
                        help="sharded replay speedup floor at 4 jobs "
                             "(default 2.0)")
    parser.add_argument("--min-cores", type=int, default=4,
                        help="skip the speedup floor when the runner "
                             "has fewer cores than this (default 4)")
    parser.add_argument("--runner-cores", type=int, default=None,
                        help="override the detected core count of this "
                             "machine (testing hook; default: "
                             "os.cpu_count())")
    args = parser.parse_args(argv)

    if args.fanout is not None:
        return gate_fanout(args.fanout, args.min_speedup,
                           args.min_cores,
                           runner_cores=args.runner_cores)
    if args.replay is not None:
        return gate_replay(args.replay, args.replay_baseline,
                           args.max_regression,
                           args.min_replay_speedup, args.min_cores,
                           runner_cores=args.runner_cores)
    if args.new is None:
        parser.error("NEW.json is required unless --fanout or "
                     "--replay is given")

    new = json.loads(args.new.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))

    failed = False
    for label, path in GATED:
        new_norm = _normalized(new, path)
        base_norm = _normalized(baseline, path)
        ratio = new_norm / base_norm if base_norm else float("inf")
        floor = 1.0 - args.max_regression
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(f"{label}: raw {_rate(new, path):.0f} vs baseline "
              f"{_rate(baseline, path):.0f} | normalized ratio "
              f"{ratio:.2f} (floor {floor:.2f}) -> {verdict}")
        if ratio < floor:
            failed = True

    if failed:
        print(f"FAIL: throughput regressed more than "
              f"{args.max_regression:.0%} vs {args.baseline}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
