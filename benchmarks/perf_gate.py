"""Perf regression gate for the kernel benchmark.

Compares a freshly measured ``BENCH_kernel.json`` against the committed
baseline and exits non-zero when throughput regressed beyond the
allowed fraction.  Rates are normalized by each file's
``calibration_ops_per_sec`` (a fixed pure-Python spin loop measured on
the same machine at the same time), so a slower CI runner is not
mistaken for a slower kernel.

Usage::

    python benchmarks/perf_gate.py NEW.json [--baseline BENCH_kernel.json]
                                            [--max-regression 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (label, path into the JSON) for each gated rate.
GATED = [
    ("queue-heavy events/sec", ("queue_heavy", "events_per_sec")),
    ("trace-replay requests/sec", ("trace_replay", "requests_per_sec")),
]


def _rate(payload: dict, path) -> float:
    value = payload
    for key in path:
        value = value[key]
    return float(value)


def _normalized(payload: dict, path) -> float:
    return _rate(payload, path) / float(payload["calibration_ops_per_sec"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new", type=Path,
                        help="freshly measured BENCH_kernel.json")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parents[1]
                        / "BENCH_kernel.json",
                        help="committed baseline (default: repo root)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="maximum allowed fractional slowdown")
    args = parser.parse_args(argv)

    new = json.loads(args.new.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))

    failed = False
    for label, path in GATED:
        new_norm = _normalized(new, path)
        base_norm = _normalized(baseline, path)
        ratio = new_norm / base_norm if base_norm else float("inf")
        floor = 1.0 - args.max_regression
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(f"{label}: raw {_rate(new, path):.0f} vs baseline "
              f"{_rate(baseline, path):.0f} | normalized ratio "
              f"{ratio:.2f} (floor {floor:.2f}) -> {verdict}")
        if ratio < floor:
            failed = True

    if failed:
        print(f"FAIL: throughput regressed more than "
              f"{args.max_regression:.0%} vs {args.baseline}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
