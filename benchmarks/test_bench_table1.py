"""Table 1 benchmark: the TranSend/HotBot comparison, derived from both
live implementations."""

from benchmarks.conftest import run_once
from repro.experiments.table1_comparison import run_table1


def test_table1_transend_vs_hotbot(benchmark):
    table = run_once(benchmark, run_table1)
    print("\n" + table)
    for row in ("Load balancing", "Application layer", "Service layer",
                "Failure management", "Worker placement",
                "User profile (ACID) database", "Caching"):
        assert row in table
