"""Integration benchmark: a day in the life of the installation.

The whole architecture in one run: bursty daily-cycle traffic (the
Figure 6 workload) drives the spawn/reap policy up and down the load
curve, with the overflow pool absorbing the evening peak — the
Section 2.2.3 story end to end.  The day is compressed 24:1 (policy
timers scaled to match) so it runs in simulated 'hours' of seconds.
"""

from benchmarks.conftest import run_once
from repro.core.config import SNSConfig
from repro.experiments._harness import build_bench_fabric
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord
from repro.workload.tracegen import daily_cycle_factor


def run_day(seed=1997, compressed_day_s=900.0, peak_rate_rps=90.0):
    config = SNSConfig(spawn_threshold=8.0, spawn_damping_s=8.0,
                       reap_threshold=0.5, reap_after_s=30.0,
                       dispatch_timeout_s=8.0,
                       frontend_connection_overhead_s=0.002)
    # a dedicated pool sized for the average, so the evening peak must
    # recruit overflow machines (the Section 2.2.3 provisioning policy)
    fabric = build_bench_fabric(n_nodes=6, n_overflow=6, seed=seed,
                                config=config)
    fabric.boot(n_frontends=2, initial_workers={"jpeg-distiller": 1})
    env = fabric.cluster.env
    fabric.cluster.run(until=2.0)

    engine = PlaybackEngine(env, fabric.submit,
                            rng=RandomStreams(seed).stream("day"),
                            timeout_s=60.0)
    pool = [TraceRecord(0.0, f"client{index}",
                        f"http://site/img{index}.jpg", "image/jpeg",
                        10240) for index in range(50)]
    # the 24 h cycle compressed into compressed_day_s, 40 steps
    steps = []
    n_steps = 40
    for index in range(n_steps):
        hour_time = 86400.0 * index / n_steps
        rate = max(0.5, peak_rate_rps / 1.65
                   * daily_cycle_factor(hour_time))
        steps.append((compressed_day_s / n_steps, rate))
    env.process(engine.ramp(steps, pool))

    pool_sizes = []
    overflow_in_use = []

    def sampler(env):
        while env.now < compressed_day_s:
            yield env.timeout(compressed_day_s / 100)
            workers = fabric.alive_workers("jpeg-distiller")
            pool_sizes.append((env.now, len(workers)))
            overflow_in_use.append(sum(
                1 for stub in workers if stub.node.overflow))

    env.process(sampler(env))
    fabric.cluster.run(until=compressed_day_s + 120.0)
    return fabric, engine, pool_sizes, overflow_in_use


def test_day_in_the_life(benchmark):
    fabric, engine, pool_sizes, overflow_in_use = run_once(
        benchmark, run_day)
    sizes = [size for _, size in pool_sizes]
    peak_pool = max(sizes)
    trough_pool = min(sizes[len(sizes) // 2:])  # after warm-up
    ok = len(engine.completed())
    total = len(engine.outcomes)
    print(f"\na compressed day at the installation:")
    print(f"  requests: {total}, answered {ok / total:.1%}")
    print(f"  distiller pool: trough {trough_pool}, peak {peak_pool}")
    print(f"  spawns {fabric.manager.spawns}, reaps "
          f"{fabric.manager.reaps}")
    print(f"  overflow nodes recruited at peak: "
          f"{max(overflow_in_use)}")
    benchmark.extra_info["peak_pool"] = peak_pool
    benchmark.extra_info["spawns"] = fabric.manager.spawns
    benchmark.extra_info["reaps"] = fabric.manager.reaps
    benchmark.extra_info["availability"] = round(ok / total, 4)
    # the pool breathes with the load
    assert peak_pool >= trough_pool + 2
    assert fabric.manager.spawns >= 3
    assert fabric.manager.reaps >= 1
    # and the users barely notice any of it
    assert ok > 0.95 * total
