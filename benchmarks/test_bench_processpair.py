"""Ablation: soft-state manager recovery vs the process-pair prototype
(Section 3.1.3 — the design the paper built first and then discarded)."""

from benchmarks.conftest import run_once
from repro.core.config import SNSConfig
from repro.experiments._harness import build_bench_fabric
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord


def run_mode(process_pair, seed=1997, kill_at=30.0, duration=90.0):
    config = SNSConfig(dispatch_timeout_s=5.0,
                       frontend_connection_overhead_s=0.001)
    fabric = build_bench_fabric(n_nodes=12, seed=seed, config=config)
    fabric.start_manager(process_pair=process_pair)
    fabric.start_monitor()
    fabric.start_frontend()
    for _ in range(2):
        fabric.spawn_worker("jpeg-distiller")
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(
        fabric.cluster.env, fabric.submit,
        rng=RandomStreams(seed).stream("pp-playback"), timeout_s=20.0)
    pool = [TraceRecord(0.0, f"client{index}",
                        f"http://bench/img{index}.jpg", "image/jpeg",
                        10240) for index in range(30)]
    fabric.cluster.env.process(
        engine.constant_rate(20.0, duration, pool))

    def killer(env):
        yield env.timeout(kill_at - env.now)
        fabric.manager.kill()

    fabric.cluster.env.process(killer(fabric.cluster.env))
    fabric.cluster.run(until=duration + 30.0)
    # beacon outage around the kill
    times = [time for time, _ in fabric.monitor.worker_counts]
    gaps = [(b - a, a) for a, b in zip(times, times[1:])]
    outage = max((gap for gap, at in gaps if at >= kill_at - 1.0),
                 default=0.0)
    ok = len(engine.completed())
    total = len(engine.outcomes)
    mirror_messages = getattr(fabric.manager, "mirror_messages", 0)
    return {
        "outage_s": outage,
        "availability": ok / total if total else 0.0,
        "mirror_messages": mirror_messages,
        "mirror_bytes": getattr(fabric.manager, "mirror_bytes", 0),
        "restarts": fabric.manager_restarts,
    }


def test_process_pair_vs_soft_state(benchmark):
    def both():
        return (run_mode(process_pair=False),
                run_mode(process_pair=True))

    soft, pair = run_once(benchmark, both)
    print("\nmanager recovery after a kill at t=30s under 20 req/s:")
    print(f"  soft state:    beacon outage {soft['outage_s']:.1f}s, "
          f"availability {soft['availability']:.1%}, "
          f"mirror traffic 0")
    print(f"  process pair:  beacon outage {pair['outage_s']:.1f}s, "
          f"availability {pair['availability']:.1%}, "
          f"mirror traffic {pair['mirror_messages']} msgs / "
          f"{pair['mirror_bytes']} B")
    benchmark.extra_info["soft_outage_s"] = round(soft["outage_s"], 2)
    benchmark.extra_info["pair_outage_s"] = round(pair["outage_s"], 2)
    benchmark.extra_info["pair_mirror_messages"] = \
        pair["mirror_messages"]
    # the prototype's advantage: a shorter outage...
    assert pair["outage_s"] < soft["outage_s"]
    # ...but BOTH keep the service effectively fully available (the
    # paper's justification for choosing the simpler design)...
    assert soft["availability"] > 0.95
    assert pair["availability"] > 0.95
    # ...and the pair pays a continuous mirroring tax
    assert pair["mirror_messages"] > 0
