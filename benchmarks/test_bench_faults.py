"""Section 3.1.3 benchmark: the full process-peer fault timeline."""

from benchmarks.conftest import run_once
from repro.experiments.fault_timeline import run_fault_timeline


def test_fault_timeline_availability(benchmark):
    result = run_once(benchmark, run_fault_timeline, rate_rps=20.0,
                      seed=1997)
    print("\n" + result.render())
    benchmark.extra_info["success_rate"] = round(result.success_rate, 4)
    benchmark.extra_info["manager_restarts"] = result.manager_restarts
    assert result.success_rate > 0.9
    assert result.manager_restarts == 1
    labels = " | ".join(label for _, label in result.timeline)
    assert "killed distiller" in labels
    assert "killed manager" in labels
    assert "killed front end" in labels
