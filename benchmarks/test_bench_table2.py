"""Table 2 benchmark: the full scalability sweep to ~160 req/s."""

from benchmarks.conftest import run_once
from repro.core.config import SNSConfig
from repro.experiments.table2_scalability import run_table2


def test_table2_scalability_sweep(benchmark):
    config = SNSConfig(spawn_threshold=10.0, spawn_damping_s=10.0,
                       dispatch_timeout_s=8.0,
                       frontend_connection_overhead_s=0.014)
    result = run_once(
        benchmark, run_table2,
        rates=tuple(range(10, 161, 15)),
        step_duration_s=25.0, seed=1997, config=config)
    print("\n" + result.render())
    benchmark.extra_info["per_distiller_rps"] = round(
        result.per_distiller_rps, 1)
    benchmark.extra_info["per_frontend_rps"] = round(
        result.per_frontend_rps, 1)
    benchmark.extra_info["paper_per_distiller_rps"] = 23
    benchmark.extra_info["paper_per_frontend_rps"] = "70-87"

    rows = result.rows
    # linear scaling: served tracks offered at every level
    for row in rows:
        assert row.completed_rps > 0.7 * row.rate_rps, row
    # resource counts grow monotonically with load
    assert rows[-1].n_distillers >= 5
    assert rows[-1].n_frontends >= 2
    # who saturates: distillers repeatedly, FE Ethernet at ~70-90
    saturated = " ".join(row.saturated for row in rows)
    assert "distillers" in saturated
    assert "FE Ethernet" in saturated
    fe_rows = [row for row in rows if "FE Ethernet" in row.saturated]
    assert any(50 <= row.rate_rps <= 110 for row in fe_rows)
    # paper-neighbourhood unit capacities
    assert 15.0 < result.per_distiller_rps < 35.0
    assert 50.0 < result.per_frontend_rps < 95.0
    # interior SAN never the bottleneck at 100 Mb/s
    assert result.san_utilization_peak < 0.5
