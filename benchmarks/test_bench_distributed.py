"""Ablation: centralized vs distributed load balancing (Section 2.2.2).

The paper chose centralization because it is "easier to implement and
reason about" once the balancer is fault tolerant and not a bottleneck.
This benchmark measures the other axis: control-traffic scaling.
Distributed load announcements cost O(workers x front ends); the
centralized manager costs O(workers + front ends)."""

from benchmarks.conftest import run_once
from repro.core.config import SNSConfig
from repro.core.messages import BEACON_GROUP, WORKER_ANNOUNCE_GROUP
from repro.experiments._harness import build_bench_fabric
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord


def control_rate(n_frontends, balancing, workers=8, duration=30.0,
                 seed=1997):
    config = SNSConfig(balancing=balancing, spawn_threshold=1e9,
                       reap_after_s=1e9, dispatch_timeout_s=8.0,
                       frontend_connection_overhead_s=0.001)
    fabric = build_bench_fabric(n_nodes=20, seed=seed, config=config)
    fabric.boot(n_frontends=n_frontends,
                initial_workers={"jpeg-distiller": workers})
    fabric.cluster.run(until=2.0)
    engine = PlaybackEngine(
        fabric.cluster.env, fabric.submit,
        rng=RandomStreams(seed).stream("dist-playback"),
        timeout_s=30.0)
    pool = [TraceRecord(0.0, f"client{index}",
                        f"http://bench/img{index}.jpg", "image/jpeg",
                        10240) for index in range(30)]
    announce = fabric.cluster.multicast.group(WORKER_ANNOUNCE_GROUP)
    beacons = fabric.cluster.multicast.group(BEACON_GROUP)
    start = (announce.delivered, beacons.delivered,
             fabric.manager.reports_received, fabric.cluster.env.now)
    fabric.cluster.env.process(
        engine.constant_rate(40.0, duration, pool))
    fabric.cluster.run(until=start[3] + duration)
    elapsed = fabric.cluster.env.now - start[3]
    messages = ((announce.delivered - start[0])
                + (beacons.delivered - start[1])
                + (fabric.manager.reports_received - start[2]))
    latencies = sorted(engine.latencies())
    p95 = latencies[int(0.95 * len(latencies))] if latencies else 0.0
    return messages / elapsed, p95


def test_centralized_vs_distributed_balancing(benchmark):
    def sweep():
        rows = []
        for n_frontends in (1, 2, 4):
            central_msgs, central_p95 = control_rate(
                n_frontends, "centralized")
            dist_msgs, dist_p95 = control_rate(
                n_frontends, "distributed")
            rows.append((n_frontends, central_msgs, central_p95,
                         dist_msgs, dist_p95))
        return rows

    rows = run_once(benchmark, sweep)
    print("\ncontrol messages/second and p95 latency vs front ends "
          "(8 workers):")
    print(f"{'#FE':>4} {'central msg/s':>14} {'central p95':>12} "
          f"{'distrib msg/s':>14} {'distrib p95':>12}")
    for n_fe, c_msgs, c_p95, d_msgs, d_p95 in rows:
        print(f"{n_fe:>4} {c_msgs:>14.1f} {c_p95:>11.2f}s "
              f"{d_msgs:>14.1f} {d_p95:>11.2f}s")
    benchmark.extra_info["central_msgs_at_4fe"] = round(rows[-1][1], 1)
    benchmark.extra_info["distributed_msgs_at_4fe"] = round(
        rows[-1][3], 1)
    # both balance fine (neither p95 pathological)...
    for _, _, c_p95, _, d_p95 in rows:
        assert c_p95 < 5.0 and d_p95 < 5.0
    # ...but distributed control traffic grows much faster with FEs
    central_growth = rows[-1][1] - rows[0][1]
    distributed_growth = rows[-1][3] - rows[0][3]
    assert distributed_growth > 2 * max(central_growth, 1.0)