"""Figure 8 benchmark: the full self-tuning + fault-injection run."""

from benchmarks.conftest import run_once
from repro.experiments.figure8_selftuning import run_figure8


def test_figure8_self_tuning_and_kills(benchmark):
    result = run_once(benchmark, run_figure8, duration_s=400.0,
                      kill_at_s=270.0, kill_count=2, seed=1997,
                      peak_rate_rps=60.0)
    print("\n" + result.render())
    benchmark.extra_info["spawns"] = len(result.spawn_times)
    benchmark.extra_info["recovery_s"] = result.post_kill_recovery_s
    # load growth spawned several distillers before the kills
    pre_kill_spawns = [t for t in result.spawn_times
                       if t < result.kill_time]
    assert len(pre_kill_spawns) >= 3
    # kills happened, replacements followed
    post_kill_starts = [t for t, label in result.events
                        if "started" in label and t > result.kill_time]
    assert post_kill_starts
    # the system restabilized
    assert result.post_kill_recovery_s is not None
    assert result.post_kill_recovery_s < 90.0
    total = result.completed_requests + result.failed_requests
    assert result.completed_requests > 0.9 * total
