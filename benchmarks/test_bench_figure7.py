"""Figure 7 benchmark: distillation latency vs size over 100k items,
plus a real-computation microbenchmark of the JPEG distiller."""

from benchmarks.conftest import run_once
from repro.distillers.images import photo_sized_for
from repro.distillers.jpeg import JpegDistiller
from repro.experiments.figure7_distiller import run_figure7
from repro.sim.rng import RandomStreams
from repro.tacc.content import MIME_JPEG, Content
from repro.tacc.worker import TACCRequest


def test_figure7_distillation_latency_vs_size(benchmark):
    result = run_once(benchmark, run_figure7, n_items=100_000,
                      seed=1997)
    print("\n" + result.render())
    benchmark.extra_info["slope_ms_per_kb"] = round(
        result.slope_ms_per_kb, 2)
    benchmark.extra_info["paper_slope_ms_per_kb"] = 8.0
    assert abs(result.slope_ms_per_kb - 8.0) < 1.0
    assert result.variation_ratio > 2.0


def test_real_jpeg_distillation_throughput(benchmark):
    """Wall-clock cost of the *actual* codec path (Figure 3's
    transformation), as a conventional microbenchmark."""
    rng = RandomStreams(1997).stream("bench-images")
    image = photo_sized_for(rng, target_gif_bytes=10_240)
    content = Content("http://bench/p.jpg", MIME_JPEG,
                      image.encode_jpeg(quality=90))
    distiller = JpegDistiller()
    request = TACCRequest(inputs=[content],
                          params={"scale": 2, "quality": 25})

    result = benchmark(distiller.run, request)
    benchmark.extra_info["reduction_factor"] = round(
        result.reduction_factor(), 2)
    assert result.reduction_factor() > 2.0
