"""Hot-upgrade benchmark: rolling reboot of the whole dedicated pool
under load, service continuously available (Section 1.2)."""

from benchmarks.conftest import run_once
from repro.core.config import SNSConfig
from repro.core.upgrades import HotUpgrade
from repro.experiments._harness import build_bench_fabric
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord


def test_rolling_upgrade_availability(benchmark):
    def scenario():
        config = SNSConfig(dispatch_timeout_s=5.0, spawn_damping_s=5.0,
                           frontend_connection_overhead_s=0.001)
        fabric = build_bench_fabric(n_nodes=10, seed=1997,
                                    config=config)
        fabric.boot(n_frontends=2,
                    initial_workers={"jpeg-distiller": 2})
        fabric.cluster.run(until=2.0)
        engine = PlaybackEngine(
            fabric.cluster.env, fabric.submit,
            rng=RandomStreams(1997).stream("upgrade-playback"),
            timeout_s=20.0)
        pool = [TraceRecord(0.0, f"client{index}",
                            f"http://bench/img{index}.jpg",
                            "image/jpeg", 10240) for index in range(30)]
        fabric.cluster.env.process(
            engine.constant_rate(15.0, 200.0, pool))
        upgrade = HotUpgrade(fabric, hold_s=4.0, settle_s=8.0)
        fabric.cluster.env.process(upgrade.rolling())
        fabric.cluster.run(until=280.0)
        return fabric, engine, upgrade

    fabric, engine, upgrade = run_once(benchmark, scenario)
    total = len(engine.outcomes)
    ok = len(engine.completed())
    fallbacks = sum(1 for outcome in engine.completed()
                    if getattr(outcome.response, "status", "") ==
                    "fallback")
    print(f"\nrolling upgrade of {len(fabric.cluster.dedicated_nodes)} "
          f"nodes under 15 req/s:")
    for time, message in upgrade.log:
        print(f"  t={time:6.1f}s  {message}")
    print(f"availability: {ok}/{total} answered "
          f"({fallbacks} approximate)")
    benchmark.extra_info["availability"] = round(ok / total, 4)
    assert all(node.up for node in fabric.cluster.dedicated_nodes)
    assert ok > 0.85 * total
    assert fabric.manager.alive
