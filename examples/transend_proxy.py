"""TranSend end to end: the distillation proxy on a simulated cluster.

Boots the full stack — manager, monitor, front end, cache nodes, ACID
profile store — replays a synthetic slice of the Berkeley dialup
workload against it, kills a distiller mid-run to show the SNS layer
routing around the fault, and prints the service stats and the monitor
panel at the end.

Run:  python examples/transend_proxy.py
"""

from repro.core.config import SNSConfig
from repro.sim.rng import RandomStreams
from repro.transend.service import TranSend
from repro.workload.playback import PlaybackEngine
from repro.workload.tracegen import TraceGenerator


def main() -> None:
    transend = TranSend(
        n_nodes=10,
        n_cache_nodes=4,
        seed=1997,
        config=SNSConfig(dispatch_timeout_s=5.0, spawn_damping_s=8.0),
    )
    transend.start(n_frontends=1, initial_workers={})
    transend.fabric.start_monitor()

    # a user customizes their distillation settings
    transend.set_preference("client3", "quality", 10)
    transend.set_preference("client3", "scale", 4)

    # replay 90 seconds of synthetic dialup traffic
    trace = TraceGenerator(seed=42, mean_rate_rps=8.0,
                           n_users=50).generate(90.0)
    print(f"replaying {len(trace)} traced requests...")
    engine = PlaybackEngine(
        transend.cluster.env, transend.submit,
        rng=RandomStreams(7).stream("example"),
        timeout_s=120.0)
    transend.cluster.env.process(engine.play(trace))

    # fault injection: kill whatever distiller exists at t=45s
    def saboteur(env):
        yield env.timeout(45.0)
        victims = transend.fabric.alive_workers()
        if victims:
            print(f"  t=45s: killing {victims[0].name} "
                  "(the SNS layer will route around it)")
            victims[0].kill()

    transend.cluster.env.process(saboteur(transend.cluster.env))
    transend.run(until=240.0)

    # what happened
    stats = transend.stats()
    completed = engine.completed()
    latencies = sorted(engine.latencies())
    print(f"\ncompleted {len(completed)}/{len(engine.outcomes)} "
          "requests")
    if latencies:
        print(f"median latency {latencies[len(latencies) // 2]:.2f}s, "
              f"p95 {latencies[int(0.95 * len(latencies))]:.2f}s")
    print("\nresponse paths (the BASE taxonomy of Section 3.1.8):")
    for path, count in sorted(stats["paths"].items()):
        print(f"  {path:<22} {count}")
    print(f"\ncache hit rate: {stats['cache_hit_rate']:.0%}")
    print(f"origin fetches: {stats['origin_fetches']}")
    print(f"distillers spawned by the manager: "
          f"{stats['manager_spawns']}")
    print("\n" + transend.fabric.monitor.render())


if __name__ == "__main__":
    main()
