"""HotBot: partitioned search with graceful degradation.

Builds the scaled-down Inktomi cluster (real inverted indexes over a
synthetic corpus, statically partitioned), runs queries, crashes a node
to show partial answers and fast restart, and contrasts the original
cross-mounted failure mode that kept 100% data availability.

Run:  python examples/hotbot_search.py
"""

from repro.hotbot.service import HotBot, HotBotConfig


def show(result, label):
    print(f"\n{label}")
    print(f"  coverage {result.coverage:.1%} "
          f"({result.partitions_answered}/{result.partitions_total} "
          f"partitions{', partial' if result.partial else ''})")
    for hit in result.hits[:5]:
        print(f"  {hit.score:6.2f}  {hit.url}")


def main() -> None:
    hotbot = HotBot(config=HotBotConfig(
        n_workers=8, n_docs=2000, failure_mode="fast-restart",
        fast_restart_s=10.0), seed=1997)
    terms = ["w12", "w40"]
    print(f"corpus: {len(hotbot.corpus)} documents over "
          f"{hotbot.config.n_workers} partitions "
          f"(sizes {hotbot.partition_map.partition_sizes()})")

    show(hotbot.run_until(hotbot.submit(terms)), "healthy cluster:")

    print("\ncrashing partition 0's node...")
    hotbot.crash_worker(0)
    show(hotbot.run_until(hotbot.submit(terms)),
         "during the outage (the 54M -> 51M effect):")

    hotbot.run(until=hotbot.cluster.env.now + 15.0)
    show(hotbot.run_until(hotbot.submit(terms)),
         "after fast restart:")

    print("\n--- the original Inktomi cross-mounted design ---")
    crossmount = HotBot(config=HotBotConfig(
        n_workers=8, n_docs=2000, failure_mode="cross-mount"),
        seed=1997)
    crossmount.crash_worker(2, auto_restart=False)
    result = crossmount.run_until(crossmount.submit(terms))
    show(result, "node down, peer serving its partition from the "
                 "cross-mounted disk:")
    print(f"  served by replica: {result.served_by_replica} partition "
          f"(at {crossmount.config.cross_mount_penalty:.0f}x cost — "
          "'100% data availability with graceful degradation in "
          "performance')")

    print(f"\nACID side: {hotbot.database.requests} profile/ad-revenue "
          f"transactions, Informix utilization "
          f"{hotbot.database.utilization():.1%}")


if __name__ == "__main__":
    main()
