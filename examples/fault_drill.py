"""Fault drill: every process-peer mechanism, on one timeline.

Runs the Section 3.1.3 fault-tolerance experiment — kill a distiller,
then the manager, then a front end, under continuous load — and prints
the timeline plus availability accounting.  This is the paper's
soft-state story in one screen: nobody recovers state, everybody
re-discovers it.

Run:  python examples/fault_drill.py
"""

from repro.experiments.fault_timeline import run_fault_timeline


def main() -> None:
    result = run_fault_timeline(rate_rps=20.0, seed=1997)
    print(result.render())
    print(f"\nmanager restarts (by front-end watchdogs): "
          f"{result.manager_restarts}")
    print(f"front-end restarts (by the manager):        "
          f"{result.frontend_restarts}")
    print(f"worker failures detected (broken pipes):    "
          f"{result.worker_failures_detected}")


if __name__ == "__main__":
    main()
