"""Fault drill: process peers, then a full chaos campaign.

Part 1 runs the Section 3.1.3 fault-tolerance experiment — kill a
distiller, then the manager, then a front end, under continuous load —
and prints the timeline plus availability accounting.  This is the
paper's soft-state story in one screen: nobody recovers state,
everybody re-discovers it.

Part 2 goes past the paper's testbed: the "mixed" chaos campaign
overlaps a manager crash with 20% beacon loss, a straggler node, and a
rolling worker-kill loop, while the online invariant checker asserts
that every soft-state guarantee (re-registration, convergence to
ground truth, bounded replies, single completion) still holds.

Run:  python examples/fault_drill.py
"""

from repro.chaos import get_campaign, run_campaign
from repro.experiments.fault_timeline import run_fault_timeline


def main() -> None:
    result = run_fault_timeline(rate_rps=20.0, seed=1997)
    print(result.render())
    print(f"\nmanager restarts (by front-end watchdogs): "
          f"{result.manager_restarts}")
    print(f"front-end restarts (by the manager):        "
          f"{result.frontend_restarts}")
    print(f"worker failures detected (broken pipes):    "
          f"{result.worker_failures_detected}")

    print("\n" + "=" * 60)
    print("chaos campaign: overlapping faults on a lossy SAN")
    print("=" * 60)
    report = run_campaign(get_campaign("mixed"), seed=1997)
    print(report.render())


if __name__ == "__main__":
    main()
