"""Hot upgrade: reboot the whole cluster under load, service up.

"A natural extension of this capability is to temporarily disable a
subset of nodes and then upgrade them in place ('hot upgrade')"
(Section 1.2) — and HotBot was physically moved across the Bay "without
ever being down, by moving half of the cluster at a time."

This drill rolls a software upgrade across every node of a running SNS
installation while a steady 15 req/s of traffic flows.  Watch the
monitor mark components as under maintenance instead of paging the
operator.

Run:  python examples/hot_upgrade.py
"""

from repro.core.config import SNSConfig
from repro.core.upgrades import HotUpgrade
from repro.experiments._harness import build_bench_fabric
from repro.sim.rng import RandomStreams
from repro.workload.playback import PlaybackEngine
from repro.workload.trace import TraceRecord


def main() -> None:
    config = SNSConfig(dispatch_timeout_s=5.0, spawn_damping_s=5.0,
                       frontend_connection_overhead_s=0.001)
    fabric = build_bench_fabric(n_nodes=8, seed=1997, config=config)
    fabric.boot(n_frontends=2, initial_workers={"jpeg-distiller": 2})
    fabric.cluster.run(until=2.0)

    engine = PlaybackEngine(
        fabric.cluster.env, fabric.submit,
        rng=RandomStreams(7).stream("upgrade"), timeout_s=20.0)
    pool = [TraceRecord(0.0, f"client{index}",
                        f"http://site/img{index}.jpg", "image/jpeg",
                        10240) for index in range(30)]
    fabric.cluster.env.process(engine.constant_rate(15.0, 160.0, pool))

    upgrade = HotUpgrade(fabric, hold_s=4.0, settle_s=8.0)
    fabric.cluster.env.process(upgrade.rolling())
    fabric.cluster.run(until=220.0)

    print("rolling upgrade timeline:")
    for time, message in upgrade.log:
        print(f"  t={time:6.1f}s  {message}")
    ok = len(engine.completed())
    total = len(engine.outcomes)
    print(f"\navailability through the whole upgrade: {ok}/{total} "
          f"({ok / total:.1%})")
    print(f"all nodes back up: "
          f"{all(node.up for node in fabric.cluster.dedicated_nodes)}")
    print(f"operator pages raised: "
          f"{len(fabric.monitor.pages()) if fabric.monitor else 0} "
          "(maintenance mode suppressed the planned silences)")


if __name__ == "__main__":
    main()
