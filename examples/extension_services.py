"""The Section 5.1 extension services, composed.

Shows why the paper calls TACC workers "a powerful building block":
metasearch over a real HotBot backend plus a second engine, the Bay
Area Culture Page's approximate-answer date scraping, and an
onion-style rewebber chain — all plain workers that any SNS fabric can
spawn and balance.

Run:  python examples/extension_services.py
"""

from repro.hotbot.service import HotBot, HotBotConfig
from repro.services.culture_page import CulturePageAggregator
from repro.services.metasearch import (
    MetasearchAggregator,
    render_engine_results,
)
from repro.services.rewebber import (
    DecryptWorker,
    EncryptWorker,
    rewebber_keypair,
)
from repro.tacc.content import MIME_HTML, Content
from repro.tacc.worker import TACCRequest


def metasearch_demo() -> None:
    print("=== metasearch ('3 pages of Perl in roughly 2.5 hours') ===")
    hotbot = HotBot(config=HotBotConfig(n_workers=4, n_docs=800),
                    seed=11)
    result = hotbot.run_until(hotbot.submit(["w7", "w21"]))
    hotbot_page = render_engine_results(
        "hotbot", [(hit.url, f"page {hit.doc_id}")
                   for hit in result.hits])
    other_page = render_engine_results(
        "altavista-like", [
            ("http://crawl.example/page13", "page 13"),
            ("http://other.example/a", "something else"),
        ])
    merged = MetasearchAggregator().run(TACCRequest(
        inputs=[hotbot_page, other_page],
        params={"query": "w7 w21", "max_results": 8}))
    print(merged.data.decode())


def culture_page_demo() -> None:
    print("\n=== Bay Area Culture Page (approximate answers) ===")
    sources = [
        Content("http://opera.example/season.html", MIME_HTML,
                b"<html><body><p>La Boheme opens October 14.</p>"
                b"<p>Rigoletto returns Nov 2.</p></body></html>"),
        Content("http://clubs.example/listings.html", MIME_HTML,
                b"<html><body>Jazz night every week; big show 10/30."
                b" Our uptime was 3/4 last month.</body></html>"),
    ]
    calendar = CulturePageAggregator().run(TACCRequest(
        inputs=sources,
        profile={"calendar_start": (10, 1), "calendar_end": (11, 15)}))
    print(calendar.data.decode())
    print(f"({calendar.metadata['events']} events; the spurious '3/4' "
          "extraction is the documented 10-20% noise users ignore)")


def rewebber_demo() -> None:
    print("\n=== anonymous rewebber (onion chain) ===")
    _, inner = rewebber_keypair("exit-server")
    _, outer = rewebber_keypair("entry-server")
    manifesto = Content("rewebber://hidden/doc.html", MIME_HTML,
                        b"<html><body>published anonymously</body>"
                        b"</html>")
    sealed = EncryptWorker().run(TACCRequest(
        inputs=[manifesto], profile={"rewebber_key": inner}))
    sealed = EncryptWorker().run(TACCRequest(
        inputs=[sealed], profile={"rewebber_key": outer}))
    print(f"double-sealed: {sealed.size} bytes of ciphertext")
    opened = DecryptWorker().run(TACCRequest(
        inputs=[sealed], profile={"rewebber_key": outer}))
    opened = DecryptWorker().run(TACCRequest(
        inputs=[opened], profile={"rewebber_key": inner}))
    print(f"after the chain peels both layers: {opened.data.decode()}")


def main() -> None:
    metasearch_demo()
    culture_page_demo()
    rewebber_demo()


if __name__ == "__main__":
    main()
