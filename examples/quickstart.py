"""Quickstart: the TACC programming model in five minutes.

Builds real content, runs the three TranSend distillers on it (actual
byte transformations — this is Figure 3's 10 KB -> ~1.5 KB, measured),
composes workers into a Unix-style pipeline, and shows the ACID
customization store delivering per-user parameters to workers.

Run:  python examples/quickstart.py
"""

from repro.distillers.gif import GifDistiller
from repro.distillers.html import HtmlMunger
from repro.distillers.images import photo_sized_for
from repro.services.keyword_filter import KeywordFilter
from repro.services.thinclient import ThinClientSimplifier
from repro.sim.rng import RandomStreams
from repro.tacc.content import MIME_GIF, MIME_HTML, Content
from repro.tacc.customization import ProfileStore
from repro.tacc.pipeline import Pipeline
from repro.tacc.registry import WorkerRegistry
from repro.tacc.worker import TACCRequest


def main() -> None:
    rng = RandomStreams(1997).stream("quickstart")

    # --- 1. a real image, really distilled (Figure 3) -------------------
    image = photo_sized_for(rng, target_gif_bytes=10_240)
    gif = Content("http://pics.example/photo.gif", MIME_GIF,
                  image.encode_gif())
    print(f"original GIF: {gif.size} bytes")

    request = TACCRequest(inputs=[gif], params={"scale": 2,
                                                "quality": 25})
    distilled = GifDistiller().run(request)
    print(f"distilled JPEG: {distilled.size} bytes "
          f"({distilled.reduction_factor():.1f}x smaller) — "
          f"the paper reports 10 KB -> 1.5 KB at these settings")

    # --- 2. the ACID customization database ------------------------------
    profiles = ProfileStore()
    with profiles.begin() as tx:
        tx.set("alice", "quality", 10)   # tiny images for a slow modem
        tx.set("alice", "scale", 4)
        tx.set("bob", "quality", 75)     # bob pays for better pictures
    for user in ("alice", "bob"):
        request = TACCRequest(inputs=[gif], profile=profiles.get(user),
                              user_id=user)
        result = GifDistiller().run(request)
        print(f"{user:>6}: same worker, their settings -> "
              f"{result.size} bytes")

    # --- 3. composition: a pipeline of stateless workers ------------------
    registry = WorkerRegistry()
    registry.register_class(HtmlMunger)
    registry.register_class(KeywordFilter)
    registry.register_class(ThinClientSimplifier)

    page = Content(
        "http://news.example/story.html", MIME_HTML,
        b"<html><body><h1>Cluster News</h1>"
        b'<img src="http://pics.example/photo.gif">'
        b"<p>Clusters of commodity workstations are eating the "
        b"world of network services.</p></body></html>")
    pipeline = Pipeline(["html-munger", "keyword-filter",
                         "thinclient-simplify"])
    pipeline.validate(registry, MIME_HTML)
    result = pipeline.execute(registry, TACCRequest(
        inputs=[page],
        profile={"filter_pattern": "cluster", "screen_width": 160},
        user_id="alice"))
    print(f"\npipeline {pipeline!r}\n"
          f"produced {result.mime}, {result.size} bytes:\n")
    print(result.data.decode()[:400])


if __name__ == "__main__":
    main()
