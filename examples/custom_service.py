"""Build-your-own-service: the README walkthrough, runnable.

The paper's reusability claim in its smallest form: a new service is one
worker class plus one dispatch generator.  Scaling, load balancing,
fault masking, and monitoring come from the SNS layer unchanged — we
prove it by killing the only worker mid-run and watching the manager
respawn it.

Run:  python examples/custom_service.py
"""

from repro.core import Response, SNSConfig, SNSFabric
from repro.sim import Cluster
from repro.tacc import Content, TACCRequest, Transformer, WorkerRegistry
from repro.tacc.sdk import check_worker
from repro.workload.trace import TraceRecord


class Shouter(Transformer):
    """The simplest possible transformation worker."""

    worker_type = "shouter"

    def transform(self, content, request):
        return content.derive(content.data.upper(), worker="shouter")


class ShoutService:
    """The Service layer: dispatch logic for the front end."""

    def handle(self, frontend, record):
        content = Content(record.url, record.mime,
                          record.client_id.encode() + b" says hello")
        request = TACCRequest(inputs=[content])
        result = yield from frontend.stub.dispatch(
            request, "shouter", content.size)
        return Response(status="ok", path="shouted", content=result,
                        size_bytes=result.size)


def main() -> None:
    # 0. the SDK vets the worker before it ships
    fixture = TACCRequest(inputs=[Content("u", "text/plain", b"hi")])
    report = check_worker(Shouter, [fixture])
    print(report.render())
    assert report.passed

    # 1. hardware + registry + service + fabric
    cluster = Cluster(seed=1)
    cluster.add_nodes(6)
    registry = WorkerRegistry()
    registry.register_class(Shouter)
    fabric = SNSFabric(cluster, registry, SNSConfig(), ShoutService())
    fabric.boot(n_frontends=1)   # manager + monitor + FE; no workers yet
    cluster.run(until=2.0)

    # 2. first request: the manager spawns the first shouter on demand
    def record(index):
        return TraceRecord(0.0, f"client{index}",
                           f"http://svc/{index}", "text/plain", 100)

    response = cluster.env.run(until=fabric.submit(record(0)))
    print(f"\nfirst response: {response.content.data.decode()!r} "
          f"(worker spawned on demand at "
          f"t={cluster.env.now:.1f}s)")

    # 3. kill the worker; the SNS layer routes around and respawns
    victim = fabric.alive_workers()[0]
    victim.kill()
    print(f"killed {victim.name}; resubmitting...")
    response = cluster.env.run(until=fabric.submit(record(1)))
    print(f"second response: {response.content.data.decode()!r} "
          f"(served by {fabric.alive_workers()[0].name})")
    print(f"\nmanager saw {fabric.manager.worker_failures_detected} "
          f"worker failure(s) and performed {fabric.manager.spawns} "
          "spawns — none of which ShoutService had to know about.")


if __name__ == "__main__":
    main()
